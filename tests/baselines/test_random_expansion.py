"""Tests for the non-reversible random-expansion baseline."""

import pytest

from repro.baselines import RandomExpansionCloaking
from repro.core import LevelRequirement, PrivacyProfile, ToleranceSpec
from repro.errors import (
    CloakingError,
    FrontierExhaustedError,
    ToleranceExceededError,
)
from repro.mobility import PopulationSnapshot
from repro.roadnet import grid_network, path_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8)


@pytest.fixture(scope="module")
def snapshot(grid):
    return PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in grid.segment_ids()}
    )


@pytest.fixture(scope="module")
def profile():
    return PrivacyProfile.uniform(
        levels=3, base_k=4, k_step=4, base_l=3, l_step=2, max_segments=60
    )


class TestAnonymize:
    def test_requirements_met_per_level(self, grid, snapshot, profile):
        result = RandomExpansionCloaking(grid, seed=1).anonymize(30, snapshot, profile)
        for level in range(1, 4):
            requirement = profile.requirement(level)
            region = set(result.region_at(level))
            assert len(region) >= requirement.l
            assert snapshot.count_in_region(region) >= requirement.k

    def test_regions_nest_and_stay_connected(self, grid, snapshot, profile):
        result = RandomExpansionCloaking(grid, seed=2).anonymize(30, snapshot, profile)
        for level in range(0, 3):
            inner = set(result.region_at(level))
            outer = set(result.region_at(level + 1))
            assert inner <= outer
            assert grid.is_connected_region(outer)

    def test_level_zero_is_user(self, grid, snapshot, profile):
        result = RandomExpansionCloaking(grid, seed=3).anonymize(30, snapshot, profile)
        assert result.region_at(0) == (30,)

    def test_added_matches_regions(self, grid, snapshot, profile):
        result = RandomExpansionCloaking(grid, seed=4).anonymize(30, snapshot, profile)
        rebuilt = {30}
        for level in range(1, 4):
            rebuilt |= set(result.added[level])
            assert rebuilt == set(result.region_at(level))

    def test_seed_determinism(self, grid, snapshot, profile):
        a = RandomExpansionCloaking(grid, seed=7).anonymize(30, snapshot, profile)
        b = RandomExpansionCloaking(grid, seed=7).anonymize(30, snapshot, profile)
        assert a.regions == b.regions

    def test_seeds_differ(self, grid, snapshot, profile):
        a = RandomExpansionCloaking(grid, seed=1).anonymize(30, snapshot, profile)
        b = RandomExpansionCloaking(grid, seed=2).anonymize(30, snapshot, profile)
        assert a.regions != b.regions

    def test_unknown_level(self, grid, snapshot, profile):
        result = RandomExpansionCloaking(grid, seed=1).anonymize(30, snapshot, profile)
        with pytest.raises(CloakingError):
            result.region_at(9)

    def test_top_level_property(self, grid, snapshot, profile):
        result = RandomExpansionCloaking(grid, seed=1).anonymize(30, snapshot, profile)
        assert result.top_level == 3


class TestFailures:
    def test_tolerance_exceeded(self, grid):
        snapshot = PopulationSnapshot.from_counts(
            {segment_id: 1 for segment_id in grid.segment_ids()}
        )
        profile = PrivacyProfile(
            [LevelRequirement(k=50, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        with pytest.raises(ToleranceExceededError):
            RandomExpansionCloaking(grid, seed=1).anonymize(30, snapshot, profile)

    def test_frontier_exhausted(self):
        network = path_network(3)
        snapshot = PopulationSnapshot.from_counts({0: 1, 1: 1, 2: 1})
        profile = PrivacyProfile(
            [LevelRequirement(k=10, l=2, tolerance=ToleranceSpec(max_segments=50))]
        )
        with pytest.raises(FrontierExhaustedError):
            RandomExpansionCloaking(network, seed=1).anonymize(0, snapshot, profile)
