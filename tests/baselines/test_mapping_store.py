"""Tests for the mapping-store reversible baseline."""

import pytest

from repro.baselines import MappingStoreCloaking
from repro.core import PrivacyProfile
from repro.errors import DeanonymizationError
from repro.mobility import PopulationSnapshot
from repro.roadnet import grid_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8)


@pytest.fixture(scope="module")
def snapshot(grid):
    return PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in grid.segment_ids()}
    )


@pytest.fixture(scope="module")
def profile():
    return PrivacyProfile.uniform(
        levels=3, base_k=4, k_step=4, base_l=3, l_step=2, max_segments=60
    )


class TestStore:
    def test_round_trip_via_receipt(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=1)
        cloak = store.anonymize(30, snapshot, profile)
        assert store.deanonymize(cloak.receipt, 0) == (30,)
        assert set(store.deanonymize(cloak.receipt, 1)) <= set(
            store.deanonymize(cloak.receipt, 2)
        )

    def test_public_view_is_outer_region(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=2)
        cloak = store.anonymize(30, snapshot, profile)
        assert cloak.region == store.deanonymize(cloak.receipt, cloak.top_level)

    def test_unknown_receipt(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=3)
        store.anonymize(30, snapshot, profile)
        with pytest.raises(DeanonymizationError):
            store.deanonymize("bogus", 0)

    def test_receipts_unique(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=4)
        receipts = {
            store.anonymize(30, snapshot, profile).receipt for __ in range(5)
        }
        assert len(receipts) == 5


class TestStorageCosts:
    """The baseline's defining weakness: per-request server-side state."""

    def test_storage_grows_linearly_with_requests(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=5)
        sizes = []
        for count in range(1, 6):
            store.anonymize(30, snapshot, profile)
            sizes.append(store.storage_entries())
        assert store.stored_requests == 5
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        assert all(delta > 0 for delta in deltas)

    def test_storage_bytes_positive(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=6)
        store.anonymize(30, snapshot, profile)
        assert store.storage_bytes() == 8 * store.storage_entries()

    def test_forget_releases_state(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=7)
        cloak = store.anonymize(30, snapshot, profile)
        store.forget(cloak.receipt)
        assert store.stored_requests == 0
        with pytest.raises(DeanonymizationError):
            store.deanonymize(cloak.receipt, 0)

    def test_forget_unknown_is_noop(self, grid, snapshot, profile):
        store = MappingStoreCloaking(grid, seed=8)
        store.forget("missing")  # must not raise
