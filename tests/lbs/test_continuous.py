"""Tests for continuous cloaking timelines."""

import pytest

from repro import (
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.errors import MobilityError
from repro.lbs import CloakTimeline, ContinuousCloaker


class DespawningSimulator:
    """A minimal simulator whose tracked user leaves the simulation after a
    given number of ticks (drives the mid-stream despawn regression)."""

    def __init__(self, network, user_segments, despawn_user, despawn_after_ticks):
        self._network = network
        self._segments = dict(user_segments)
        self._despawn_user = despawn_user
        self._despawn_after = despawn_after_ticks
        self._ticks = 0
        self._time = 0.0

    @property
    def network(self):
        return self._network

    @property
    def time(self):
        return self._time

    def step(self, dt=1.0):
        self._time += dt
        self._ticks += 1

    def snapshot(self):
        users = dict(self._segments)
        if self._ticks >= self._despawn_after:
            users.pop(self._despawn_user, None)
        return PopulationSnapshot(users, time=self._time)


@pytest.fixture()
def setup():
    network = grid_network(10, 10)
    simulator = TrafficSimulator(network, n_cars=400, seed=33)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    profile = PrivacyProfile.uniform(
        levels=2, base_k=5, k_step=3, base_l=3, l_step=1, max_segments=50
    )
    return network, simulator, engine, profile


class TestContinuousCloaker:
    def test_produces_requested_ticks(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=3, ticks=5, interval_seconds=4.0)
        assert len(timeline) == 5
        assert timeline.user_id == 3

    def test_time_advances_between_ticks(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=3, ticks=4, interval_seconds=3.0)
        times = [entry.time for entry in timeline]
        assert times == sorted(times)
        assert times[-1] - times[0] == pytest.approx(9.0)

    def test_user_always_inside_own_cloak(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=7, ticks=5, interval_seconds=4.0)
        for entry in timeline.successful_entries():
            assert entry.snapshot.segment_of(7) in entry.envelope.region

    def test_fresh_keys_rotate(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile, fresh_keys=True)
        timeline = cloaker.run(user_id=3, ticks=3, interval_seconds=4.0)
        fingerprints = {
            entry.chain.key_for(1).fingerprint() for entry in timeline
        }
        assert len(fingerprints) == 3

    def test_fixed_chain_reused(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile, fresh_keys=False)
        timeline = cloaker.run(user_id=3, ticks=3, interval_seconds=4.0)
        fingerprints = {
            entry.chain.key_for(1).fingerprint() for entry in timeline
        }
        assert len(fingerprints) == 1

    def test_every_tick_reversible_with_its_chain(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=9, ticks=4, interval_seconds=5.0)
        for entry in timeline.successful_entries():
            result = engine.deanonymize(entry.envelope, entry.chain, target_level=0)
            assert result.region_at(0) == (entry.snapshot.segment_of(9),)

    def test_success_rate(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=3, ticks=4, interval_seconds=4.0)
        assert 0.0 <= timeline.success_rate() <= 1.0

    def test_validation(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        with pytest.raises(MobilityError):
            cloaker.run(user_id=3, ticks=0)
        with pytest.raises(MobilityError):
            cloaker.run(user_id=3, ticks=2, interval_seconds=0.0)
        # A user missing when the run starts is a caller error, not a
        # transient serving failure — raises regardless of skip_failures.
        with pytest.raises(MobilityError):
            cloaker.run(user_id=99_999, ticks=2)
        with pytest.raises(MobilityError):
            cloaker.run(user_id=99_999, ticks=2, skip_failures=False)

    def test_mismatched_network_rejected(self, setup):
        network, simulator, engine, profile = setup
        other_engine = ReverseCloakEngine(grid_network(10, 10))
        with pytest.raises(MobilityError):
            ContinuousCloaker(other_engine, simulator, profile)


class TestMidStreamDespawn:
    """Regression: a tracked user leaving the simulation mid-run used to
    raise even with ``skip_failures=True``, losing the whole timeline —
    the docstring promises a ``None`` entry and continued serving. (A user
    already missing at tick 0 still raises: that's a bad user_id.)"""

    def _make(self, despawn_after_ticks):
        network = grid_network(10, 10)
        user_segments = {
            user_id: segment_id
            for user_id, segment_id in enumerate(
                sid for sid in network.segment_ids() for _ in range(2)
            )
        }
        simulator = DespawningSimulator(
            network,
            user_segments,
            despawn_user=6,
            despawn_after_ticks=despawn_after_ticks,
        )
        engine = ReverseCloakEngine(network)
        profile = PrivacyProfile.uniform(
            levels=2, base_k=5, k_step=3, base_l=3, l_step=1, max_segments=50
        )
        return ContinuousCloaker(engine, simulator, profile)

    def test_despawn_records_none_and_keeps_serving(self):
        cloaker = self._make(despawn_after_ticks=2)
        timeline = cloaker.run(user_id=6, ticks=5, interval_seconds=1.0)
        assert len(timeline) == 5  # the whole timeline survives
        envelopes = [entry.envelope for entry in timeline]
        assert all(envelope is not None for envelope in envelopes[:2])
        assert all(envelope is None for envelope in envelopes[2:])
        assert timeline.success_rate() == pytest.approx(2 / 5)
        # Failed ticks still record their moment's snapshot and a chain.
        for entry in timeline:
            assert entry.snapshot is not None
            assert entry.chain is not None

    def test_despawn_still_raises_without_skip_failures(self):
        cloaker = self._make(despawn_after_ticks=1)
        with pytest.raises(MobilityError, match="not in the simulation"):
            cloaker.run(
                user_id=6, ticks=3, interval_seconds=1.0, skip_failures=False
            )

    def test_missing_at_tick_zero_raises_even_with_skip_failures(self):
        cloaker = self._make(despawn_after_ticks=0)  # never present
        with pytest.raises(MobilityError, match="not in the simulation"):
            cloaker.run(user_id=6, ticks=3, interval_seconds=1.0)
