"""Tests for continuous cloaking timelines."""

import pytest

from repro import (
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.errors import MobilityError
from repro.lbs import CloakTimeline, ContinuousCloaker


@pytest.fixture()
def setup():
    network = grid_network(10, 10)
    simulator = TrafficSimulator(network, n_cars=400, seed=33)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    profile = PrivacyProfile.uniform(
        levels=2, base_k=5, k_step=3, base_l=3, l_step=1, max_segments=50
    )
    return network, simulator, engine, profile


class TestContinuousCloaker:
    def test_produces_requested_ticks(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=3, ticks=5, interval_seconds=4.0)
        assert len(timeline) == 5
        assert timeline.user_id == 3

    def test_time_advances_between_ticks(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=3, ticks=4, interval_seconds=3.0)
        times = [entry.time for entry in timeline]
        assert times == sorted(times)
        assert times[-1] - times[0] == pytest.approx(9.0)

    def test_user_always_inside_own_cloak(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=7, ticks=5, interval_seconds=4.0)
        for entry in timeline.successful_entries():
            assert entry.snapshot.segment_of(7) in entry.envelope.region

    def test_fresh_keys_rotate(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile, fresh_keys=True)
        timeline = cloaker.run(user_id=3, ticks=3, interval_seconds=4.0)
        fingerprints = {
            entry.chain.key_for(1).fingerprint() for entry in timeline
        }
        assert len(fingerprints) == 3

    def test_fixed_chain_reused(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile, fresh_keys=False)
        timeline = cloaker.run(user_id=3, ticks=3, interval_seconds=4.0)
        fingerprints = {
            entry.chain.key_for(1).fingerprint() for entry in timeline
        }
        assert len(fingerprints) == 1

    def test_every_tick_reversible_with_its_chain(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=9, ticks=4, interval_seconds=5.0)
        for entry in timeline.successful_entries():
            result = engine.deanonymize(entry.envelope, entry.chain, target_level=0)
            assert result.region_at(0) == (entry.snapshot.segment_of(9),)

    def test_success_rate(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=3, ticks=4, interval_seconds=4.0)
        assert 0.0 <= timeline.success_rate() <= 1.0

    def test_validation(self, setup):
        network, simulator, engine, profile = setup
        cloaker = ContinuousCloaker(engine, simulator, profile)
        with pytest.raises(MobilityError):
            cloaker.run(user_id=3, ticks=0)
        with pytest.raises(MobilityError):
            cloaker.run(user_id=3, ticks=2, interval_seconds=0.0)
        with pytest.raises(MobilityError):
            cloaker.run(user_id=99_999, ticks=2)

    def test_mismatched_network_rejected(self, setup):
        network, simulator, engine, profile = setup
        other_engine = ReverseCloakEngine(grid_network(10, 10))
        with pytest.raises(MobilityError):
            ContinuousCloaker(other_engine, simulator, profile)
