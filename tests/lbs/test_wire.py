"""Tests for the transport-neutral wire protocol (:mod:`repro.lbs.wire`)."""

import dataclasses
import json

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    grid_network,
)
from repro.errors import (
    CloakingError,
    CollisionError,
    DeadlineExceededError,
    DeanonymizationError,
    FrontierExhaustedError,
    KeyMismatchError,
    MobilityError,
    OverloadedError,
    ProfileError,
    ReverseCloakError,
    ToleranceExceededError,
    WireFormatError,
    WorkerCrashedError,
)
from repro.lbs.wire import (
    CLOAK_REQUEST_FORMAT,
    DEANONYMIZE_REQUEST_FORMAT,
    MALFORMED_DOCUMENT,
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
    error_code_for,
    error_doc_for,
    exception_from_error_doc,
    snapshot_from_dict,
    snapshot_to_dict,
)

NETWORK = grid_network(8, 8)
SNAPSHOT = PopulationSnapshot.from_counts(
    {segment_id: 2 for segment_id in NETWORK.segment_ids()}, time=17.5
)
PROFILE = PrivacyProfile.uniform(
    levels=2, base_k=4, k_step=4, base_l=3, l_step=1, max_segments=40
)
CHAIN = KeyChain.from_passphrases(["wire-1", "wire-2"])
ENGINE = ReverseCloakEngine(NETWORK)
ENVELOPE = ENGINE.anonymize(30, SNAPSHOT, PROFILE, CHAIN)


class TestCloakRequestDoc:
    def test_json_round_trip(self):
        doc = CloakRequestDoc(
            user_id=7, profile=PROFILE, chain=CHAIN, user_segment=30
        )
        restored = CloakRequestDoc.from_json(doc.to_json())
        assert restored == doc
        # to_request() now threads the resolved segment through, so the
        # engine never re-resolves a segment the transport already knows.
        assert restored.to_request() == CloakRequest(
            7, PROFILE, CHAIN, user_segment=30
        )

    def test_from_request(self):
        request = CloakRequest(user_id=3, profile=PROFILE, chain=CHAIN)
        doc = CloakRequestDoc.from_request(request, user_segment=12)
        assert doc.user_segment == 12
        assert doc.to_request() == dataclasses.replace(request, user_segment=12)

    def test_unresolved_segment_survives(self):
        doc = CloakRequestDoc(user_id=7, profile=PROFILE, chain=CHAIN)
        assert CloakRequestDoc.from_json(doc.to_json()).user_segment is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("user_id"),
            lambda d: d.pop("profile"),
            lambda d: d.pop("chain"),
            lambda d: d.update(profile={"levels": "junk"}),
            lambda d: d.update(chain={"keys": [{"level": 1}]}),
            lambda d: d.update(format="repro.other"),
            lambda d: d.update(version=99),
        ],
    )
    def test_malformed_documents_raise_structured_code(self, mutate):
        document = CloakRequestDoc(
            user_id=7, profile=PROFILE, chain=CHAIN
        ).to_dict()
        mutate(document)
        with pytest.raises(WireFormatError) as excinfo:
            CloakRequestDoc.from_dict(document)
        assert error_code_for(excinfo.value) == MALFORMED_DOCUMENT

    def test_not_json_raises(self):
        with pytest.raises(WireFormatError):
            CloakRequestDoc.from_json("{nope")

    def test_not_a_dict_raises(self):
        with pytest.raises(WireFormatError):
            CloakRequestDoc.from_dict([1, 2, 3])

    def test_deadline_round_trips(self):
        doc = CloakRequestDoc(
            user_id=7, profile=PROFILE, chain=CHAIN, deadline_ms=250.0
        )
        restored = CloakRequestDoc.from_json(doc.to_json())
        assert restored.deadline_ms == 250.0
        assert restored.to_request().deadline_ms == 250.0

    def test_no_deadline_is_omitted_from_the_document(self):
        # Byte-compatibility with pre-deadline documents: the field only
        # appears when set, so old clients and old goldens are unaffected.
        doc = CloakRequestDoc(user_id=7, profile=PROFILE, chain=CHAIN)
        assert "deadline_ms" not in doc.to_dict()
        assert CloakRequestDoc.from_json(doc.to_json()).deadline_ms is None


class TestDeanonymizeRequestDoc:
    def test_json_round_trip(self):
        doc = DeanonymizeRequestDoc(
            envelope=ENVELOPE,
            keys=CHAIN.suffix(1),
            target_level=0,
            mode="hint",
        )
        restored = DeanonymizeRequestDoc.from_json(doc.to_json())
        assert restored == doc
        assert restored.key_map() == {key.level: key for key in CHAIN}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("envelope"),
            lambda d: d.pop("keys"),
            lambda d: d.pop("target_level"),
            lambda d: d.update(envelope={"format": "nope"}),
            lambda d: d.update(format="repro.cloak_request"),
        ],
    )
    def test_malformed_documents_raise_structured_code(self, mutate):
        document = DeanonymizeRequestDoc(
            envelope=ENVELOPE, keys=CHAIN.suffix(1), target_level=0
        ).to_dict()
        mutate(document)
        with pytest.raises(WireFormatError) as excinfo:
            DeanonymizeRequestDoc.from_dict(document)
        assert error_code_for(excinfo.value) == MALFORMED_DOCUMENT

    def test_deadline_round_trips(self):
        doc = DeanonymizeRequestDoc(
            envelope=ENVELOPE,
            keys=CHAIN.suffix(1),
            target_level=0,
            deadline_ms=75.5,
        )
        restored = DeanonymizeRequestDoc.from_json(doc.to_json())
        assert restored.deadline_ms == 75.5
        plain = DeanonymizeRequestDoc(
            envelope=ENVELOPE, keys=CHAIN.suffix(1), target_level=0
        )
        assert "deadline_ms" not in plain.to_dict()

    def test_batch_level_deadline_round_trips(self):
        item = DeanonymizeRequestDoc(
            envelope=ENVELOPE, keys=CHAIN.suffix(1), target_level=0
        )
        batch = DeanonymizeBatchDoc(items=(item,), deadline_ms=500.0)
        restored = DeanonymizeBatchDoc.from_json(batch.to_json())
        assert restored.deadline_ms == 500.0
        assert restored.items[0].deadline_ms is None  # default, not a rewrite
        bare = DeanonymizeBatchDoc(items=(item,))
        assert "deadline_ms" not in bare.to_dict()
        assert DeanonymizeBatchDoc.from_json(bare.to_json()).deadline_ms is None


class TestOutcomeDoc:
    def test_envelope_round_trip(self):
        doc = OutcomeDoc.from_envelope(ENVELOPE)
        restored = OutcomeDoc.from_json(doc.to_json())
        assert restored.ok
        assert restored.envelope == ENVELOPE
        assert restored.envelope.to_json() == ENVELOPE.to_json()
        assert restored.raise_if_error() is restored

    def test_result_round_trip(self):
        result = ENGINE.deanonymize(ENVELOPE, CHAIN, target_level=0)
        doc = OutcomeDoc.from_result(result)
        restored = OutcomeDoc.from_json(doc.to_json())
        assert restored.ok
        assert restored.result.target_level == result.target_level
        assert restored.result.regions == result.regions
        assert restored.result.removed == result.removed

    def test_error_round_trip_preserves_type_and_details(self):
        doc = OutcomeDoc.from_exception(ToleranceExceededError(2, "no fit"))
        restored = OutcomeDoc.from_json(doc.to_json())
        assert not restored.ok
        assert restored.error_code == "tolerance_exceeded"
        rebuilt = restored.to_exception()
        assert isinstance(rebuilt, ToleranceExceededError)
        assert rebuilt.level == 2 and rebuilt.detail == "no fit"
        with pytest.raises(ToleranceExceededError):
            restored.raise_if_error()

    def test_exactly_one_payload_enforced(self):
        with pytest.raises(WireFormatError):
            OutcomeDoc()
        with pytest.raises(WireFormatError):
            OutcomeDoc(envelope=ENVELOPE, error_code="cloaking_failed")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("status"),
            lambda d: d.update(status="maybe"),
            lambda d: (d.pop("envelope"), None)[1],
            lambda d: d.update(format="repro.cloak_request"),
        ],
    )
    def test_malformed_documents_raise_structured_code(self, mutate):
        document = OutcomeDoc.from_envelope(ENVELOPE).to_dict()
        mutate(document)
        with pytest.raises(WireFormatError) as excinfo:
            OutcomeDoc.from_dict(document)
        assert error_code_for(excinfo.value) == MALFORMED_DOCUMENT


class TestErrorCodes:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (WireFormatError("x"), "malformed_document"),
            (ToleranceExceededError(1, "d"), "tolerance_exceeded"),
            (FrontierExhaustedError(1), "frontier_exhausted"),
            (CollisionError(2, 3), "reversal_collision"),
            (KeyMismatchError("x"), "key_mismatch"),
            (ProfileError("x"), "invalid_profile"),
            (DeadlineExceededError("x"), "deadline_exceeded"),
            (WorkerCrashedError("x"), "worker_crashed"),
            (OverloadedError("x"), "overloaded"),
            (CloakingError("x"), "cloaking_failed"),
            (MobilityError("x"), "mobility_unavailable"),
            (ReverseCloakError("x"), "internal_error"),
            (RuntimeError("x"), "internal_error"),
        ],
    )
    def test_code_mapping(self, exc, code):
        assert error_code_for(exc) == code

    def test_dual_derived_codes_dispatch_before_their_bases(self):
        # DeadlineExceededError and WorkerCrashedError derive from *both*
        # CloakingError and DeanonymizationError (so both batch failure
        # unions accept them without widening); the ERROR_CODES table must
        # still resolve them to their own codes, not a base's.
        assert isinstance(DeadlineExceededError("x"), CloakingError)
        assert isinstance(DeadlineExceededError("x"), DeanonymizationError)
        assert isinstance(WorkerCrashedError("x"), CloakingError)
        assert isinstance(WorkerCrashedError("x"), DeanonymizationError)
        assert error_code_for(DeadlineExceededError("x")) == "deadline_exceeded"
        assert error_code_for(WorkerCrashedError("x")) == "worker_crashed"

    @pytest.mark.parametrize(
        "exc",
        [
            DeadlineExceededError("deadline of 5 ms exceeded"),
            WorkerCrashedError("worker chunk lost"),
            OverloadedError("budget full; shed"),
        ],
    )
    def test_fault_codes_round_trip_through_outcome_docs(self, exc):
        restored = OutcomeDoc.from_json(
            OutcomeDoc.from_exception(exc).to_json()
        )
        assert not restored.ok
        rebuilt = restored.to_exception()
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)

    @pytest.mark.parametrize(
        "exc, cls",
        [
            (FrontierExhaustedError(3), FrontierExhaustedError),
            (CollisionError(2, 5), CollisionError),
            (KeyMismatchError("bad key"), KeyMismatchError),
            (MobilityError("no snapshot"), MobilityError),
            (CloakingError("dead end"), CloakingError),
        ],
    )
    def test_exception_reconstruction_preserves_type(self, exc, cls):
        rebuilt = exception_from_error_doc(error_doc_for(exc))
        assert type(rebuilt) is cls
        assert str(rebuilt) == str(exc)

    def test_unknown_code_falls_back_to_base(self):
        rebuilt = exception_from_error_doc({"code": "???", "message": "m"})
        assert type(rebuilt) is ReverseCloakError

    @pytest.mark.parametrize(
        "code, base",
        [
            ("tolerance_exceeded", CloakingError),
            ("frontier_exhausted", CloakingError),
            ("reversal_collision", DeanonymizationError),
        ],
    )
    def test_parameterised_codes_without_details_degrade_to_base(
        self, code, base
    ):
        # A non-Python client may ship the code without structured details;
        # reconstruction must stay catchable and keep the message intact.
        for payload in (
            {"code": code, "message": "boom"},
            {"code": code, "message": "boom", "details": {"level": "x"}},
        ):
            rebuilt = exception_from_error_doc(payload)
            assert isinstance(rebuilt, base)
            assert str(rebuilt) == "boom"

    def test_malformed_error_doc_raises(self):
        with pytest.raises(WireFormatError):
            exception_from_error_doc({"message": "no code"})


class TestSnapshotDocs:
    def test_users_form_round_trips_exactly(self):
        document = json.loads(json.dumps(snapshot_to_dict(SNAPSHOT)))
        restored = snapshot_from_dict(document)
        assert restored.time == SNAPSHOT.time
        assert restored.users() == SNAPSHOT.users()
        for user_id in SNAPSHOT.users():
            assert restored.segment_of(user_id) == SNAPSHOT.segment_of(user_id)

    def test_counts_form_preserves_counts(self):
        document = json.loads(
            json.dumps(snapshot_to_dict(SNAPSHOT, counts_only=True))
        )
        restored = snapshot_from_dict(document)
        assert restored.time == SNAPSHOT.time
        assert restored.counts() == SNAPSHOT.counts()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: (d.pop("users", None), d.pop("counts", None), None)[2],
            lambda d: d.update(format="repro.envelope"),
            lambda d: d.update(users={"a": "b"}),
        ],
    )
    def test_malformed_documents_raise_structured_code(self, mutate):
        document = snapshot_to_dict(SNAPSHOT)
        mutate(document)
        with pytest.raises(WireFormatError) as excinfo:
            snapshot_from_dict(document)
        assert error_code_for(excinfo.value) == MALFORMED_DOCUMENT
