"""Tests for the trusted anonymization server."""

import pytest

from repro import KeyChain, PrivacyProfile
from repro.errors import MobilityError, ToleranceExceededError
from repro.lbs import CloakRequest, TrustedAnonymizer


@pytest.fixture()
def anonymizer(grid10, traffic_snapshot):
    server = TrustedAnonymizer(grid10)
    server.update_snapshot(traffic_snapshot)
    return server


@pytest.fixture(scope="module")
def profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


class TestCloak:
    def test_serves_request(self, anonymizer, traffic_snapshot, profile):
        user_id = traffic_snapshot.users()[0]
        chain = KeyChain.from_passphrases(["s1", "s2"])
        envelope = anonymizer.cloak(
            CloakRequest(user_id=user_id, profile=profile, chain=chain)
        )
        assert traffic_snapshot.segment_of(user_id) in envelope.region
        assert anonymizer.requests_served == 1

    def test_no_snapshot_rejected(self, grid10, profile):
        server = TrustedAnonymizer(grid10)
        chain = KeyChain.from_passphrases(["s1", "s2"])
        with pytest.raises(MobilityError):
            server.cloak(CloakRequest(user_id=0, profile=profile, chain=chain))

    def test_unknown_user_rejected(self, anonymizer, profile):
        chain = KeyChain.from_passphrases(["s1", "s2"])
        with pytest.raises(MobilityError):
            anonymizer.cloak(
                CloakRequest(user_id=10_000, profile=profile, chain=chain)
            )

    def test_cloak_segment_direct(self, anonymizer, profile):
        chain = KeyChain.from_passphrases(["s1", "s2"])
        envelope = anonymizer.cloak_segment(50, profile, chain)
        assert 50 in envelope.region

    def test_failures_counted(self, anonymizer, traffic_snapshot):
        from repro.core import LevelRequirement, PrivacyProfile, ToleranceSpec

        impossible = PrivacyProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        chain = KeyChain.from_passphrases(["s1"])
        user_id = traffic_snapshot.users()[0]
        with pytest.raises(ToleranceExceededError):
            anonymizer.cloak(
                CloakRequest(user_id=user_id, profile=impossible, chain=chain)
            )
        assert anonymizer.failures == 1

    def test_snapshot_updates_change_results(self, grid10, profile):
        from repro.mobility import PopulationSnapshot

        server = TrustedAnonymizer(grid10)
        chain = KeyChain.from_passphrases(["s1", "s2"])
        dense = PopulationSnapshot.from_counts(
            {segment_id: 5 for segment_id in grid10.segment_ids()}
        )
        sparse = PopulationSnapshot.from_counts(
            {segment_id: 1 for segment_id in grid10.segment_ids()}
        )
        server.update_snapshot(dense)
        envelope_dense = server.cloak_segment(50, profile, chain)
        server.update_snapshot(sparse)
        envelope_sparse = server.cloak_segment(50, profile, chain)
        # fewer users per segment -> the same k needs a larger region
        assert len(envelope_sparse.region) > len(envelope_dense.region)
