"""Tests for POI directories and anonymous range queries."""

import pytest

from repro.errors import QueryError
from repro.lbs import PoiDirectory, range_query
from repro.roadnet import Point, grid_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6, spacing=100.0)


@pytest.fixture(scope="module")
def directory(grid):
    return PoiDirectory(grid, count=80, seed=3)


class TestPoiDirectory:
    def test_count(self, directory):
        assert len(directory) == 80

    def test_pois_sit_on_their_segment(self, grid, directory):
        from repro.roadnet import point_segment_distance

        for poi in directory.all_pois():
            a, b = grid.segment_endpoints(poi.segment_id)
            assert point_segment_distance(poi.location, a, b) < 1e-6

    def test_categories_cycled(self, directory):
        categories = {poi.category for poi in directory.all_pois()}
        assert categories == {"fuel", "food", "atm", "pharmacy"}

    def test_pois_on_lookup(self, directory):
        poi = directory.all_pois()[0]
        assert poi in directory.pois_on(poi.segment_id)

    def test_deterministic(self, grid):
        a = PoiDirectory(grid, count=20, seed=9)
        b = PoiDirectory(grid, count=20, seed=9)
        assert [p.segment_id for p in a.all_pois()] == [
            p.segment_id for p in b.all_pois()
        ]

    def test_invalid_construction(self, grid):
        with pytest.raises(QueryError):
            PoiDirectory(grid, count=-1)
        with pytest.raises(QueryError):
            PoiDirectory(grid, count=5, categories=())

    def test_pois_near_point(self, directory):
        center = Point(250.0, 250.0)
        hits = directory.pois_near_point(center, radius=150.0)
        assert all(poi.location.distance_to(center) <= 150.0 for poi in hits)

    def test_pois_near_point_category_filter(self, directory):
        hits = directory.pois_near_point(Point(250, 250), 400.0, category="fuel")
        assert all(poi.category == "fuel" for poi in hits)

    def test_negative_radius(self, directory):
        with pytest.raises(QueryError):
            directory.pois_near_point(Point(0, 0), -1.0)


class TestRangeQuery:
    def test_candidates_are_superset_of_every_exact(self, directory):
        region = {0, 1, 2, 30, 31}
        result = range_query(directory, region, radius=120.0)
        candidate_ids = {poi.poi_id for poi in result.candidates}
        for segment_id in region:
            exact_ids = {poi.poi_id for poi in result.exact_for_segment[segment_id]}
            assert exact_ids <= candidate_ids

    def test_bigger_region_never_fewer_candidates(self, directory):
        small = range_query(directory, {0, 1}, radius=120.0)
        large = range_query(directory, {0, 1, 2, 3, 30, 31, 32}, radius=120.0)
        assert large.candidate_count >= small.candidate_count

    def test_region_size_recorded(self, directory):
        result = range_query(directory, {0, 1, 2}, radius=100.0)
        assert result.region_size == 3

    def test_precision_bounds(self, directory):
        result = range_query(directory, {0, 1, 2, 30}, radius=150.0)
        precision = result.precision_for(0)
        assert 0.0 <= precision <= 1.0

    def test_precision_empty_candidates_is_one(self, directory):
        # a region far from any POI within a tiny radius
        result = range_query(directory, {0}, radius=0.0)
        if result.candidate_count == 0:
            assert result.precision_for(0) == 1.0

    def test_category_filter(self, directory):
        result = range_query(directory, {0, 1, 2}, radius=200.0, category="atm")
        assert all(poi.category == "atm" for poi in result.candidates)

    def test_empty_region_rejected(self, directory):
        with pytest.raises(QueryError):
            range_query(directory, set(), radius=10.0)

    def test_negative_radius_rejected(self, directory):
        with pytest.raises(QueryError):
            range_query(directory, {0}, radius=-5.0)
