"""Network-level fault injection against the socket front-end.

The wire-side mirror of ``test_fault_tolerance``: where that suite
scripts *workers* failing, this one scripts the *network* failing — a
peer stalling mid-frame, truncating, corrupting, dropping the
connection, dribbling bytes — through the deterministic
(connection, frame)-keyed actions of :mod:`repro.lbs.faults` and the
fault-wrapping :class:`FaultyConnection` transport.

Contracts pinned here (the ISSUE's acceptance criteria):

* the same fault plan produces the same statuses, the same structured
  error codes, and **byte-identical outcomes for unaffected requests**
  on every run and on every backend (inline and process pools under each
  start method in ``REPRO_TEST_START_METHODS``);
* no scenario hangs (every read is timeout-bounded) and no admitted
  request is silently lost;
* :class:`ResilientClient` absorbs exactly the faults it exists for —
  dropped connections, server restarts, retryable structured errors, a
  per-request deadline budget — and refuses to retry what would fail
  identically forever.
"""

import asyncio
import json
import os

import pytest

from repro import KeyChain, PrivacyProfile
from repro.errors import OverloadedError
from repro.lbs import (
    AnonymizerService,
    CloakRequest,
    CloakRequestDoc,
    FaultAction,
    FaultPlan,
    FaultyConnection,
    FrontendServer,
    InlineBackend,
    NetworkFaultInjector,
    ProcessPoolBackend,
    ResilientClient,
)
from repro.lbs.deferral import TemporalTolerance
from repro.lbs.wire import MALFORMED_DOCUMENT

START_METHODS = tuple(
    method.strip()
    for method in os.environ.get("REPRO_TEST_START_METHODS", "fork").split(",")
    if method.strip()
)


def _backends():
    backends = [pytest.param(lambda: InlineBackend(), id="inline")]
    for method in START_METHODS:
        backends.append(
            pytest.param(
                lambda method=method: ProcessPoolBackend(2, start_method=method),
                id=f"process-2-{method}",
            )
        )
    return backends


@pytest.fixture(scope="module")
def profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


def _cloak_doc(snapshot, profile, index, tag="nf"):
    user_id = snapshot.users()[index]
    chain = KeyChain.from_passphrases([f"{tag}{index}-1", f"{tag}{index}-2"])
    return CloakRequestDoc.from_request(
        CloakRequest(user_id=user_id, profile=profile, chain=chain)
    ).to_dict()


def _canonical(outcome: dict) -> str:
    return json.dumps(outcome, sort_keys=True)


#: One action per kind, one connection each — the full network-fault
#: vocabulary in a single deterministic script.
ALL_KINDS_PLAN = FaultPlan(
    actions=(
        FaultAction(kind="stall_bytes", connection=0, frame=0),
        FaultAction(kind="truncate_frame", connection=1, frame=0),
        FaultAction(kind="corrupt_frame", connection=2, frame=0),
        FaultAction(kind="drop_connection", connection=3, frame=0),
        FaultAction(kind="dribble_write", connection=4, frame=0, count=3),
    )
)


class TestScriptedWireFaults:
    async def _run_scenario(self, server, documents):
        """Drive one faulted pass: five connections, one fault kind each,
        then a clean follow-up frame on the surviving corrupt-frame
        connection and a clean sixth connection. Returns everything
        observable so two passes can be compared wholesale."""
        injector = NetworkFaultInjector(ALL_KINDS_PLAN)
        conns = []
        for index in range(5):
            conns.append(
                await FaultyConnection.connect(
                    server.host, server.port, injector, connection_index=index
                )
            )
        statuses = []
        for index, conn in enumerate(conns):
            statuses.append(
                await conn.send_frame(
                    {"request_id": index, "request": documents[index]}
                )
            )
        # Bounded reads everywhere: the "never hangs" contract. The live
        # connections are read (and closed) first, so the only connection
        # left to the idle timeout is the deliberately stalled one.
        replies = {}
        for index in (1, 2, 3, 4):
            replies[index] = await conns[index].read_reply(timeout_s=30.0)
        # The corrupt-frame connection took a strike but stayed up: a
        # clean frame on it (frame ordinal 1 — no action matches) must
        # serve byte-identically.
        followup_status = await conns[2].send_frame(
            {"request_id": 99, "request": documents[2]}
        )
        followup = await conns[2].read_reply(timeout_s=30.0)
        for index in (1, 2, 3, 4):
            await conns[index].close()
        # The stalled connection resolves when the server's idle timeout
        # evicts it — a None read, never a hang.
        replies[0] = await conns[0].read_reply(timeout_s=30.0)
        await conns[0].close()
        # A sixth, unscripted connection is untouched by the plan.
        clean = await FaultyConnection.connect(
            server.host, server.port, injector, connection_index=5
        )
        clean_status = await clean.send_frame(
            {"request_id": 100, "request": documents[5]}
        )
        clean_reply = await clean.read_reply(timeout_s=30.0)
        await clean.close()
        return {
            "statuses": statuses,
            "replies": [
                None if replies[index] is None else json.loads(replies[index])
                for index in range(5)
            ],
            "followup": (followup_status, json.loads(followup)),
            "clean": (clean_status, json.loads(clean_reply)),
        }

    @pytest.mark.parametrize("make_backend", _backends())
    def test_all_kinds_structured_and_deterministic(
        self, grid10, traffic_snapshot, profile, make_backend
    ):
        documents = [
            _cloak_doc(traffic_snapshot, profile, index) for index in range(6)
        ]
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            # Direct serving through the same batch path the front-end
            # dispatches on. This also spins the worker pool up *before*
            # any socket exists: cold-start latency is a start-up cost,
            # not a fault outcome, and must not skew the idle clocks.
            expected = [
                json.dumps(outcome, sort_keys=True)
                for outcome in service.handle_batch(documents)
            ]

            async def main():
                runs = []
                counters = []
                for _ in range(2):
                    async with FrontendServer(
                        service, batch_window_ms=1.0, idle_timeout_s=0.3
                    ) as server:
                        runs.append(
                            await self._run_scenario(server, documents)
                        )
                        counters.append(server.counters())
                return runs, counters

            runs, counters = asyncio.run(main())

        first, second = runs
        # Determinism: the whole observable surface — statuses, error
        # codes, reply bytes — is identical across the two passes.
        assert first == second
        assert first["statuses"] == [
            "stalled",
            "truncated",
            "corrupted",
            "dropped",
            "sent",
        ]
        # Stalled / truncated / dropped connections get no reply — the
        # server evicted or lost them, visibly, without hanging us.
        assert first["replies"][0] is None
        assert first["replies"][1] is None
        assert first["replies"][3] is None
        # The corrupted frame is answered with the structured code and an
        # unattributable null id (its request_id was scrambled too).
        corrupted = first["replies"][2]
        assert corrupted["request_id"] is None
        assert corrupted["outcome"]["error"]["code"] == MALFORMED_DOCUMENT
        # The dribbled frame and every clean frame are byte-identical to
        # direct serving — pathological chunking changes nothing.
        dribbled = first["replies"][4]
        assert dribbled["request_id"] == 4
        assert _canonical(dribbled["outcome"]) == expected[4]
        followup_status, followup = first["followup"]
        assert followup_status == "sent"
        assert followup["request_id"] == 99
        assert _canonical(followup["outcome"]) == expected[2]
        clean_status, clean_reply = first["clean"]
        assert clean_status == "sent"
        assert _canonical(clean_reply["outcome"]) == expected[5]
        # Server-side bookkeeping, per pass: the stall was an idle
        # eviction (the only one); the truncation a rejected torn frame;
        # the corruption a malformed strike.
        for passed in counters:
            assert passed["idle_timeouts"] == 1
            assert passed["connections_evicted"] == 1
            assert passed["malformed_frames"] == 1
            assert passed["frames_rejected"] == 2


class TestResilientClient:
    def test_rides_out_scripted_disconnects(
        self, grid10, traffic_snapshot, profile
    ):
        """Two mid-stream connection drops; both requests still complete
        byte-identically, with exactly two reconnects on the counter."""
        plan = FaultPlan(
            actions=(
                FaultAction(kind="drop_connection", connection=0, frame=0),
                FaultAction(kind="drop_connection", connection=0, frame=2),
            )
        )
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        documents = [
            _cloak_doc(traffic_snapshot, profile, index) for index in range(2)
        ]
        expected = [service.handle_json(json.dumps(doc)) for doc in documents]

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = ResilientClient(
                    server.host,
                    server.port,
                    fault_injector=NetworkFaultInjector(plan),
                )
                outcomes = [await client.request(doc) for doc in documents]
                reconnects, retries = client.reconnects, client.retries
                await client.close()
                return outcomes, reconnects, retries

        outcomes, reconnects, retries = asyncio.run(main())
        assert [_canonical(outcome) for outcome in outcomes] == expected
        assert reconnects == 2
        assert retries == 2

    def test_retries_retryable_structured_errors(
        self, grid10, traffic_snapshot, profile
    ):
        """A structured ``overloaded`` outcome is retried (the request was
        shed, nothing ran); the retry serves normally."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        original = service.handle_batch
        calls = {"count": 0}

        def flaky(documents):
            calls["count"] += 1
            if calls["count"] == 1:
                raise OverloadedError("induced shed for the retry test")
            return original(documents)

        service.handle_batch = flaky
        document = _cloak_doc(traffic_snapshot, profile, 0)
        expected = json.dumps(
            json.loads(service.handle_json(json.dumps(document))),
            sort_keys=True,
        )

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = ResilientClient(server.host, server.port)
                outcome = await client.request(document)
                retries = client.retries
                await client.close()
                return outcome, retries

        outcome, retries = asyncio.run(main())
        assert _canonical(outcome) == expected
        assert retries == 1

    def test_non_retryable_errors_surface_immediately(
        self, grid10, traffic_snapshot
    ):
        """A malformed document would fail identically forever: no retry,
        no reconnect, the structured outcome comes straight back."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = ResilientClient(server.host, server.port)
                outcome = await client.request({"format": "repro.no_such_op"})
                reconnects, retries = client.reconnects, client.retries
                await client.close()
                return outcome, reconnects, retries

        outcome, reconnects, retries = asyncio.run(main())
        assert outcome["status"] == "error"
        assert outcome["error"]["code"] == MALFORMED_DOCUMENT
        assert reconnects == 0
        assert retries == 0

    def test_deadline_budget_bounds_the_whole_attempt(
        self, grid10, traffic_snapshot, profile
    ):
        """With the server wedged, a budgeted request returns a structured
        ``deadline_exceeded`` outcome within its budget — never a hang."""
        import threading

        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        gate = threading.Event()
        original = service.handle_batch

        def gated(documents):
            assert gate.wait(timeout=60), "test gate never released"
            return original(documents)

        service.handle_batch = gated
        document = _cloak_doc(traffic_snapshot, profile, 0)

        try:

            async def main():
                loop = asyncio.get_running_loop()
                async with FrontendServer(service, batch_window_ms=1.0) as server:
                    client = ResilientClient(server.host, server.port)
                    begin = loop.time()
                    outcome = await asyncio.wait_for(
                        client.request(document, deadline_ms=300.0), timeout=30
                    )
                    elapsed = loop.time() - begin
                    gate.set()  # un-wedge before the context drains
                    await client.close()
                    return outcome, elapsed

            outcome, elapsed = asyncio.run(main())
        finally:
            gate.set()
        assert outcome["status"] == "error"
        assert outcome["error"]["code"] == "deadline_exceeded"
        assert elapsed < 5.0

    def test_survives_server_restart_on_same_port(
        self, grid10, traffic_snapshot, profile
    ):
        """The example scenario: the server goes away between requests and
        comes back on the same port; the client reconnects and the second
        request is byte-identical to direct serving."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        documents = [
            _cloak_doc(traffic_snapshot, profile, index) for index in range(2)
        ]
        expected = [service.handle_json(json.dumps(doc)) for doc in documents]

        async def main():
            server_a = FrontendServer(service, batch_window_ms=1.0)
            await server_a.start()
            host, port = server_a.host, server_a.port
            client = ResilientClient(
                host,
                port,
                tolerance=TemporalTolerance(
                    max_defer_seconds=20.0,
                    retry_interval_seconds=0.05,
                    backoff_factor=2.0,
                    jitter_fraction=0.25,
                    jitter_seed=20170605,
                ),
            )
            first = await client.request(documents[0])
            await server_a.close()
            server_b = FrontendServer(service, host, port, batch_window_ms=1.0)
            await server_b.start()
            second = await asyncio.wait_for(client.request(documents[1]), 30)
            reconnects = client.reconnects
            await client.close()
            await server_b.close()
            return first, second, reconnects

        first, second, reconnects = asyncio.run(main())
        assert _canonical(first) == expected[0]
        assert _canonical(second) == expected[1]
        assert reconnects >= 1
