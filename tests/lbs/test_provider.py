"""Tests for the LBS provider serving cloaked users."""

import pytest

from repro import KeyChain, PrivacyProfile, ReverseCloakEngine
from repro.errors import QueryError
from repro.lbs import LBSProvider, PoiDirectory


@pytest.fixture(scope="module")
def setup(grid10, dense_snapshot):
    """(provider, envelope, chain, engine) with one uploaded cloak."""
    profile = PrivacyProfile.uniform(
        levels=3, base_k=4, k_step=4, base_l=3, l_step=2, max_segments=60
    )
    chain = KeyChain.from_passphrases(["p1", "p2", "p3"])
    engine = ReverseCloakEngine(grid10)
    envelope = engine.anonymize(90, dense_snapshot, profile, chain)
    provider = LBSProvider(PoiDirectory(grid10, count=120, seed=5))
    provider.upload("alice", envelope)
    return provider, envelope, chain, engine


class TestUploads:
    def test_visible_region_is_outermost(self, setup):
        provider, envelope, __, __ = setup
        assert provider.visible_region("alice") == envelope.region

    def test_unknown_pseudonym(self, setup):
        provider = setup[0]
        with pytest.raises(QueryError):
            provider.envelope_of("bob")

    def test_empty_pseudonym_rejected(self, setup):
        provider, envelope, __, __ = setup
        with pytest.raises(QueryError):
            provider.upload("", envelope)

    def test_known_pseudonyms(self, setup):
        provider = setup[0]
        assert "alice" in provider.known_pseudonyms()


class TestQueries:
    def test_serves_on_full_region(self, setup):
        provider, envelope, __, __ = setup
        result = provider.serve_range_query("alice", radius=150.0)
        assert result.region_size == len(envelope.region)

    def test_keyholder_gets_tighter_results(self, setup):
        provider, envelope, chain, engine = setup
        reduced = engine.deanonymize(envelope, chain, target_level=1).regions[1]
        full = provider.serve_range_query("alice", radius=150.0)
        tight = provider.serve_range_query(
            "alice", radius=150.0, region_override=reduced
        )
        assert tight.candidate_count <= full.candidate_count
        assert tight.region_size < full.region_size

    def test_override_must_be_subset(self, setup):
        provider = setup[0]
        with pytest.raises(QueryError):
            provider.serve_range_query(
                "alice", radius=100.0, region_override=(99999,)
            )

    def test_override_must_be_non_empty(self, setup):
        provider = setup[0]
        with pytest.raises(QueryError):
            provider.serve_range_query("alice", radius=100.0, region_override=())
