"""Tests for :class:`~repro.lbs.service.AnonymizerService` — the serving
facade: cloaking, the server-side deanonymize endpoint, the raw-document
``handle`` entry point, and the deprecated ``TrustedAnonymizer`` shim."""

import json
import threading
import warnings

import pytest

from repro import (
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
)
from repro.core import LevelRequirement, PrivacyProfile as CoreProfile, ToleranceSpec
from repro.errors import (
    DeadlineExceededError,
    MobilityError,
    OverloadedError,
    ProfileError,
    ToleranceExceededError,
)
from repro.lbs import (
    AnonymizerService,
    BatchOutcomeDoc,
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
    ReversalEngineCache,
    TrustedAnonymizer,
)
from repro.lbs.wire import (
    MALFORMED_DOCUMENT,
    STATS_FORMAT,
    STATS_REQUEST_FORMAT,
    WIRE_VERSION,
)


@pytest.fixture(scope="module")
def profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


@pytest.fixture()
def service(grid10, traffic_snapshot):
    service = AnonymizerService(grid10)
    service.update_snapshot(traffic_snapshot)
    return service


def _request(snapshot, profile, index=0, tag="svc"):
    user_id = snapshot.users()[index]
    return CloakRequest(
        user_id=user_id,
        profile=profile,
        chain=KeyChain.from_passphrases([f"{tag}-1", f"{tag}-2"]),
    )


class TestCloaking:
    def test_serves_request_and_counts(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile)
        envelope = service.cloak(request)
        assert traffic_snapshot.segment_of(request.user_id) in envelope.region
        assert service.requests_served == 1
        assert service.failures == 0

    def test_no_snapshot_rejected(self, grid10, profile):
        bare = AnonymizerService(grid10)
        with pytest.raises(MobilityError):
            bare.cloak(
                CloakRequest(
                    user_id=0,
                    profile=profile,
                    chain=KeyChain.from_passphrases(["x1", "x2"]),
                )
            )
        with pytest.raises(MobilityError):
            bare.cloak_batch([_request_stub(profile)])

    def test_failures_counted(self, service, traffic_snapshot):
        impossible = CoreProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        with pytest.raises(ToleranceExceededError):
            service.cloak(
                CloakRequest(
                    user_id=traffic_snapshot.users()[0],
                    profile=impossible,
                    chain=KeyChain.from_passphrases(["f1"]),
                )
            )
        assert service.failures == 1

    def test_cloak_segment(self, service, profile):
        chain = KeyChain.from_passphrases(["seg-1", "seg-2"])
        envelope = service.cloak_segment(50, profile, chain)
        assert 50 in envelope.region

    def test_explicit_width_overrides_backend(
        self, service, traffic_snapshot, profile
    ):
        requests = [
            CloakRequest(
                user_id=user_id,
                profile=profile,
                chain=KeyChain.from_passphrases([f"w{user_id}-1", f"w{user_id}-2"]),
            )
            for user_id in traffic_snapshot.users()[:6]
        ]
        inline = service.cloak_batch(requests, max_workers=1)
        pooled = service.cloak_batch(requests, max_workers=3)
        default = service.cloak_batch(requests)
        expected = [o.envelope.to_json() for o in inline]
        assert [o.envelope.to_json() for o in pooled] == expected
        assert [o.envelope.to_json() for o in default] == expected
        assert service.requests_served == 18


def _request_stub(profile):
    return CloakRequest(
        user_id=0, profile=profile, chain=KeyChain.from_passphrases(["a", "b"])
    )


class TestDeanonymizeEndpoint:
    def test_multi_level_peel(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="peel")
        envelope = service.cloak(request)
        user_segment = traffic_snapshot.segment_of(request.user_id)
        result = service.deanonymize(envelope, request.chain, target_level=0)
        assert result.region_at(0) == (user_segment,)
        assert service.reversals_served == 1
        partial = service.deanonymize(
            envelope, request.chain.suffix(2), target_level=1
        )
        assert set(partial.region_at(1)) < set(envelope.region)

    def test_matches_direct_engine(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="eq")
        envelope = service.cloak(request)
        direct = ReverseCloakEngine(service.network).deanonymize(
            envelope, request.chain, target_level=0
        )
        via_service = service.deanonymize(envelope, request.chain, target_level=0)
        assert via_service.regions == direct.regions
        assert via_service.removed == direct.removed

    def test_foreign_algorithm_envelope(self, grid10, traffic_snapshot, profile):
        # A service configured for RGE must still reverse an RPLE envelope:
        # the reversal engine comes from the envelope's own metadata.
        rple = ReversiblePreassignmentExpansion.for_network(grid10)
        producer = AnonymizerService(grid10, rple)
        producer.update_snapshot(traffic_snapshot)
        request = _request(traffic_snapshot, profile, tag="foreign")
        envelope = producer.cloak(request)
        consumer = AnonymizerService(grid10)
        consumer.update_snapshot(traffic_snapshot)
        result = consumer.deanonymize(envelope, request.chain, target_level=0)
        assert result.region_at(0) == (
            traffic_snapshot.segment_of(request.user_id),
        )
        # The per-spec reversal engine is cached across calls.
        assert consumer._reversal_engine(envelope) is consumer._reversal_engine(
            envelope
        )


class TestDeanonymizeBatchEndpoint:
    def test_matches_sequential_deanonymize(
        self, service, traffic_snapshot, profile
    ):
        requests = []
        for index in range(4):
            request = _request(traffic_snapshot, profile, index, tag=f"db{index}")
            envelope = service.cloak(request)
            requests.append(
                DeanonymizeRequestDoc(
                    envelope=envelope, keys=tuple(request.chain), target_level=0
                )
            )
        expected = [
            service.deanonymize(r.envelope, r.key_map(), 0) for r in requests
        ]
        outcomes = service.deanonymize_batch(requests)
        assert all(o.ok for o in outcomes)
        assert [o.result.regions for o in outcomes] == [
            e.regions for e in expected
        ]
        assert [o.result.removed for o in outcomes] == [
            e.removed for e in expected
        ]

    def test_empty_batch(self, service):
        assert service.deanonymize_batch([]) == []


class TestReversalEngineCacheLRU:
    """Regression for the unbounded `_reversal_engines` dict: envelope
    algorithm metadata is attacker input on the wire endpoint, so churning
    params must evict old engines, not accumulate them."""

    class _Envelope:
        """The two fields engine resolution reads (RGE ignores params, so
        churning them makes distinct cache keys without expensive builds)."""

        def __init__(self, params):
            self.algorithm = "rge"
            self.algorithm_params = params

    def test_eviction_and_reuse(self, grid6):
        cache = ReversalEngineCache(grid6, cap=4)
        first = self._Envelope({"churn": 0})
        engine_zero = cache.engine_for(first)
        assert cache.engine_for(first) is engine_zero  # cached, not rebuilt
        for index in range(1, 10):
            cache.engine_for(self._Envelope({"churn": index}))
        assert len(cache) == 4  # bounded: eviction happened
        # Entry 0 was evicted — a fresh engine object comes back...
        assert cache.engine_for(first) is not engine_zero
        # ...while the most recent entries survived and are reused.
        recent = self._Envelope({"churn": 9})
        assert cache.engine_for(recent) is cache.engine_for(recent)

    def test_lru_order_refreshes_on_hit(self, grid6):
        cache = ReversalEngineCache(grid6, cap=2)
        hot = self._Envelope({"w": "hot"})
        hot_engine = cache.engine_for(hot)
        cache.engine_for(self._Envelope({"w": "b"}))
        cache.engine_for(hot)  # refresh: hot becomes most recent
        cache.engine_for(self._Envelope({"w": "c"}))  # evicts b, not hot
        assert cache.engine_for(hot) is hot_engine

    def test_service_reversal_cache_is_bounded(
        self, service, traffic_snapshot, profile
    ):
        for index in range(40):
            service._reversal_engine(self._Envelope({"i": index}))
        assert len(service._reversal_engines) <= 32
        # The service's own algorithm spec bypasses the LRU entirely.
        request = _request(traffic_snapshot, profile, tag="lru")
        envelope = service.cloak(request)
        assert service._reversal_engine(envelope) is service.engine


class TestReversalCounters:
    """Regression: reversal failures used to increment nothing, and
    `handle` converted them to outcome docs leaving no trace at all."""

    def test_direct_deanonymize_failure_counts(
        self, service, traffic_snapshot, profile
    ):
        request = _request(traffic_snapshot, profile, tag="cnt")
        envelope = service.cloak(request)
        wrong = KeyChain.from_passphrases(["bad-1", "bad-2"])
        with pytest.raises(Exception):
            service.deanonymize(envelope, wrong, target_level=0)
        assert service.reversal_failures == 1
        assert service.failures == 1
        assert service.reversals_served == 0

    def test_handle_reversal_failure_leaves_a_trace(
        self, service, traffic_snapshot, profile
    ):
        request = _request(traffic_snapshot, profile, tag="hcnt")
        envelope = service.cloak(request)
        wrong = KeyChain.from_passphrases(["worse-1", "worse-2"])
        document = DeanonymizeRequestDoc(
            envelope=envelope, keys=tuple(wrong), target_level=0
        ).to_dict()
        outcome = OutcomeDoc.from_dict(service.handle(document))
        assert not outcome.ok
        assert service.reversal_failures == 1
        assert service.failures == 1
        assert service.reversals_served == 0
        # A successful reversal through handle still counts as served.
        good = DeanonymizeRequestDoc(
            envelope=envelope, keys=tuple(request.chain), target_level=0
        ).to_dict()
        assert OutcomeDoc.from_dict(service.handle(good)).ok
        assert service.reversals_served == 1
        assert service.failures == 1

    def test_batch_counters_split_success_and_failure(
        self, service, traffic_snapshot, profile
    ):
        request = _request(traffic_snapshot, profile, tag="bcnt")
        envelope = service.cloak(request)
        wrong = KeyChain.from_passphrases(["nope-1", "nope-2"])
        batch = [
            DeanonymizeRequestDoc(
                envelope=envelope, keys=tuple(request.chain), target_level=0
            ),
            DeanonymizeRequestDoc(
                envelope=envelope, keys=tuple(wrong), target_level=0
            ),
            DeanonymizeRequestDoc(
                envelope=envelope, keys=tuple(request.chain), target_level=1
            ),
        ]
        outcomes = service.deanonymize_batch(batch)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert service.reversals_served == 2
        assert service.reversal_failures == 1
        assert service.failures == 1
        # Cloak-side failures keep accumulating into the same total.
        impossible = CoreProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        with pytest.raises(ToleranceExceededError):
            service.cloak(
                CloakRequest(
                    user_id=traffic_snapshot.users()[0],
                    profile=impossible,
                    chain=KeyChain.from_passphrases(["c1"]),
                )
            )
        assert service.failures == 2
        assert service.reversal_failures == 1


class TestHandle:
    def test_cloak_document_round_trip(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="doc")
        expected = service.cloak(request)
        outcome = OutcomeDoc.from_dict(
            service.handle(CloakRequestDoc.from_request(request).to_dict())
        )
        assert outcome.ok
        assert outcome.envelope.to_json() == expected.to_json()

    def test_resolved_segment_document(self, service, profile):
        chain = KeyChain.from_passphrases(["rs-1", "rs-2"])
        document = CloakRequestDoc(
            user_id=999_999, profile=profile, chain=chain, user_segment=50
        ).to_dict()
        outcome = OutcomeDoc.from_dict(service.handle(document))
        assert outcome.ok
        assert 50 in outcome.envelope.region

    def test_deanonymize_document(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="dd")
        envelope = service.cloak(request)
        document = DeanonymizeRequestDoc(
            envelope=envelope, keys=tuple(request.chain), target_level=0
        ).to_dict()
        outcome = OutcomeDoc.from_dict(service.handle(document))
        assert outcome.ok
        assert outcome.result.region_at(0) == (
            traffic_snapshot.segment_of(request.user_id),
        )

    def test_deanonymize_batch_document(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="bd")
        envelope = service.cloak(request)
        wrong = KeyChain.from_passphrases(["bw-1", "bw-2"])
        batch = DeanonymizeBatchDoc(
            items=(
                DeanonymizeRequestDoc(
                    envelope=envelope, keys=tuple(request.chain), target_level=0
                ),
                DeanonymizeRequestDoc(
                    envelope=envelope, keys=tuple(wrong), target_level=0
                ),
            )
        )
        reply = BatchOutcomeDoc.from_dict(service.handle(batch.to_dict()))
        assert len(reply.outcomes) == 2
        assert reply.outcomes[0].ok
        assert reply.outcomes[0].result.region_at(0) == (
            traffic_snapshot.segment_of(request.user_id),
        )
        assert not reply.outcomes[1].ok
        assert reply.outcomes[1].error_code == "key_mismatch"
        assert not reply.ok
        # The whole exchange survives a JSON transport.
        json_reply = BatchOutcomeDoc.from_json(
            service.handle_json(batch.to_json())
        )
        assert json_reply.to_json() == reply.to_json()

    def test_serving_failure_becomes_structured_error(
        self, service, traffic_snapshot
    ):
        impossible = CoreProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        document = CloakRequestDoc(
            user_id=traffic_snapshot.users()[0],
            profile=impossible,
            chain=KeyChain.from_passphrases(["h1"]),
        ).to_dict()
        outcome = OutcomeDoc.from_dict(service.handle(document))
        assert not outcome.ok
        assert outcome.error_code == "tolerance_exceeded"
        assert isinstance(outcome.to_exception(), ToleranceExceededError)

    @pytest.mark.parametrize(
        "document",
        [
            {"format": "repro.cloak_request", "version": 1},  # missing fields
            {"format": "what.is.this", "version": 1},
            {"no": "format"},
            "not even a dict",
        ],
    )
    def test_malformed_documents_become_structured_errors(self, service, document):
        outcome = OutcomeDoc.from_dict(service.handle(document))
        assert not outcome.ok
        assert outcome.error_code == MALFORMED_DOCUMENT

    def test_handle_json(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="hj")
        payload = CloakRequestDoc.from_request(request).to_json()
        outcome = OutcomeDoc.from_json(service.handle_json(payload))
        assert outcome.ok
        bad = OutcomeDoc.from_json(service.handle_json("{broken"))
        assert bad.error_code == MALFORMED_DOCUMENT


class TestAdmissionControl:
    """Load shedding: a bounded in-flight budget rejects excess work up
    front with the structured ``overloaded`` code — backpressure, not a
    serving failure."""

    def _service(self, grid10, traffic_snapshot, max_inflight):
        service = AnonymizerService(grid10, max_inflight=max_inflight)
        service.update_snapshot(traffic_snapshot)
        return service

    def test_invalid_budget_rejected(self, grid10):
        with pytest.raises(ProfileError):
            AnonymizerService(grid10, max_inflight=0)

    def test_unbounded_by_default(self, service):
        assert service.max_inflight is None
        assert service.inflight == 0
        assert service.requests_shed == 0

    def test_oversized_batch_shed_all_or_nothing(
        self, grid10, traffic_snapshot, profile
    ):
        service = self._service(grid10, traffic_snapshot, max_inflight=2)
        requests = [
            _request(traffic_snapshot, profile, index, tag=f"sh{index}")
            for index in range(3)
        ]
        with pytest.raises(OverloadedError, match="in-flight budget"):
            service.cloak_batch(requests)
        # Nothing executed, nothing leaked: the batch was rejected at the
        # door, the budget is free again, and shedding is not a failure.
        assert service.requests_served == 0
        assert service.failures == 0
        assert service.requests_shed == 3
        assert service.inflight == 0
        # A batch that fits still serves.
        assert all(o.ok for o in service.cloak_batch(requests[:2]))
        assert service.requests_served == 2

    def test_concurrent_load_beyond_budget_is_shed(
        self, grid10, traffic_snapshot, profile
    ):
        service = self._service(grid10, traffic_snapshot, max_inflight=1)
        release = threading.Event()
        entered = threading.Event()
        original = service.engine.anonymize

        def slow_anonymize(*args, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return original(*args, **kwargs)

        service._engine.anonymize = slow_anonymize
        holder = threading.Thread(
            target=service.cloak, args=(_request(traffic_snapshot, profile),)
        )
        holder.start()
        try:
            assert entered.wait(timeout=10)
            assert service.inflight == 1
            with pytest.raises(OverloadedError):
                service.cloak(_request(traffic_snapshot, profile, 1, tag="c2"))
            assert service.requests_shed == 1
        finally:
            release.set()
            holder.join(timeout=10)
        assert service.inflight == 0
        assert service.requests_served == 1

    def test_handle_returns_structured_overloaded_outcome(
        self, grid10, traffic_snapshot, profile
    ):
        service = self._service(grid10, traffic_snapshot, max_inflight=1)
        envelope = service.cloak(_request(traffic_snapshot, profile, tag="ho"))
        batch = DeanonymizeBatchDoc(
            items=(
                DeanonymizeRequestDoc(
                    envelope=envelope,
                    keys=tuple(
                        KeyChain.from_passphrases(["ho-1", "ho-2"])
                    ),
                    target_level=0,
                ),
            )
            * 2
        )
        reply = service.handle(batch.to_dict())
        outcome = OutcomeDoc.from_dict(reply)
        assert not outcome.ok
        assert outcome.error_code == "overloaded"
        assert isinstance(outcome.to_exception(), OverloadedError)
        assert service.requests_shed == 2

    def test_reversal_batches_share_the_budget(
        self, grid10, traffic_snapshot, profile
    ):
        service = self._service(grid10, traffic_snapshot, max_inflight=2)
        request = _request(traffic_snapshot, profile, tag="rb")
        envelope = service.cloak(request)
        item = DeanonymizeRequestDoc(
            envelope=envelope, keys=tuple(request.chain), target_level=0
        )
        with pytest.raises(OverloadedError):
            service.deanonymize_batch([item, item, item])
        assert service.requests_shed == 3
        assert all(o.ok for o in service.deanonymize_batch([item, item]))


class TestServiceDeadlines:
    """Cooperative deadlines on the serving facade and the wire path."""

    def test_cloak_segment_honors_deadline(self, service, profile):
        chain = KeyChain.from_passphrases(["ddl-1", "ddl-2"])
        with pytest.raises(DeadlineExceededError):
            service.cloak_segment(50, profile, chain, deadline_ms=0.0)
        assert service.failures == 1
        # Without a deadline (or with a generous one) nothing changes.
        assert 50 in service.cloak_segment(50, profile, chain).region
        assert (
            50
            in service.cloak_segment(
                50, profile, chain, deadline_ms=60_000.0
            ).region
        )

    def test_handle_surfaces_deadline_exceeded_outcome(
        self, service, traffic_snapshot, profile
    ):
        request = _request(traffic_snapshot, profile, tag="hd")
        document = CloakRequestDoc.from_request(request).to_dict()
        document["deadline_ms"] = 0.0
        outcome = OutcomeDoc.from_dict(service.handle(document))
        assert not outcome.ok
        assert outcome.error_code == "deadline_exceeded"
        assert isinstance(outcome.to_exception(), DeadlineExceededError)

    def test_batch_deadline_is_a_default_not_a_cap(
        self, service, traffic_snapshot, profile
    ):
        # The batch-level deadline applies to items without their own;
        # an item's explicit (generous) deadline wins over the expired
        # batch default.
        request = _request(traffic_snapshot, profile, tag="bdl")
        envelope = service.cloak(request)
        defaulted = DeanonymizeRequestDoc(
            envelope=envelope, keys=tuple(request.chain), target_level=0
        )
        explicit = DeanonymizeRequestDoc(
            envelope=envelope,
            keys=tuple(request.chain),
            target_level=0,
            deadline_ms=60_000.0,
        )
        batch = DeanonymizeBatchDoc(
            items=(defaulted, explicit), deadline_ms=0.0
        )
        reply = BatchOutcomeDoc.from_dict(service.handle(batch.to_dict()))
        assert [o.ok for o in reply.outcomes] == [False, True]
        assert reply.outcomes[0].error_code == "deadline_exceeded"


class TestTrustedAnonymizerShim:
    def test_construction_warns_deprecation(self, grid10):
        with pytest.warns(DeprecationWarning, match="AnonymizerService"):
            TrustedAnonymizer(grid10)

    def test_delegates_to_service(self, grid10, traffic_snapshot, profile):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = TrustedAnonymizer(grid10)
        shim.update_snapshot(traffic_snapshot)
        request = _request(traffic_snapshot, profile, tag="shim")
        envelope = shim.cloak(request)
        reference = AnonymizerService(grid10)
        reference.update_snapshot(traffic_snapshot)
        assert envelope.to_json() == reference.cloak(request).to_json()
        assert shim.requests_served == 1
        assert shim.failures == 0
        assert isinstance(shim.service, AnonymizerService)
        outcomes = shim.cloak_batch([request], max_workers=2)
        assert outcomes[0].envelope.to_json() == envelope.to_json()


class TestStats:
    """The ``stats()`` snapshot and its ``repro.stats_request`` wire form."""

    def test_counters_snapshot(self, service, traffic_snapshot, profile):
        request = _request(traffic_snapshot, profile, tag="st")
        envelope = service.cloak(request)
        service.deanonymize(
            envelope, {key.level: key for key in request.chain}, 0
        )
        with pytest.raises(MobilityError):
            service.cloak(
                CloakRequest(
                    user_id=10_000,
                    profile=profile,
                    chain=KeyChain.from_passphrases(["st-x1", "st-x2"]),
                )
            )
        stats = service.stats()
        assert stats == {
            "requests_served": 1,
            "failures": 0,  # a MobilityError is not a cloaking failure
            "reversals_served": 1,
            "reversal_failures": 0,
            "requests_shed": 0,
            "inflight": 0,
            "worker_restarts": 0,
            "inline_fallbacks": 0,
        }

    def test_stats_request_format(self, service, traffic_snapshot, profile):
        service.handle(
            CloakRequestDoc.from_request(
                _request(traffic_snapshot, profile, tag="stw")
            ).to_dict()
        )
        reply = service.handle(
            {"format": STATS_REQUEST_FORMAT, "version": WIRE_VERSION}
        )
        assert reply["format"] == STATS_FORMAT
        assert reply["version"] == WIRE_VERSION
        assert reply["status"] == "ok"
        assert reply["counters"] == service.stats()
        assert reply["counters"]["requests_served"] == 1

    def test_stats_request_version_mismatch(self, service):
        outcome = OutcomeDoc.from_dict(
            service.handle({"format": STATS_REQUEST_FORMAT, "version": 99})
        )
        assert outcome.error_code == MALFORMED_DOCUMENT
        assert "version" in outcome.error_message

    def test_backend_counters_surface(self, grid10, traffic_snapshot, profile):
        from repro.lbs import ProcessPoolBackend

        with ProcessPoolBackend(2, start_method="fork") as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            stats = service.stats()
            assert stats["worker_restarts"] == 0
            assert stats["inline_fallbacks"] == 0


class TestUnknownFormatDiagnostics:
    """Satellite regression: the unknown-format error names the offending
    top-level key(s) instead of a bare ``malformed_document``."""

    def test_missing_format_key_lists_top_level_keys(self, service):
        outcome = OutcomeDoc.from_dict(
            service.handle({"fromat": "repro.cloak_request", "version": 1})
        )
        assert outcome.error_code == MALFORMED_DOCUMENT
        assert "no 'format' key" in outcome.error_message
        assert "'fromat'" in outcome.error_message
        assert "'version'" in outcome.error_message

    def test_unknown_format_value_is_quoted(self, service):
        outcome = OutcomeDoc.from_dict(
            service.handle({"format": "what.is.this", "version": 1})
        )
        assert outcome.error_code == MALFORMED_DOCUMENT
        assert "'what.is.this'" in outcome.error_message

    def test_non_dict_reports_received_type(self, service):
        outcome = OutcomeDoc.from_dict(service.handle(["not", "a", "dict"]))
        assert outcome.error_code == MALFORMED_DOCUMENT
        assert "list" in outcome.error_message

    def test_valid_documents_unchanged(
        self, grid10, service, traffic_snapshot, profile
    ):
        # The fix must not disturb the wire form of valid traffic.
        request = _request(traffic_snapshot, profile, tag="ufd")
        document = CloakRequestDoc.from_request(request).to_dict()
        direct = AnonymizerService(grid10)
        direct.update_snapshot(traffic_snapshot)
        assert service.handle_json(json.dumps(document)) == direct.handle_json(
            json.dumps(document)
        )


class TestHandleBatch:
    """``handle_batch``: positional transport batching over ``handle``."""

    def test_equivalent_to_per_document_handle(
        self, grid10, traffic_snapshot, profile
    ):
        producer = AnonymizerService(grid10)
        producer.update_snapshot(traffic_snapshot)
        peel_request = _request(traffic_snapshot, profile, index=5, tag="hb")
        envelope = producer.cloak(peel_request)
        reference = AnonymizerService(grid10)
        reference.update_snapshot(traffic_snapshot)
        batched = AnonymizerService(grid10)
        batched.update_snapshot(traffic_snapshot)
        documents = [
            CloakRequestDoc.from_request(
                _request(traffic_snapshot, profile, index=i, tag="hb")
            ).to_dict()
            for i in range(3)
        ]
        documents.append(
            DeanonymizeRequestDoc(
                envelope=envelope,
                keys=tuple(peel_request.chain),
                target_level=0,
            ).to_dict()
        )
        documents.append({"format": "what.is.this"})  # unknown stays per-doc
        documents.append(
            dict(documents[0], user_id=10_000)
        )  # unknown user fails in place
        expected = [
            json.dumps(reference.handle(doc), sort_keys=True)
            for doc in documents
        ]
        outcomes = batched.handle_batch(documents)
        assert [
            json.dumps(outcome, sort_keys=True) for outcome in outcomes
        ] == expected
        assert batched.requests_served == reference.requests_served
        assert batched.failures == reference.failures
        assert batched.reversals_served == reference.reversals_served

    def test_empty_batch(self, service):
        assert service.handle_batch([]) == []

    @pytest.mark.parametrize("backend_kind", ["inline", "process"])
    def test_malformed_items_answer_in_place(
        self, grid10, traffic_snapshot, profile, backend_kind
    ):
        """A malformed cloak or peel document inside a coalesced batch
        answers as malformed — never demoted to unknown-user — and counts
        nothing, byte-identical to ``handle`` serving it alone. Runs on
        both the inline backend (parent-side parse) and the process pool
        (the raw fast path defers parsing to the worker shards)."""
        producer = AnonymizerService(grid10)
        producer.update_snapshot(traffic_snapshot)
        peel_request = _request(traffic_snapshot, profile, index=5, tag="hbm")
        envelope = producer.cloak(peel_request)
        good_cloak = CloakRequestDoc.from_request(
            _request(traffic_snapshot, profile, index=1, tag="hbm")
        ).to_dict()
        good_peel = DeanonymizeRequestDoc(
            envelope=envelope,
            keys=tuple(peel_request.chain),
            target_level=0,
        ).to_dict()
        documents = [
            good_cloak,
            # Valid user id, junk profile: ships to the shard, whose
            # parse must answer in place without poisoning the chunk.
            dict(good_cloak, profile={"levels": "nope"}),
            # Non-integer user id: malformed must beat unknown-user.
            dict(good_cloak, user_id="not-an-int"),
            good_peel,
            dict(good_peel, keys="not-a-list"),
            dict(good_cloak, user_id=10_000),  # unknown user, in place
        ]
        reference = AnonymizerService(grid10)
        reference.update_snapshot(traffic_snapshot)
        expected = [
            json.dumps(reference.handle(doc), sort_keys=True)
            for doc in documents
        ]

        def run(batched):
            batched.update_snapshot(traffic_snapshot)
            outcomes = batched.handle_batch(documents)
            assert [
                json.dumps(outcome, sort_keys=True) for outcome in outcomes
            ] == expected
            for key in (
                "requests_served",
                "failures",
                "reversals_served",
                "reversal_failures",
            ):
                assert batched.stats()[key] == reference.stats()[key], key

        if backend_kind == "process":
            from repro.lbs import ProcessPoolBackend

            with ProcessPoolBackend(2, start_method="fork") as backend:
                run(AnonymizerService(grid10, backend=backend))
        else:
            run(AnonymizerService(grid10))

    def test_shed_batch_answers_every_position(
        self, grid10, traffic_snapshot, profile
    ):
        service = AnonymizerService(grid10, max_inflight=1)
        service.update_snapshot(traffic_snapshot)
        documents = [
            CloakRequestDoc.from_request(
                _request(traffic_snapshot, profile, index=i, tag="shb")
            ).to_dict()
            for i in range(3)
        ]
        outcomes = service.handle_batch(documents)
        assert len(outcomes) == 3
        codes = {outcome["error"]["code"] for outcome in outcomes}
        assert codes == {"overloaded"}
        assert service.requests_shed == 3
