"""Tests for the deterministic fault-injection harness and cooperative
deadlines (:mod:`repro.lbs.faults`).

These are the *mechanism* tests: plan round-trips, matching semantics, and
deadline arithmetic. The recovery paths they feed — supervision, degraded
execution, teardown escalation — are exercised end-to-end in
``test_fault_tolerance.py``.
"""

import json

import pytest

from repro.errors import DeadlineExceededError, WireFormatError
from repro.lbs import Deadline, FaultAction, FaultInjector, FaultPlan
from repro.lbs.faults import FAULT_PLAN_ENV


class TestDeadline:
    def test_inert_by_default(self):
        deadline = Deadline.start(None)
        assert not deadline.active
        assert deadline.budget_ms is None
        assert deadline.remaining_s() is None
        assert not deadline.expired
        deadline.check()  # never raises

    def test_inert_deadline_ignores_injected_delay(self):
        deadline = Deadline.start(None)
        deadline.inject_delay_ms(1_000_000)
        assert not deadline.expired
        deadline.check()

    def test_generous_budget_does_not_expire(self):
        deadline = Deadline.start(60_000)
        assert deadline.active
        assert deadline.budget_ms == 60_000
        assert deadline.remaining_s() > 0
        deadline.check()

    def test_zero_budget_is_expired_immediately(self):
        deadline = Deadline.start(0)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError, match="0 ms"):
            deadline.check()

    def test_injected_delay_expires_without_sleeping(self):
        deadline = Deadline.start(50)
        deadline.check()
        deadline.inject_delay_ms(200)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError, match="cooperative"):
            deadline.check()

    def test_negative_budget_rejected(self):
        with pytest.raises(WireFormatError):
            Deadline.start(-1)


class TestFaultActionValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError, match="unknown fault kind"):
            FaultAction(kind="meteor_strike")

    def test_bad_op_rejected(self):
        with pytest.raises(WireFormatError, match="fault op"):
            FaultAction(kind="kill_worker", op="bake")

    def test_delay_requires_positive_delay_ms(self):
        with pytest.raises(WireFormatError, match="positive delay_ms"):
            FaultAction(kind="delay")
        FaultAction(kind="delay", delay_ms=5.0)  # fine


class TestFaultPlanRoundTrip:
    def _plan(self):
        return FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=1, chunk=0, op="cloak"),
                FaultAction(
                    kind="delay", worker=0, chunk=2, item=3, op="peel",
                    delay_ms=40.0,
                ),
                FaultAction(kind="kill_worker", incarnation=None),
                FaultAction(kind="ignore_shutdown", worker=0),
            )
        )

    def test_json_round_trip(self):
        plan = self._plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        # The ``incarnation: null`` wildcard survives (None is meaningful).
        assert restored.actions[2].incarnation is None
        assert restored.actions[0].incarnation == 0

    def test_incarnation_defaults_to_zero_when_absent(self):
        action = FaultAction.from_dict({"kind": "kill_worker"})
        assert action.incarnation == 0

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(actions=(FaultAction(kind="kill_worker"),))

    @pytest.mark.parametrize(
        "payload",
        ["{nope", "[]", '{"faults": "x"}', '{"faults": [{"no": "kind"}]}'],
    )
    def test_malformed_plans_raise(self, payload):
        with pytest.raises(WireFormatError):
            FaultPlan.from_json(payload)


class TestFaultPlanFromEnv:
    def test_absent_env_is_none(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "   ")
        assert FaultPlan.from_env() is None

    def test_inline_json(self, monkeypatch):
        plan = FaultPlan(actions=(FaultAction(kind="kill_worker", worker=1),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert FaultPlan.from_env() == plan

    def test_at_path_form(self, monkeypatch, tmp_path):
        plan = FaultPlan(
            actions=(FaultAction(kind="delay", delay_ms=10.0, op="peel"),)
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULT_PLAN_ENV, f"@{path}")
        assert FaultPlan.from_env() == plan

    def test_malformed_env_raises_not_ignores(self, monkeypatch):
        # Silently ignoring a typo'd plan would make a fault-injection CI
        # job quietly test nothing.
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        with pytest.raises(WireFormatError):
            FaultPlan.from_env()


class TestInjectorMatching:
    def test_filters_select_worker_chunk_op(self):
        plan = FaultPlan(
            actions=(
                FaultAction(kind="delay", worker=1, chunk=2, op="peel",
                            item=0, delay_ms=10.0),
            )
        )
        wrong_worker = FaultInjector(plan, worker_index=0)
        deadline = Deadline.start(5)
        wrong_worker.on_item(2, 0, "peel", deadline)
        assert deadline.remaining_s() > 0  # no delay injected

        right = FaultInjector(plan, worker_index=1)
        d1 = Deadline.start(5)
        right.on_item(1, 0, "peel", d1)  # wrong chunk
        assert d1.remaining_s() > 0
        d2 = Deadline.start(5)
        right.on_item(2, 0, "cloak", d2)  # wrong op
        assert d2.remaining_s() > 0
        d3 = Deadline.start(5)
        right.on_item(2, 0, "peel", d3)
        assert d3.expired  # matched: 10 ms injected against a 5 ms budget

    def test_actions_fire_at_most_once_per_injector(self):
        plan = FaultPlan(
            actions=(FaultAction(kind="delay", item=0, delay_ms=10.0),)
        )
        injector = FaultInjector(plan)
        first = Deadline.start(5)
        injector.on_item(0, 0, "cloak", first)
        assert first.expired
        second = Deadline.start(5)
        injector.on_item(1, 0, "cloak", second)
        assert not second.expired  # spent

    def test_incarnation_zero_default_skips_respawned_workers(self):
        plan = FaultPlan(
            actions=(FaultAction(kind="delay", item=0, delay_ms=10.0),)
        )
        respawned = FaultInjector(plan, worker_index=0, incarnation=1)
        deadline = Deadline.start(5)
        respawned.on_item(0, 0, "cloak", deadline)
        assert not deadline.expired

    def test_incarnation_none_matches_every_incarnation(self):
        plan = FaultPlan(
            actions=(
                FaultAction(
                    kind="delay", item=0, delay_ms=10.0, incarnation=None
                ),
            )
        )
        for incarnation in (0, 1, 5):
            injector = FaultInjector(plan, incarnation=incarnation)
            deadline = Deadline.start(5)
            injector.on_item(0, 0, "cloak", deadline)
            assert deadline.expired

    def test_item_targeted_actions_never_fire_at_chunk_granularity(self):
        # on_chunk must not consume (or trigger) an action aimed at an
        # item, and vice versa: a chunk-level kill with item=None is not
        # claimed by on_item.
        plan = FaultPlan(
            actions=(FaultAction(kind="delay", item=2, delay_ms=10.0),)
        )
        injector = FaultInjector(plan)
        injector.on_chunk(0, "cloak")  # must not consume the item action
        deadline = Deadline.start(5)
        injector.on_item(0, 2, "cloak", deadline)
        assert deadline.expired

    def test_kill_and_drop_inert_in_process(self):
        # An in-process injector must never os._exit the caller — kill and
        # drop faults only apply to real worker processes.
        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker"),
                FaultAction(kind="kill_worker", item=0),
                FaultAction(kind="drop_reply"),
                FaultAction(kind="ignore_shutdown"),
            )
        )
        injector = FaultInjector(plan, process_worker=False)
        injector.on_chunk(0, "cloak")  # would os._exit if not gated
        injector.on_item(0, 0, "cloak", Deadline.start(None))
        assert injector.drop_reply(0, "cloak") is False
        assert injector.ignore_shutdown() is False

    def test_empty_injector_is_falsy(self):
        assert not FaultInjector(None)
        assert not FaultInjector(FaultPlan())
        assert FaultInjector(
            FaultPlan(actions=(FaultAction(kind="kill_worker"),))
        )


class TestPlanWireShape:
    def test_plan_dict_shape_is_documented_json(self):
        # The README documents this exact shape; keep it stable.
        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=0, chunk=1,
                            op="cloak"),
            )
        )
        document = json.loads(plan.to_json())
        assert document == {
            "faults": [
                {
                    "kind": "kill_worker",
                    "worker": 0,
                    "chunk": 1,
                    "op": "cloak",
                    "incarnation": 0,
                }
            ]
        }


class TestNetworkActions:
    """Mechanism tests of the wire-side fault vocabulary: plan shape,
    validation, matching, and the scenario-wide fire-once injector. The
    end-to-end behavior lives in ``test_network_faults.py``."""

    def test_network_action_round_trips_with_omitted_none_fields(self):
        plan = FaultPlan(
            actions=(
                FaultAction(kind="drop_connection", connection=3, frame=0),
                FaultAction(kind="dribble_write", connection=4, frame=1,
                            count=2),
                FaultAction(kind="stall_bytes"),  # wildcard: any conn/frame
            )
        )
        document = json.loads(plan.to_json())
        # None-valued filters are omitted on the wire (incarnation aside),
        # so a wildcard action stays a one-key document.
        assert document["faults"][0] == {
            "kind": "drop_connection",
            "connection": 3,
            "frame": 0,
            "incarnation": 0,
        }
        assert document["faults"][1]["count"] == 2
        assert set(document["faults"][2]) == {"kind", "incarnation"}
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_network_kind_and_negative_count_rejected(self):
        with pytest.raises(WireFormatError):
            FaultAction(kind="sever_cable")
        with pytest.raises(WireFormatError):
            FaultAction(kind="dribble_write", count=-1)
        # Zero is allowed: "stall after zero bytes" is the silent peer.
        assert FaultAction(kind="stall_bytes", count=0).count == 0

    def test_matches_wire_none_filters_match_anything(self):
        wildcard = FaultAction(kind="drop_connection")
        assert wildcard.matches_wire(connection=7, frame=3)
        pinned = FaultAction(kind="drop_connection", connection=1, frame=2)
        assert pinned.matches_wire(connection=1, frame=2)
        assert not pinned.matches_wire(connection=1, frame=3)
        assert not pinned.matches_wire(connection=2, frame=2)

    def test_injector_fires_each_action_once_across_connections(self):
        from repro.lbs import NetworkFaultInjector

        plan = FaultPlan(
            actions=(FaultAction(kind="drop_connection", connection=0),)
        )
        injector = NetworkFaultInjector(plan)
        taken = injector.take(connection=0, frame=0)
        assert taken is not None and taken.kind == "drop_connection"
        # Spent: the same ordinals fire nothing on any later consult.
        assert injector.take(connection=0, frame=1) is None
        assert injector.take(connection=0, frame=0) is None

    def test_injector_ignores_worker_kinds(self):
        from repro.lbs import NetworkFaultInjector

        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=0),
                FaultAction(kind="drop_reply", worker=1),
            )
        )
        injector = NetworkFaultInjector(plan)
        assert not injector
        assert injector.take(connection=0, frame=0) is None
        assert NetworkFaultInjector(None).take(connection=0, frame=0) is None
