"""Concurrency tests for ``TrustedAnonymizer.cloak_batch`` and the guarded
bookkeeping counters."""

import threading

import pytest

from repro import KeyChain, PopulationSnapshot, PrivacyProfile, grid_network
from repro.core import LevelRequirement, PrivacyProfile as CoreProfile, ToleranceSpec
from repro.errors import MobilityError, ToleranceExceededError
from repro.lbs import BatchOutcome, CloakRequest, TrustedAnonymizer


@pytest.fixture(scope="module")
def batch_profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


def _requests(snapshot, profile, count, tag="u"):
    return [
        CloakRequest(
            user_id=user_id,
            profile=profile,
            chain=KeyChain.from_passphrases([f"{tag}{user_id}-1", f"{tag}{user_id}-2"]),
        )
        for user_id in snapshot.users()[:count]
    ]


class TestCloakBatch:
    def test_matches_sequential_serving(self, grid10, traffic_snapshot, batch_profile):
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 16)
        sequential = [server.cloak(request) for request in requests]
        outcomes = server.cloak_batch(requests, max_workers=4)
        assert [outcome.request for outcome in outcomes] == requests  # order kept
        assert all(outcome.ok and outcome.error is None for outcome in outcomes)
        # Envelope byte-equality against single-request serving.
        assert [o.envelope.to_json() for o in outcomes] == [
            e.to_json() for e in sequential
        ]

    def test_inline_mode_matches_pool(self, grid10, traffic_snapshot, batch_profile):
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 8)
        inline = server.cloak_batch(requests, max_workers=1)
        pooled = server.cloak_batch(requests, max_workers=4)
        assert [o.envelope for o in inline] == [o.envelope for o in pooled]

    def test_empty_batch(self, grid10, traffic_snapshot):
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        assert server.cloak_batch([]) == []

    def test_no_snapshot_rejected(self, grid10, batch_profile):
        server = TrustedAnonymizer(grid10)
        with pytest.raises(MobilityError):
            server.cloak_batch(
                [
                    CloakRequest(
                        user_id=0,
                        profile=batch_profile,
                        chain=KeyChain.from_passphrases(["x1", "x2"]),
                    )
                ]
            )

    def test_failures_reported_in_place(self, grid10, traffic_snapshot, batch_profile):
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        impossible = CoreProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        good = _requests(traffic_snapshot, batch_profile, 4)
        bad = CloakRequest(
            user_id=traffic_snapshot.users()[0],
            profile=impossible,
            chain=KeyChain.from_passphrases(["bad1"]),
        )
        missing = CloakRequest(
            user_id=10_000,
            profile=batch_profile,
            chain=KeyChain.from_passphrases(["gone1", "gone2"]),
        )
        outcomes = server.cloak_batch(good[:2] + [bad, missing] + good[2:], max_workers=3)
        assert [o.ok for o in outcomes] == [True, True, False, False, True, True]
        assert isinstance(outcomes[2].error, ToleranceExceededError)
        assert isinstance(outcomes[3].error, MobilityError)
        assert server.requests_served == 4
        assert server.failures == 1  # user-missing is not a cloaking failure

    def test_batch_ignores_mid_flight_snapshot_update(
        self, grid10, traffic_snapshot, dense_snapshot, batch_profile
    ):
        # The batch captures one immutable snapshot at submission; swapping
        # the live snapshot between submissions must not mix populations
        # within a batch (each batch is internally consistent).
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 6)
        before = server.cloak_batch(requests, max_workers=2)
        server.update_snapshot(dense_snapshot)
        # Users of traffic_snapshot may not exist in dense_snapshot built
        # from counts; re-resolve against the new snapshot's users.
        after_requests = [
            CloakRequest(
                user_id=user_id,
                profile=batch_profile,
                chain=KeyChain.from_passphrases([f"d{user_id}-1", f"d{user_id}-2"]),
            )
            for user_id in dense_snapshot.users()[:6]
        ]
        after = server.cloak_batch(after_requests, max_workers=2)
        assert all(o.ok for o in before) and all(o.ok for o in after)


class TestCounterSafety:
    def test_concurrent_batches_count_exactly(
        self, grid10, traffic_snapshot, batch_profile
    ):
        # Hammer the server from several threads, each submitting pooled
        # batches; the guarded counters must account for every request
        # exactly once (the old bare `+= 1` lost increments here).
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 10)
        rounds = 4
        threads = 5
        errors = []

        def hammer():
            try:
                for __ in range(rounds):
                    outcomes = server.cloak_batch(requests, max_workers=4)
                    assert all(o.ok for o in outcomes)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for __ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert server.requests_served == threads * rounds * len(requests)
        assert server.failures == 0

    def test_concurrent_envelopes_match_sequential(
        self, grid10, traffic_snapshot, batch_profile
    ):
        # Byte-equality under concurrency: many threads serving the same
        # request set must produce exactly the sequential envelopes
        # (deterministic keyed expansion, no cross-request state).
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 8)
        expected = [server.cloak(request).to_json() for request in requests]
        results = {}
        lock = threading.Lock()

        def serve(slot):
            outcomes = server.cloak_batch(requests, max_workers=4)
            with lock:
                results[slot] = [o.envelope.to_json() for o in outcomes]

        workers = [
            threading.Thread(target=serve, args=(slot,)) for slot in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(batch == expected for batch in results.values())

    def test_failures_counted_under_concurrency(self, grid10, traffic_snapshot):
        server = TrustedAnonymizer(grid10)
        server.update_snapshot(traffic_snapshot)
        impossible = CoreProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        bad_requests = [
            CloakRequest(
                user_id=user_id,
                profile=impossible,
                chain=KeyChain.from_passphrases([f"f{user_id}"]),
            )
            for user_id in traffic_snapshot.users()[:6]
        ]

        def hammer():
            outcomes = server.cloak_batch(bad_requests, max_workers=3)
            assert not any(o.ok for o in outcomes)

        workers = [threading.Thread(target=hammer) for __ in range(3)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert server.failures == 3 * len(bad_requests)
        assert server.requests_served == 0
