"""Tests for the pluggable execution backends (:mod:`repro.lbs.backends`).

The contract under test: every backend serves byte-identical envelopes to
inline serving against the same (spec, snapshot, batch); expected serving
failures come back in place as typed outcomes; anything unexpected
propagates. ``ProcessPoolBackend`` additionally covers the wire-document
path and the snapshot token cache.

The multiprocessing start methods exercised come from the
``REPRO_TEST_START_METHODS`` environment variable (comma-separated;
default ``fork``) — CI runs a ``spawn`` entry so macOS/Windows semantics
are covered without paying spawn start-up on every local run.
"""

import os

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.core import LevelRequirement, PrivacyProfile as CoreProfile, ToleranceSpec
from repro.errors import (
    CloakingError,
    DeanonymizationError,
    EnvelopeError,
    KeyMismatchError,
    MobilityError,
    ToleranceExceededError,
)
from repro.lbs import (
    AnonymizerService,
    BackendSpec,
    BatchOutcome,
    CloakRequest,
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.lbs.wire import DeanonymizeRequestDoc, OutcomeDoc

START_METHODS = tuple(
    method.strip()
    for method in os.environ.get("REPRO_TEST_START_METHODS", "fork").split(",")
    if method.strip()
)


@pytest.fixture(scope="module")
def batch_profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


def _requests(snapshot, profile, count, tag="u"):
    return [
        CloakRequest(
            user_id=user_id,
            profile=profile,
            chain=KeyChain.from_passphrases(
                [f"{tag}{user_id}-1", f"{tag}{user_id}-2"]
            ),
        )
        for user_id in snapshot.users()[:count]
    ]


def _backends():
    backends = [
        pytest.param(lambda: InlineBackend(), id="inline"),
        pytest.param(lambda: ThreadPoolBackend(4), id="thread-4"),
    ]
    for method in START_METHODS:
        backends.append(
            pytest.param(
                lambda method=method: ProcessPoolBackend(2, start_method=method),
                id=f"process-2-{method}",
            )
        )
    return backends


class TestBackendEquivalence:
    @pytest.mark.parametrize("make_backend", _backends())
    def test_byte_identical_to_inline(
        self, grid10, traffic_snapshot, batch_profile, make_backend
    ):
        reference = AnonymizerService(grid10)
        reference.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 8)
        expected = [reference.cloak(request).to_json() for request in requests]
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert [o.request for o in outcomes] == requests
            assert all(o.ok and o.error is None for o in outcomes)
            assert [o.envelope.to_json() for o in outcomes] == expected
            # A second (warm) batch: the process backend now serves from
            # its cached snapshot token — results must not change.
            again = service.cloak_batch(requests)
            assert [o.envelope.to_json() for o in again] == expected
            service.close()

    @pytest.mark.parametrize("make_backend", _backends())
    def test_rple_engine_spec_crosses_backend(
        self, grid10, traffic_snapshot, batch_profile, make_backend
    ):
        algorithm = ReversiblePreassignmentExpansion.for_network(grid10)
        reference = AnonymizerService(grid10, algorithm)
        reference.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 4, tag="r")
        expected = [reference.cloak(request).to_json() for request in requests]
        with make_backend() as backend:
            service = AnonymizerService(grid10, algorithm, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert [o.envelope.to_json() for o in outcomes] == expected

    @pytest.mark.parametrize("make_backend", _backends())
    def test_failures_reported_in_place_with_typed_errors(
        self, grid10, traffic_snapshot, batch_profile, make_backend
    ):
        impossible = CoreProfile(
            [LevelRequirement(k=10_000, l=2, tolerance=ToleranceSpec(max_segments=5))]
        )
        good = _requests(traffic_snapshot, batch_profile, 4)
        bad = CloakRequest(
            user_id=traffic_snapshot.users()[0],
            profile=impossible,
            chain=KeyChain.from_passphrases(["bad1"]),
        )
        missing = CloakRequest(
            user_id=10_000,
            profile=batch_profile,
            chain=KeyChain.from_passphrases(["gone1", "gone2"]),
        )
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(good[:2] + [bad, missing] + good[2:])
            assert [o.ok for o in outcomes] == [True, True, False, False, True, True]
            assert isinstance(outcomes[2].error, ToleranceExceededError)
            assert isinstance(outcomes[3].error, MobilityError)
            # The typed union of BatchOutcome.error, across every backend.
            for outcome in outcomes:
                assert outcome.error is None or isinstance(
                    outcome.error, (CloakingError, MobilityError)
                )


def _reversal_fixture(network, snapshot, profile, count, tag="peel"):
    """(requests, producing service) — one reversal request per cloak."""
    producer = AnonymizerService(network)
    producer.update_snapshot(snapshot)
    requests = []
    for index, user_id in enumerate(snapshot.users()[:count]):
        chain = KeyChain.from_passphrases(
            [f"{tag}{index}-1", f"{tag}{index}-2"]
        )
        envelope = producer.cloak(
            CloakRequest(user_id=user_id, profile=profile, chain=chain)
        )
        requests.append(
            DeanonymizeRequestDoc(
                envelope=envelope, keys=tuple(chain), target_level=0
            )
        )
    return requests


def _canonical(outcomes):
    """The canonical wire form of reversal outcomes (sorted-key JSON) —
    byte-level equality across backends is asserted on exactly this."""
    return [
        OutcomeDoc.from_result(o.result).to_json()
        if o.ok
        else OutcomeDoc.from_exception(o.error).to_json()
        for o in outcomes
    ]


class TestReversalBackendEquivalence:
    """`deanonymize_batch` must be byte-identical across every backend —
    the reversal twin of the cloaking equivalence contract, including the
    process pool under both start methods."""

    @pytest.mark.parametrize("make_backend", _backends())
    @pytest.mark.parametrize("mode", ["hint", "search"])
    def test_byte_identical_to_sequential_service(
        self, grid10, traffic_snapshot, batch_profile, make_backend, mode
    ):
        base = _reversal_fixture(grid10, traffic_snapshot, batch_profile, 6)
        requests = [
            DeanonymizeRequestDoc(
                envelope=r.envelope,
                keys=r.keys,
                target_level=r.target_level,
                mode=mode,
            )
            for r in base
        ]
        reference = AnonymizerService(grid10)
        expected = [
            OutcomeDoc.from_result(
                reference.deanonymize(r.envelope, r.key_map(), 0, mode=mode)
            ).to_json()
            for r in requests
        ]
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            outcomes = service.deanonymize_batch(requests)
            assert [o.request for o in outcomes] == requests
            assert all(o.ok and o.error is None for o in outcomes)
            assert _canonical(outcomes) == expected
            # A warm second batch must not change anything.
            assert _canonical(service.deanonymize_batch(requests)) == expected
        assert service.reversals_served == 12
        assert service.failures == 0

    @pytest.mark.parametrize("make_backend", _backends())
    def test_rple_envelopes_cross_every_backend(
        self, grid10, traffic_snapshot, batch_profile, make_backend
    ):
        # The serving backend is configured for RGE; the envelopes are
        # RPLE — reversal engines must come from envelope metadata on
        # every backend, including inside process-pool workers.
        algorithm = ReversiblePreassignmentExpansion.for_network(grid10)
        producer = AnonymizerService(grid10, algorithm)
        producer.update_snapshot(traffic_snapshot)
        requests = []
        for index, user_id in enumerate(traffic_snapshot.users()[:4]):
            chain = KeyChain.from_passphrases([f"rp{index}-1", f"rp{index}-2"])
            envelope = producer.cloak(
                CloakRequest(
                    user_id=user_id, profile=batch_profile, chain=chain
                )
            )
            requests.append(
                DeanonymizeRequestDoc(
                    envelope=envelope, keys=tuple(chain), target_level=0
                )
            )
        reference = AnonymizerService(grid10)
        expected = [
            OutcomeDoc.from_result(
                reference.deanonymize(r.envelope, r.key_map(), 0)
            ).to_json()
            for r in requests
        ]
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            assert _canonical(service.deanonymize_batch(requests)) == expected

    @pytest.mark.parametrize("make_backend", _backends())
    def test_mixed_error_batches_keep_request_order(
        self, grid10, traffic_snapshot, batch_profile, make_backend
    ):
        good = _reversal_fixture(grid10, traffic_snapshot, batch_profile, 3)
        wrong_chain = KeyChain.from_passphrases(["wrong-1", "wrong-2"])
        wrong_key = DeanonymizeRequestDoc(
            envelope=good[0].envelope,
            keys=tuple(wrong_chain),
            target_level=0,
        )
        bad_level = DeanonymizeRequestDoc(
            envelope=good[1].envelope,
            keys=good[1].keys,
            target_level=7,
        )
        foreign_network = AnonymizerService(grid_network(4, 4))
        foreign_network.update_snapshot(
            PopulationSnapshot.from_counts(
                {sid: 3 for sid in grid_network(4, 4).segment_ids()}
            )
        )
        foreign_chain = KeyChain.from_passphrases(["fn-1", "fn-2"])
        foreign = DeanonymizeRequestDoc(
            envelope=foreign_network.cloak_segment(
                5, batch_profile, foreign_chain
            ),
            keys=tuple(foreign_chain),
            target_level=0,
        )
        batch = [good[0], wrong_key, bad_level, good[1], foreign, good[2]]
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            outcomes = service.deanonymize_batch(batch)
        assert [o.request for o in outcomes] == batch
        assert [o.ok for o in outcomes] == [True, False, False, True, False, True]
        assert isinstance(outcomes[1].error, KeyMismatchError)
        assert isinstance(outcomes[2].error, DeanonymizationError)
        assert isinstance(outcomes[4].error, EnvelopeError)
        assert service.reversals_served == 3
        assert service.failures == 3
        assert service.reversal_failures == 3

    @pytest.mark.parametrize("make_backend", _backends())
    def test_empty_batch(self, grid10, make_backend):
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            assert service.deanonymize_batch([]) == []

    def test_thread_width_one_short_circuits_with_shared_draws(
        self, grid10, traffic_snapshot, batch_profile
    ):
        requests = _reversal_fixture(
            grid10, traffic_snapshot, batch_profile, 3, tag="w1"
        )
        reference = AnonymizerService(grid10)
        expected = [
            OutcomeDoc.from_result(
                reference.deanonymize(r.envelope, r.key_map(), 0)
            ).to_json()
            for r in requests
        ]
        with ThreadPoolBackend(1) as backend:
            service = AnonymizerService(grid10, backend=backend)
            assert _canonical(service.deanonymize_batch(requests)) == expected
            assert backend._pool is None  # never spun a pool up


class TestReversalUnexpectedExceptionsPropagate:
    """Only the typed reversal union may become outcomes — engine bugs
    must abort the batch on every backend."""

    @pytest.mark.parametrize(
        "make_backend",
        [
            pytest.param(lambda: InlineBackend(), id="inline"),
            pytest.param(lambda: ThreadPoolBackend(2), id="thread-2"),
        ],
    )
    def test_inline_and_thread(
        self, grid10, traffic_snapshot, batch_profile, make_backend, monkeypatch
    ):
        from repro.core.engine import ReverseCloakEngine

        requests = _reversal_fixture(
            grid10, traffic_snapshot, batch_profile, 2, tag="boom"
        )

        def boom(self, *args, **kwargs):
            raise RuntimeError("reversal engine bug")

        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            monkeypatch.setattr(ReverseCloakEngine, "deanonymize", boom)
            with pytest.raises(RuntimeError, match="reversal engine bug"):
                service.deanonymize_batch(requests)

    @pytest.mark.skipif(
        "fork" not in START_METHODS, reason="needs fork to inherit the patch"
    )
    def test_process_pool(
        self, grid10, traffic_snapshot, batch_profile, monkeypatch
    ):
        from repro.core.engine import ReverseCloakEngine

        requests = _reversal_fixture(
            grid10, traffic_snapshot, batch_profile, 2, tag="pboom"
        )

        def boom(self, *args, **kwargs):
            raise RuntimeError("reversal bug in worker")

        monkeypatch.setattr(ReverseCloakEngine, "deanonymize", boom)
        with ProcessPoolBackend(2, start_method="fork") as backend:
            service = AnonymizerService(grid10, backend=backend)
            with pytest.raises(RuntimeError, match="reversal bug in worker"):
                service.deanonymize_batch(requests)
            # Reported failures keep the pipes aligned: the pool survives
            # and the next (cloak) batch still serves.
            monkeypatch.undo()
            service.update_snapshot(traffic_snapshot)
            good = _requests(traffic_snapshot, batch_profile, 2)
            assert all(o.ok for o in service.cloak_batch(good))


class TestUnexpectedExceptionsPropagate:
    """Regression: only CloakingError/MobilityError may become outcomes —
    a bug in the engine (or any unexpected exception) must abort the batch,
    not be swallowed into a BatchOutcome."""

    @pytest.mark.parametrize(
        "make_backend",
        [
            pytest.param(lambda: InlineBackend(), id="inline"),
            pytest.param(lambda: ThreadPoolBackend(2), id="thread-2"),
        ],
    )
    def test_inline_and_thread(
        self, grid10, traffic_snapshot, batch_profile, make_backend, monkeypatch
    ):
        from repro.core.engine import ReverseCloakEngine

        def boom(self, *args, **kwargs):
            raise RuntimeError("engine bug")

        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            requests = _requests(traffic_snapshot, batch_profile, 3)
            monkeypatch.setattr(ReverseCloakEngine, "anonymize", boom)
            with pytest.raises(RuntimeError, match="engine bug"):
                service.cloak_batch(requests)

    @pytest.mark.skipif(
        "fork" not in START_METHODS, reason="needs fork to inherit the patch"
    )
    def test_process_pool(
        self, grid10, traffic_snapshot, batch_profile, monkeypatch
    ):
        from repro.core.engine import ReverseCloakEngine

        def boom(self, *args, **kwargs):
            raise RuntimeError("engine bug in worker")

        # Patch before the pool forks so workers inherit the broken engine.
        monkeypatch.setattr(ReverseCloakEngine, "anonymize", boom)
        with ProcessPoolBackend(2, start_method="fork") as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            requests = _requests(traffic_snapshot, batch_profile, 3)
            with pytest.raises(RuntimeError, match="engine bug in worker"):
                service.cloak_batch(requests)


class TestProcessPoolProtocol:
    @pytest.fixture(scope="class")
    def method(self):
        return START_METHODS[0]

    def test_snapshot_updates_between_batches(
        self, grid10, batch_profile, method
    ):
        dense = PopulationSnapshot.from_counts(
            {segment_id: 5 for segment_id in grid10.segment_ids()}, time=1.0
        )
        sparse = PopulationSnapshot.from_counts(
            {segment_id: 1 for segment_id in grid10.segment_ids()}, time=2.0
        )
        reference = AnonymizerService(grid10)
        with ProcessPoolBackend(2, start_method=method) as backend:
            service = AnonymizerService(grid10, backend=backend)
            for snapshot in (dense, sparse, dense):
                reference.update_snapshot(snapshot)
                service.update_snapshot(snapshot)
                requests = _requests(snapshot, batch_profile, 4, tag="s")
                expected = [
                    reference.cloak(request).to_json() for request in requests
                ]
                outcomes = service.cloak_batch(requests)
                assert [o.envelope.to_json() for o in outcomes] == expected
                assert all(
                    o.envelope.snapshot_time == snapshot.time for o in outcomes
                )

    def test_straggler_workers_resync_snapshot(
        self, grid10, traffic_snapshot, batch_profile, method
    ):
        # First batch has fewer chunks than workers, so some workers never
        # see the snapshot token; the next, wider batch forces them through
        # the _NEED_SNAPSHOT resend path.
        reference = AnonymizerService(grid10)
        reference.update_snapshot(traffic_snapshot)
        with ProcessPoolBackend(4, start_method=method) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            small = _requests(traffic_snapshot, batch_profile, 2)
            assert all(o.ok for o in service.cloak_batch(small))
            wide = _requests(traffic_snapshot, batch_profile, 12)
            expected = [reference.cloak(request).to_json() for request in wide]
            outcomes = service.cloak_batch(wide)
            assert [o.envelope.to_json() for o in outcomes] == expected

    def test_empty_batch(self, grid10, traffic_snapshot, method):
        with ProcessPoolBackend(2, start_method=method) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            assert service.cloak_batch([]) == []

    def test_dead_workers_recovered_in_place(
        self, grid10, traffic_snapshot, batch_profile, method
    ):
        # Since PR 6 a worker dying mid-protocol is an operational event,
        # not a batch failure: supervision respawns the slot and re-drives
        # the lost chunk, so the batch still returns byte-identical
        # outcomes — even when every worker was killed under it.
        reference = AnonymizerService(grid10)
        reference.update_snapshot(traffic_snapshot)
        requests = _requests(traffic_snapshot, batch_profile, 6)
        expected = [reference.cloak(request).to_json() for request in requests]
        with ProcessPoolBackend(2, start_method=method) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            assert all(o.ok for o in service.cloak_batch(requests))
            for handle in backend._workers:
                handle.process.terminate()
                handle.process.join(timeout=5)
            recovered = service.cloak_batch(requests)
            assert [o.envelope.to_json() for o in recovered] == expected
            assert backend.worker_restarts == 2  # both slots respawned
            assert backend.inline_fallbacks == 0  # recovery, not degradation
            retried = service.cloak_batch(requests)
            assert [o.envelope.to_json() for o in retried] == expected
            assert backend.worker_restarts == 2  # respawned workers are healthy

    def test_close_is_idempotent(self, grid10, traffic_snapshot, batch_profile, method):
        backend = ProcessPoolBackend(2, start_method=method)
        service = AnonymizerService(grid10, backend=backend)
        service.update_snapshot(traffic_snapshot)
        assert all(
            o.ok for o in service.cloak_batch(_requests(traffic_snapshot, batch_profile, 2))
        )
        backend.close()
        backend.close()


class TestBackendLifecycle:
    def test_bind_to_two_services_rejected(self, grid10, grid6):
        backend = InlineBackend()
        AnonymizerService(grid10, backend=backend)
        with pytest.raises(CloakingError):
            AnonymizerService(grid6, backend=backend)

    def test_unbound_backend_rejects_serving(self, dense_snapshot, batch_profile):
        backend = ThreadPoolBackend(2)
        with pytest.raises(CloakingError):
            backend.cloak_batch(
                dense_snapshot, _requests(dense_snapshot, batch_profile, 1)
            )

    def test_invalid_widths_rejected(self):
        with pytest.raises(CloakingError):
            ThreadPoolBackend(0)
        with pytest.raises(CloakingError):
            ProcessPoolBackend(0)

    def test_batch_outcome_ok_property(self, grid10, dense_snapshot, batch_profile):
        request = _requests(dense_snapshot, batch_profile, 1)[0]
        assert not BatchOutcome(request=request, error=CloakingError("x")).ok

    def test_spec_builds_engines_against_shared_structures(self, grid10):
        spec = BackendSpec(
            network=grid10,
            algorithm=ReversiblePreassignmentExpansion.for_network(grid10),
            include_hints=False,
        )
        engine = spec.build_engine()
        assert engine.network is grid10
        assert engine.algorithm is spec.algorithm


class TestInlineChunkCounter:
    def test_chunk_ids_unique_under_concurrent_batches(self):
        # Regression: `_next_chunk` used an unguarded read-increment pair,
        # so two request threads sharing one backend could draw the same
        # chunk id — and with it the same fault-plan row. The counter is
        # now lock-guarded; hammer it from many threads and require every
        # id to be distinct and gapless.
        import threading

        backend = InlineBackend()
        drawn = []
        record = drawn.append
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(200):
                record(backend._next_chunk())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(drawn) == 8 * 200
        assert sorted(drawn) == list(range(8 * 200))
