"""End-to-end fault-tolerance tests for the serving stack.

Every recovery path the supervision layer claims is exercised here through
the deterministic fault harness (:mod:`repro.lbs.faults`) — injected
worker crashes (chunk-level, mid-cloak, mid-peel, during the snapshot
resend), crash loops that exhaust the retry budget, dropped replies,
cooperative deadlines, and the teardown escalation ladder — and the
contract asserted throughout is the repo's serving invariant: outcomes
stay byte-identical and order-preserving versus :class:`InlineBackend`,
whatever dies underneath.

Process-pool scenarios run once per start method in
``REPRO_TEST_START_METHODS`` (default ``fork``; CI adds ``spawn``).
"""

import os

import pytest

from repro import KeyChain, PrivacyProfile
from repro.errors import DeadlineExceededError, WorkerCrashedError
from repro.lbs import (
    AnonymizerService,
    CloakRequest,
    FaultAction,
    FaultPlan,
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.lbs.wire import DeanonymizeRequestDoc, OutcomeDoc

START_METHODS = tuple(
    method.strip()
    for method in os.environ.get("REPRO_TEST_START_METHODS", "fork").split(",")
    if method.strip()
)


@pytest.fixture(scope="module")
def ft_profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


def _cloak_requests(snapshot, profile, count, tag="ft", deadline_ms=None):
    return [
        CloakRequest(
            user_id=user_id,
            profile=profile,
            chain=KeyChain.from_passphrases(
                [f"{tag}{user_id}-1", f"{tag}{user_id}-2"]
            ),
            deadline_ms=deadline_ms,
        )
        for user_id in snapshot.users()[:count]
    ]


def _peel_requests(network, snapshot, profile, count, tag="ftp",
                   deadline_ms=None):
    """One reversal request per freshly cloaked envelope."""
    producer = AnonymizerService(network)
    producer.update_snapshot(snapshot)
    requests = []
    for index, user_id in enumerate(snapshot.users()[:count]):
        chain = KeyChain.from_passphrases([f"{tag}{index}-1", f"{tag}{index}-2"])
        envelope = producer.cloak(
            CloakRequest(user_id=user_id, profile=profile, chain=chain)
        )
        requests.append(
            DeanonymizeRequestDoc(
                envelope=envelope,
                keys=tuple(chain),
                target_level=0,
                deadline_ms=deadline_ms,
            )
        )
    return requests


def _canonical_cloaks(outcomes):
    """Canonical wire form of cloak outcomes — byte-level equality across
    backends (success *and* error outcomes) is asserted on exactly this."""
    return [
        OutcomeDoc.from_envelope(o.envelope).to_json()
        if o.ok
        else OutcomeDoc.from_exception(o.error).to_json()
        for o in outcomes
    ]


def _canonical_peels(outcomes):
    return [
        OutcomeDoc.from_result(o.result).to_json()
        if o.ok
        else OutcomeDoc.from_exception(o.error).to_json()
        for o in outcomes
    ]


def _inline_cloaks(network, snapshot, requests):
    service = AnonymizerService(network, backend=InlineBackend())
    service.update_snapshot(snapshot)
    return _canonical_cloaks(service.cloak_batch(requests))


def _inline_peels(network, requests):
    service = AnonymizerService(network, backend=InlineBackend())
    return _canonical_peels(service.deanonymize_batch(requests))


def _assert_no_worker_crashed(outcomes):
    for outcome in outcomes:
        assert not isinstance(outcome.error, WorkerCrashedError)


class TestSupervisedRecovery:
    """Injected worker crashes are operational events, not batch failures."""

    @pytest.mark.parametrize("method", START_METHODS)
    def test_every_worker_killed_once_in_mixed_64_item_load(
        self, grid10, traffic_snapshot, ft_profile, method
    ):
        # The PR's acceptance scenario: a plan that kills each of the two
        # workers exactly once across a 64-item cloak batch and a 64-item
        # peel batch. Both batches must come back byte-identical to inline
        # serving, order preserved, with worker_crashed never surfacing.
        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=0, op="cloak"),
                FaultAction(kind="kill_worker", worker=1, op="peel"),
            )
        )
        cloaks = _cloak_requests(traffic_snapshot, ft_profile, 64)
        peels = _peel_requests(grid10, traffic_snapshot, ft_profile, 64)
        expected_cloaks = _inline_cloaks(grid10, traffic_snapshot, cloaks)
        expected_peels = _inline_peels(grid10, peels)
        with ProcessPoolBackend(
            2, start_method=method, fault_plan=plan, retry_backoff_s=0.01
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            cloak_outcomes = service.cloak_batch(cloaks)
            assert [o.request for o in cloak_outcomes] == cloaks
            assert _canonical_cloaks(cloak_outcomes) == expected_cloaks
            peel_outcomes = service.deanonymize_batch(peels)
            assert [o.request for o in peel_outcomes] == peels
            assert _canonical_peels(peel_outcomes) == expected_peels
            _assert_no_worker_crashed(cloak_outcomes)
            _assert_no_worker_crashed(peel_outcomes)
            assert backend.worker_restarts == 2  # one kill each, recovered
            assert backend.inline_fallbacks == 0  # recovery, not degradation

    @pytest.mark.parametrize("method", START_METHODS)
    def test_kill_mid_cloak_chunk(
        self, grid10, traffic_snapshot, ft_profile, method
    ):
        # The worker dies *between items* of a chunk it has partially
        # served; the re-driven chunk must re-serve from the top and stay
        # byte-identical (cloaking is deterministic, so the partial work
        # is simply discarded with the dead incarnation).
        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=0, item=2, op="cloak"),
            )
        )
        requests = _cloak_requests(traffic_snapshot, ft_profile, 8, tag="mc")
        expected = _inline_cloaks(grid10, traffic_snapshot, requests)
        with ProcessPoolBackend(
            2, start_method=method, fault_plan=plan, retry_backoff_s=0.01
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert _canonical_cloaks(outcomes) == expected
            assert backend.worker_restarts == 1
            assert backend.inline_fallbacks == 0

    @pytest.mark.parametrize("method", START_METHODS)
    def test_kill_mid_peel_chunk(
        self, grid10, traffic_snapshot, ft_profile, method
    ):
        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=1, item=1, op="peel"),
            )
        )
        requests = _peel_requests(
            grid10, traffic_snapshot, ft_profile, 8, tag="mp"
        )
        expected = _inline_peels(grid10, requests)
        with ProcessPoolBackend(
            2, start_method=method, fault_plan=plan, retry_backoff_s=0.01
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            outcomes = service.deanonymize_batch(requests)
            assert _canonical_peels(outcomes) == expected
            assert backend.worker_restarts == 1
            assert backend.inline_fallbacks == 0

    @pytest.mark.parametrize("method", START_METHODS)
    def test_crash_during_snapshot_resend(
        self, grid10, traffic_snapshot, ft_profile, method
    ):
        # A straggler worker (first batch was narrower than the pool)
        # answers _NEED_SNAPSHOT on the next wide batch and is killed while
        # handling the resend — its second message, hence chunk ordinal 1.
        # Supervision must respawn it and re-drive with the snapshot blob.
        plan = FaultPlan(
            actions=(
                FaultAction(kind="kill_worker", worker=1, chunk=1, op="cloak"),
            )
        )
        narrow = _cloak_requests(traffic_snapshot, ft_profile, 1, tag="nr")
        wide = _cloak_requests(traffic_snapshot, ft_profile, 6, tag="wd")
        expected = _inline_cloaks(grid10, traffic_snapshot, wide)
        with ProcessPoolBackend(
            2, start_method=method, fault_plan=plan, retry_backoff_s=0.01
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            assert all(o.ok for o in service.cloak_batch(narrow))
            outcomes = service.cloak_batch(wide)
            assert _canonical_cloaks(outcomes) == expected
            assert backend.worker_restarts == 1
            assert backend.inline_fallbacks == 0


class TestRetryExhaustion:
    @pytest.fixture()
    def crash_loop_plan(self):
        # ``incarnation: null`` re-fires on every respawn: worker 0 can
        # never hold a cloak chunk, exhausting the retry budget.
        return FaultPlan(
            actions=(
                FaultAction(
                    kind="kill_worker", worker=0, op="cloak", incarnation=None
                ),
            )
        )

    @pytest.mark.parametrize("method", START_METHODS)
    def test_inline_fallback_keeps_batch_byte_identical(
        self, grid10, traffic_snapshot, ft_profile, crash_loop_plan, method
    ):
        requests = _cloak_requests(traffic_snapshot, ft_profile, 6, tag="fb")
        expected = _inline_cloaks(grid10, traffic_snapshot, requests)
        with ProcessPoolBackend(
            2,
            start_method=method,
            fault_plan=crash_loop_plan,
            max_chunk_retries=1,
            retry_backoff_s=0.01,
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            # Degraded, not lost: the chunk ran inline on the parent and
            # the batch is still byte-identical and order-preserving.
            assert _canonical_cloaks(outcomes) == expected
            _assert_no_worker_crashed(outcomes)
            assert backend.inline_fallbacks == 1
            assert backend.worker_restarts == 2  # initial + one retry

    @pytest.mark.parametrize("method", START_METHODS)
    def test_disabled_fallback_surfaces_worker_crashed_in_place(
        self, grid10, traffic_snapshot, ft_profile, crash_loop_plan, method
    ):
        requests = _cloak_requests(traffic_snapshot, ft_profile, 6, tag="wc")
        with ProcessPoolBackend(
            2,
            start_method=method,
            fault_plan=crash_loop_plan,
            max_chunk_retries=1,
            retry_backoff_s=0.01,
            inline_fallback=False,
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            # Worker 0's chunk (the first half) fails in place with the
            # structured code; worker 1's chunk is untouched.
            assert [o.ok for o in outcomes] == [False] * 3 + [True] * 3
            for outcome in outcomes[:3]:
                assert isinstance(outcome.error, WorkerCrashedError)
                assert "retries exhausted" in str(outcome.error)
            assert backend.inline_fallbacks == 0


class TestDroppedReplies:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_dropped_reply_recovered_via_dispatch_timeout(
        self, grid10, traffic_snapshot, ft_profile, method
    ):
        # The worker serves the chunk but never answers; only the
        # dispatch-wait bound can notice. The wedged incarnation is
        # replaced and the chunk re-driven.
        plan = FaultPlan(
            actions=(FaultAction(kind="drop_reply", worker=0, op="cloak"),)
        )
        requests = _cloak_requests(traffic_snapshot, ft_profile, 4, tag="dr")
        expected = _inline_cloaks(grid10, traffic_snapshot, requests)
        with ProcessPoolBackend(
            2,
            start_method=method,
            fault_plan=plan,
            dispatch_timeout_s=1.5,
            retry_backoff_s=0.01,
        ) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert _canonical_cloaks(outcomes) == expected
            assert backend.worker_restarts == 1
            assert backend.inline_fallbacks == 0


def _deadline_backends(methods):
    backends = [
        pytest.param(lambda: InlineBackend(), id="inline"),
        pytest.param(lambda: ThreadPoolBackend(2), id="thread-2"),
    ]
    for method in methods:
        backends.append(
            pytest.param(
                lambda method=method: ProcessPoolBackend(
                    2, start_method=method
                ),
                id=f"process-2-{method}",
            )
        )
    return backends


class TestCooperativeDeadlines:
    @pytest.mark.parametrize("make_backend", _deadline_backends(START_METHODS))
    def test_pre_expired_cloaks_fail_identically_everywhere(
        self, grid10, traffic_snapshot, ft_profile, make_backend
    ):
        # deadline_ms=0 is expired before the first checkpoint: every
        # backend must surface the same structured deadline_exceeded
        # outcome, in place, without aborting the batch.
        requests = _cloak_requests(
            traffic_snapshot, ft_profile, 4, tag="dl", deadline_ms=0.0
        )
        expected = _inline_cloaks(grid10, traffic_snapshot, requests)
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert all(not o.ok for o in outcomes)
            assert all(
                isinstance(o.error, DeadlineExceededError) for o in outcomes
            )
            assert _canonical_cloaks(outcomes) == expected

    @pytest.mark.parametrize("make_backend", _deadline_backends(START_METHODS))
    def test_pre_expired_peels_fail_identically_everywhere(
        self, grid10, traffic_snapshot, ft_profile, make_backend
    ):
        requests = _peel_requests(
            grid10, traffic_snapshot, ft_profile, 4, tag="dlp",
            deadline_ms=0.0,
        )
        expected = _inline_peels(grid10, requests)
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            outcomes = service.deanonymize_batch(requests)
            assert all(not o.ok for o in outcomes)
            assert all(
                isinstance(o.error, DeadlineExceededError) for o in outcomes
            )
            assert _canonical_peels(outcomes) == expected

    @pytest.mark.parametrize(
        "flavor", ["inline"] + [f"process-{m}" for m in START_METHODS]
    )
    def test_injected_delay_pushes_one_item_past_its_deadline(
        self, grid10, traffic_snapshot, ft_profile, flavor
    ):
        # A generous real-time budget plus an injected artificial delay:
        # exactly item 0 of chunk 0 (worker 0) expires, deterministically,
        # with no real sleeping; its siblings serve normally. The same plan
        # drives the inline backend (which presents as worker 0, chunk ==
        # batch ordinal) and worker 0 of the process pool.
        plan = FaultPlan(
            actions=(
                FaultAction(
                    kind="delay", worker=0, chunk=0, item=0, op="cloak",
                    delay_ms=120_000.0,
                ),
            )
        )
        requests = _cloak_requests(
            traffic_snapshot, ft_profile, 4, tag="dly", deadline_ms=60_000.0
        )
        if flavor == "inline":
            backend = InlineBackend(fault_plan=plan)
        else:
            backend = ProcessPoolBackend(
                2, start_method=flavor.split("-", 1)[1], fault_plan=plan
            )
        with backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert [o.ok for o in outcomes] == [False, True, True, True]
            assert isinstance(outcomes[0].error, DeadlineExceededError)

    def test_mixed_deadlines_only_expire_the_marked_items(
        self, grid10, traffic_snapshot, ft_profile
    ):
        # Items with and without deadlines interleave freely in one batch.
        requests = _cloak_requests(traffic_snapshot, ft_profile, 4, tag="mix")
        import dataclasses

        requests[1] = dataclasses.replace(requests[1], deadline_ms=0.0)
        requests[3] = dataclasses.replace(requests[3], deadline_ms=0.0)
        method = START_METHODS[0]
        with ProcessPoolBackend(2, start_method=method) as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            outcomes = service.cloak_batch(requests)
            assert [o.ok for o in outcomes] == [True, False, True, False]
            assert isinstance(outcomes[1].error, DeadlineExceededError)
            assert isinstance(outcomes[3].error, DeadlineExceededError)


class TestTeardownEscalation:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_close_reaps_workers_that_ignore_sentinel_and_sigterm(
        self, grid10, traffic_snapshot, ft_profile, method
    ):
        # Worker 0 ignores both the shutdown sentinel and SIGTERM, so
        # close() must escalate all the way to kill(); worker 1 ignores
        # only the sentinel and dies at terminate(). Either way: no live
        # children after close().
        plan = FaultPlan(
            actions=(
                FaultAction(kind="ignore_shutdown", worker=0),
                FaultAction(kind="ignore_sigterm", worker=0),
                FaultAction(kind="ignore_shutdown", worker=1),
            )
        )
        backend = ProcessPoolBackend(
            2, start_method=method, fault_plan=plan, shutdown_join_s=0.25
        )
        service = AnonymizerService(grid10, backend=backend)
        service.update_snapshot(traffic_snapshot)
        requests = _cloak_requests(traffic_snapshot, ft_profile, 2, tag="td")
        assert all(o.ok for o in service.cloak_batch(requests))
        processes = [handle.process for handle in backend._workers]
        assert len(processes) == 2 and all(p.is_alive() for p in processes)
        backend.close()
        assert all(not p.is_alive() for p in processes)
        assert backend._workers == []
        backend.close()  # idempotent after escalation too
