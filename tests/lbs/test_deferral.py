"""Tests for temporal (deferred) cloaking."""

import pytest

from repro import (
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.errors import CloakingError, ProfileError
from repro.lbs import DeferredCloaking, TemporalTolerance


@pytest.fixture()
def setup():
    network = grid_network(10, 10)
    simulator = TrafficSimulator(network, n_cars=300, seed=21)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    return network, simulator, engine


class TestTemporalTolerance:
    def test_max_retries(self):
        assert TemporalTolerance(10.0, 2.0).max_retries == 5
        assert TemporalTolerance(0.0, 1.0).max_retries == 0

    def test_max_retries_exact_multiples_of_inexact_cadence(self):
        """Regression: ``int(0.3 / 0.1) == 2`` — float truncation silently
        dropped the final deferral round whenever the budget was an exact
        multiple of a cadence that is not exactly representable."""
        assert TemporalTolerance(0.3, 0.1).max_retries == 3
        assert TemporalTolerance(0.7, 0.1).max_retries == 7
        assert TemporalTolerance(0.6, 0.2).max_retries == 3
        assert TemporalTolerance(3.3, 1.1).max_retries == 3
        # Large budgets: the tolerance scales with the quotient.
        assert TemporalTolerance(3600.0, 0.1).max_retries == 36000

    def test_max_retries_partial_rounds_still_truncate(self):
        """A genuinely partial final round grants no extra retry."""
        assert TemporalTolerance(0.25, 0.1).max_retries == 2
        assert TemporalTolerance(1.0, 0.3).max_retries == 3
        assert TemporalTolerance(5.9, 2.0).max_retries == 2
        assert TemporalTolerance(0.05, 0.1).max_retries == 0

    def test_validation(self):
        with pytest.raises(ProfileError):
            TemporalTolerance(-1.0)
        with pytest.raises(ProfileError):
            TemporalTolerance(5.0, retry_interval_seconds=0.0)
        with pytest.raises(ProfileError):
            TemporalTolerance(5.0, backoff_factor=0.5)
        with pytest.raises(ProfileError):
            TemporalTolerance(5.0, jitter_fraction=1.0)
        with pytest.raises(ProfileError):
            TemporalTolerance(5.0, jitter_fraction=-0.1)


class TestWaitSchedule:
    def test_uniform_default_is_fixed_interval(self):
        tolerance = TemporalTolerance(10.0, 2.0)
        assert tolerance.uniform
        assert tolerance.wait_schedule() == (2.0,) * 5
        # The rounding-tolerant round count carries over exactly.
        assert TemporalTolerance(0.3, 0.1).wait_schedule() == (0.1,) * 3
        assert TemporalTolerance(0.25, 0.1).wait_schedule() == (0.1,) * 2
        assert TemporalTolerance(0.0, 1.0).wait_schedule() == ()

    def test_backoff_grows_and_respects_the_budget(self):
        tolerance = TemporalTolerance(10.0, 1.0, backoff_factor=2.0)
        assert not tolerance.uniform
        # 1 + 2 + 4 = 7 fits; the next wait (8) would blow the budget.
        assert tolerance.wait_schedule() == (1.0, 2.0, 4.0)
        assert sum(tolerance.wait_schedule()) <= 10.0

    def test_backoff_budget_boundary_is_rounding_tolerant(self):
        # A cumulative sum exactly equal to the budget still fits.
        assert TemporalTolerance(
            7.0, 1.0, backoff_factor=2.0
        ).wait_schedule() == (1.0, 2.0, 4.0)

    def test_jittered_schedule_is_deterministic_per_seed(self):
        def tolerance(seed):
            return TemporalTolerance(
                20.0,
                1.0,
                backoff_factor=1.5,
                jitter_fraction=0.2,
                jitter_seed=seed,
            )

        first = tolerance(7).wait_schedule()
        assert first == tolerance(7).wait_schedule()  # pure function
        assert first != tolerance(8).wait_schedule()
        # Every wait stays within its round's jitter band, and the
        # cumulative schedule stays within the budget.
        interval = 1.0
        for wait in first:
            assert interval * 0.8 <= wait <= interval * 1.2
            interval *= 1.5
        assert sum(first) <= 20.0 * (1.0 + 1e-9)

    def test_unjittered_backoff_ignores_the_seed(self):
        a = TemporalTolerance(10.0, 1.0, backoff_factor=2.0, jitter_seed=1)
        b = TemporalTolerance(10.0, 1.0, backoff_factor=2.0, jitter_seed=99)
        assert a.wait_schedule() == b.wait_schedule()


class TestDeferredCloaking:
    def test_immediate_success_defers_nothing(self, setup):
        network, simulator, engine = setup
        loose = PrivacyProfile.uniform(
            levels=1, base_k=2, k_step=0, base_l=2, l_step=0, max_segments=40
        )
        chain = KeyChain.from_passphrases(["d1"])
        deferred = DeferredCloaking(engine, simulator)
        user_id = simulator.snapshot().users()[0]
        result = deferred.cloak_user(
            user_id, loose, chain, TemporalTolerance(10.0, 1.0)
        )
        assert result.deferred_seconds == 0.0
        assert result.retries == 0
        assert simulator.snapshot().segment_of(user_id) in result.envelope.region

    def test_deferral_rescues_tight_requests(self, setup):
        """A request failing right now succeeds within a temporal budget for
        at least one user (traffic drifts toward the user)."""
        network, simulator, engine = setup
        tight = PrivacyProfile.uniform(
            levels=1, base_k=8, k_step=0, base_l=2, l_step=0, max_segments=5
        )
        chain = KeyChain.from_passphrases(["d2"])
        snapshot = simulator.snapshot()
        failing = []
        for user_id in snapshot.users():
            try:
                engine.anonymize(
                    snapshot.segment_of(user_id), snapshot, tight, chain
                )
            except CloakingError:
                failing.append(user_id)
        assert failing, "fixture must produce at least one immediate failure"
        deferred = DeferredCloaking(engine, simulator)
        rescued = 0
        waited = 0
        for user_id in failing[:8]:
            try:
                result = deferred.cloak_user(
                    user_id, tight, chain, TemporalTolerance(40.0, 2.0)
                )
            except CloakingError:
                continue
            rescued += 1
            if result.deferred_seconds > 0.0:
                waited += 1
                assert result.retries > 0
        assert rescued > 0
        # At least one rescue genuinely needed to wait (rescues after the
        # shared simulator has advanced may succeed immediately).
        assert waited > 0

    def test_budget_exhaustion_reraises(self, setup):
        network, simulator, engine = setup
        impossible = PrivacyProfile.uniform(
            levels=1, base_k=10_000, k_step=0, base_l=2, l_step=0, max_segments=5
        )
        chain = KeyChain.from_passphrases(["d3"])
        deferred = DeferredCloaking(engine, simulator)
        user_id = simulator.snapshot().users()[0]
        with pytest.raises(CloakingError):
            deferred.cloak_user(
                user_id, impossible, chain, TemporalTolerance(4.0, 2.0)
            )

    def test_unknown_user_rejected(self, setup):
        network, simulator, engine = setup
        profile = PrivacyProfile.uniform(
            levels=1, base_k=2, k_step=0, base_l=2, l_step=0, max_segments=40
        )
        chain = KeyChain.from_passphrases(["d4"])
        deferred = DeferredCloaking(engine, simulator)
        with pytest.raises(CloakingError):
            deferred.cloak_user(
                99_999, profile, chain, TemporalTolerance(2.0, 1.0)
            )

    def test_mismatched_network_rejected(self, setup):
        network, simulator, engine = setup
        other_engine = ReverseCloakEngine(grid_network(10, 10))
        with pytest.raises(ProfileError):
            DeferredCloaking(other_engine, simulator)

    def test_uniform_deferred_seconds_keeps_product_form(self, setup):
        """Regression guard for the backoff refactor: the default schedule
        must report ``retries * retry_interval_seconds`` — the product, not
        a float sum of equal waits (``5 * 0.1 != sum([0.1] * 5)``) — so
        pre-backoff results stay byte-identical."""
        network, simulator, engine = setup
        tight = PrivacyProfile.uniform(
            levels=1, base_k=8, k_step=0, base_l=2, l_step=0, max_segments=5
        )
        chain = KeyChain.from_passphrases(["u1"])
        deferred = DeferredCloaking(engine, simulator)
        interval = 2.0
        tolerance = TemporalTolerance(40.0, interval)
        waited = 0
        for user_id in simulator.snapshot().users()[:12]:
            try:
                result = deferred.cloak_user(
                    user_id, tight, chain, tolerance
                )
            except CloakingError:
                continue
            assert result.deferred_seconds == result.retries * interval
            if result.retries > 0:
                waited += 1
        assert waited > 0, "fixture must defer at least one user"

    def test_backoff_deferral_is_deterministic(self, setup):
        """Two identical worlds, one jittered backoff tolerance: byte-
        identical outcomes (the seeded schedule is a pure function)."""
        network, _simulator, _engine = setup
        tight = PrivacyProfile.uniform(
            levels=1, base_k=8, k_step=0, base_l=2, l_step=0, max_segments=5
        )
        chain = KeyChain.from_passphrases(["b1"])
        tolerance = TemporalTolerance(
            40.0,
            2.0,
            backoff_factor=1.5,
            jitter_fraction=0.2,
            jitter_seed=13,
        )

        def run():
            simulator = TrafficSimulator(network, n_cars=300, seed=21)
            simulator.run(2)
            engine = ReverseCloakEngine(network)
            deferred = DeferredCloaking(engine, simulator)
            for user_id in simulator.snapshot().users()[:12]:
                try:
                    result = deferred.cloak_user(
                        user_id, tight, chain, tolerance
                    )
                except CloakingError:
                    continue
                if result.retries > 0:
                    return user_id, result
            return None

        first = run()
        if first is None:
            pytest.skip("no user needed deferral under the tight profile")
        second = run()
        assert second is not None
        assert first[0] == second[0]
        assert first[1].retries == second[1].retries
        assert first[1].deferred_seconds == second[1].deferred_seconds
        assert first[1].envelope.to_json() == second[1].envelope.to_json()
        # The waited time is the sum of the consumed schedule prefix.
        schedule = tolerance.wait_schedule()
        assert first[1].deferred_seconds == sum(
            schedule[: first[1].retries]
        )

    def test_deferred_cloak_remains_reversible(self, setup):
        network, simulator, engine = setup
        tight = PrivacyProfile.uniform(
            levels=2, base_k=6, k_step=2, base_l=2, l_step=1, max_segments=8
        )
        chain = KeyChain.from_passphrases(["d5a", "d5b"])
        deferred = DeferredCloaking(engine, simulator)
        snapshot = simulator.snapshot()
        for user_id in snapshot.users()[:10]:
            try:
                result = deferred.cloak_user(
                    user_id, tight, chain, TemporalTolerance(30.0, 2.0)
                )
            except CloakingError:
                continue
            peeled = engine.deanonymize(result.envelope, chain, target_level=0)
            # the envelope cloaks the segment at cloaking time
            assert peeled.region_at(0)[0] in result.envelope.region
            return
        pytest.skip("no user cloakable under the tight profile")
