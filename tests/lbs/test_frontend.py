"""Tests for :mod:`repro.lbs.frontend` — the asyncio TCP front-end.

The headline contract: a document served over the socket yields the
canonical-byte-identical outcome of calling
:meth:`AnonymizerService.handle_json` directly, for every wire format and
every execution backend (the multiprocessing start methods exercised come
from ``REPRO_TEST_START_METHODS``, as in ``test_backends``). Around it:
request multiplexing, batch coalescing, bounded-queue shedding, the
frame-level deadline default, stats over the wire, adversarial framing
input, fault injection through the socket, and the drain-on-close
guarantee.

``pytest-asyncio`` is not a dependency — every test drives its coroutine
through :func:`asyncio.run` explicitly.
"""

import asyncio
import json
import os
import signal
import struct
import subprocess
import sys
import threading

import pytest

from repro import KeyChain, PrivacyProfile
from repro.errors import ProfileError
from repro.lbs import (
    AnonymizerService,
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    FaultAction,
    FaultPlan,
    FrontendClient,
    FrontendServer,
    InlineBackend,
    ProcessPoolBackend,
    encode_frame,
)
from repro.lbs.faults import FAULT_PLAN_ENV, FaultyConnection
from repro.lbs.framing import FrameDecoder
from repro.lbs.wire import (
    DEANONYMIZE_REQUEST_FORMAT,
    HEALTH_FORMAT,
    HEALTH_REQUEST_FORMAT,
    MALFORMED_DOCUMENT,
    PING_FORMAT,
    PING_REQUEST_FORMAT,
    STATS_FORMAT,
    STATS_REQUEST_FORMAT,
    WIRE_VERSION,
)

START_METHODS = tuple(
    method.strip()
    for method in os.environ.get("REPRO_TEST_START_METHODS", "fork").split(",")
    if method.strip()
)


def _backends():
    backends = [pytest.param(lambda: InlineBackend(), id="inline")]
    for method in START_METHODS:
        backends.append(
            pytest.param(
                lambda method=method: ProcessPoolBackend(2, start_method=method),
                id=f"process-2-{method}",
            )
        )
    return backends


@pytest.fixture(scope="module")
def profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )


def _cloak_doc(snapshot, profile, index, tag="fe"):
    user_id = snapshot.users()[index]
    chain = KeyChain.from_passphrases([f"{tag}{index}-1", f"{tag}{index}-2"])
    return CloakRequestDoc.from_request(
        CloakRequest(user_id=user_id, profile=profile, chain=chain)
    ).to_dict()


def _reversal_docs(network, snapshot, profile, count, tag="fepeel"):
    producer = AnonymizerService(network)
    producer.update_snapshot(snapshot)
    docs = []
    for index, user_id in enumerate(snapshot.users()[:count]):
        chain = KeyChain.from_passphrases([f"{tag}{index}-1", f"{tag}{index}-2"])
        envelope = producer.cloak(
            CloakRequest(user_id=user_id, profile=profile, chain=chain)
        )
        docs.append(
            DeanonymizeRequestDoc(
                envelope=envelope, keys=tuple(chain), target_level=0
            )
        )
    return docs


def _canonical(outcome: dict) -> str:
    """The canonical wire form outcomes are byte-compared in (matches
    ``AnonymizerService.handle_json``)."""
    return json.dumps(outcome, sort_keys=True)


def _stats_doc() -> dict:
    return {"format": STATS_REQUEST_FORMAT, "version": WIRE_VERSION}


def _ping_doc() -> dict:
    return {"format": PING_REQUEST_FORMAT, "version": WIRE_VERSION}


def _health_doc() -> dict:
    return {"format": HEALTH_REQUEST_FORMAT, "version": WIRE_VERSION}


async def _raw_connection(server):
    return await asyncio.open_connection(server.host, server.port)


async def _read_frame(reader, decoder=None) -> bytes:
    decoder = decoder or FrameDecoder()
    while True:
        frames = decoder.feed(await reader.read(1 << 16))
        if frames:
            return frames[0]


class TestByteIdentity:
    """Socket serving answers exactly what direct ``handle_json`` answers —
    per format, per backend, per start method."""

    @pytest.mark.parametrize("make_backend", _backends())
    def test_all_formats_match_direct_serving(
        self, grid10, traffic_snapshot, profile, make_backend
    ):
        peels = _reversal_docs(grid10, traffic_snapshot, profile, 3)
        documents = [
            _cloak_doc(traffic_snapshot, profile, 0),
            _cloak_doc(traffic_snapshot, profile, 1),
            _cloak_doc(traffic_snapshot, profile, 2),
            peels[0].to_dict(),
            DeanonymizeBatchDoc(items=tuple(peels[1:])).to_dict(),
        ]
        with make_backend() as backend:
            service = AnonymizerService(grid10, backend=backend)
            service.update_snapshot(traffic_snapshot)
            expected = [
                service.handle_json(json.dumps(doc)) for doc in documents
            ]

            async def main():
                async with FrontendServer(service, batch_window_ms=1.0) as server:
                    client = await FrontendClient.connect(server.host, server.port)
                    futures = [client.submit(doc) for doc in documents]
                    await client.drain()
                    outcomes = await asyncio.gather(*futures)
                    await client.close()
                    return outcomes

            outcomes = asyncio.run(main())
        assert [_canonical(outcome) for outcome in outcomes] == expected

    def test_submit_encoded_and_raw_reply_path(
        self, grid10, traffic_snapshot, profile
    ):
        """The bench fast path — pre-encoded requests, undecoded replies —
        is the same protocol, not a parallel one."""
        document = _cloak_doc(traffic_snapshot, profile, 0)
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        expected = service.handle_json(json.dumps(document))

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                payload = await client.submit_encoded(
                    json.dumps(document, separators=(",", ":")), raw=True
                )
                await client.close()
                return payload

        payload = asyncio.run(main())
        reply = json.loads(payload)
        assert reply["request_id"] == 1
        assert _canonical(reply["outcome"]) == expected

    def test_on_reply_streaming_mode_matches_future_path(
        self, grid10, traffic_snapshot, profile
    ):
        """The load-generator mode — synchronous ``on_reply`` callbacks,
        no futures — carries the same bytes as the awaited path."""
        documents = [
            _cloak_doc(traffic_snapshot, profile, index) for index in range(3)
        ]
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        expected = [service.handle_json(json.dumps(doc)) for doc in documents]

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                replies = {}
                done = asyncio.Event()
                for index, doc in enumerate(documents):
                    returned = client.submit_encoded(
                        json.dumps(doc, separators=(",", ":")),
                        raw=True,
                        on_reply=lambda payload, index=index: (
                            replies.__setitem__(index, payload),
                            done.set() if len(replies) == len(documents) else None,
                        ),
                    )
                    assert returned is None
                await asyncio.wait_for(done.wait(), timeout=30)
                await client.close()
                return replies

        replies = asyncio.run(main())
        for index, expected_json in enumerate(expected):
            reply = json.loads(replies[index])
            assert _canonical(reply["outcome"]) == expected_json

    def test_on_reply_gets_none_when_connection_dies(self, grid10):
        """A pending streaming request is told about transport failure the
        only way a callback can be: ``on_reply(None)``."""

        async def main():
            received = []
            waited = asyncio.Event()

            async def server_task(reader, writer):
                await reader.read(1 << 16)  # swallow the request, then drop
                writer.close()

            server = await asyncio.start_server(server_task, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await FrontendClient.connect("127.0.0.1", port)
            client.submit_encoded(
                '{"format":"repro.cloak_request"}',
                raw=True,
                on_reply=lambda payload: (received.append(payload), waited.set()),
            )
            await client.drain()
            await asyncio.wait_for(waited.wait(), timeout=30)
            await client.close()
            server.close()
            await server.wait_closed()
            return received

        received = asyncio.run(main())
        assert received == [None]


class TestMultiplexing:
    def test_interleaved_requests_demultiplex_by_id(
        self, grid10, traffic_snapshot, profile
    ):
        """Different formats in flight at once on one connection, each
        reply landing on its own future."""
        cloak = _cloak_doc(traffic_snapshot, profile, 0)
        missing = dict(cloak, user_id=10_000)
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service, batch_window_ms=5.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                futures = [
                    client.submit(cloak),
                    client.submit(missing),
                    client.submit(_stats_doc()),
                ]
                outcomes = await asyncio.gather(*futures)
                await client.close()
                return outcomes

        ok, bad, stats = asyncio.run(main())
        assert ok["status"] == "ok"
        assert bad["status"] == "error"
        assert bad["error"]["code"] == "mobility_unavailable"
        assert stats["format"] == STATS_FORMAT

    def test_string_request_ids_echo_verbatim(self, grid10, traffic_snapshot):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service) as server:
                reader, writer = await _raw_connection(server)
                writer.write(
                    encode_frame(
                        json.dumps(
                            {"request_id": "alpha/7", "request": _stats_doc()}
                        )
                    )
                )
                reply = json.loads(await _read_frame(reader))
                writer.close()
                await writer.wait_closed()
                return reply

        reply = asyncio.run(main())
        assert reply["request_id"] == "alpha/7"
        assert reply["outcome"]["status"] == "ok"

    def test_unmatched_replies_are_kept_not_dropped(self):
        """A reply the client cannot attribute lands in ``unmatched``
        (bounded) instead of vanishing — the observable half of the
        de-mux contract when a server misbehaves."""

        async def main():
            async def misecho(reader, writer):
                decoder = FrameDecoder()
                frame = json.loads(await _read_frame(reader, decoder))
                writer.write(
                    encode_frame(
                        json.dumps(
                            {
                                "request_id": "not-yours",
                                "outcome": {"status": "ok"},
                            }
                        )
                    )
                )
                await writer.drain()

            server = await asyncio.start_server(misecho, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await FrontendClient.connect("127.0.0.1", port)
            future = client.submit(_stats_doc())
            for _ in range(200):
                if client.unmatched:
                    break
                await asyncio.sleep(0.01)
            unmatched = client.unmatched
            assert not future.done()
            await client.close()
            server.close()
            await server.wait_closed()
            return unmatched

        unmatched = asyncio.run(main())
        assert unmatched and unmatched[0]["request_id"] == "not-yours"


class TestCoalescing:
    def test_one_burst_becomes_one_batch(self, grid10, traffic_snapshot, profile):
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(6)]
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service, batch_window_ms=20.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                futures = [client.submit(doc) for doc in documents]
                outcomes = await asyncio.gather(*futures)
                stats = await client.stats()
                await client.close()
                return outcomes, stats

        outcomes, stats = asyncio.run(main())
        assert all(outcome["status"] == "ok" for outcome in outcomes)
        # One connection read delivers the whole burst, so one lane flush
        # serves all six — that is the coalescing win being measured by
        # the open-loop bench.
        assert stats["counters"]["batches_coalesced"] == 1
        assert stats["counters"]["requests_served"] == 6

    def test_batch_max_flushes_without_waiting(
        self, grid10, traffic_snapshot, profile
    ):
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(4)]
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            # A window of 10 s would stall the test if batch_max=2 did
            # not flush eagerly.
            async with FrontendServer(
                service, batch_window_ms=10_000.0, batch_max=2
            ) as server:
                client = await FrontendClient.connect(server.host, server.port)
                outcomes = await asyncio.wait_for(
                    asyncio.gather(*[client.submit(d) for d in documents]),
                    timeout=30,
                )
                stats = await client.stats()
                await client.close()
                return outcomes, stats

        outcomes, stats = asyncio.run(main())
        assert all(outcome["status"] == "ok" for outcome in outcomes)
        assert stats["counters"]["batches_coalesced"] == 2

    def test_rejects_nonsensical_tuning(self, grid10):
        service = AnonymizerService(grid10)
        for kwargs in (
            {"batch_max": 0},
            {"batch_window_ms": -1.0},
            {"max_pending": 0},
            {"max_connection_pending": 0},
            {"serve_threads": 0},
            {"idle_timeout_s": 0.0},
            {"idle_timeout_s": -1.0},
            {"max_write_buffer_bytes": 0},
            {"drain_timeout_s": 0.0},
            {"max_malformed_frames": 0},
            {"drain_deadline_s": -1.0},
        ):
            with pytest.raises(ProfileError):
                FrontendServer(service, **kwargs)


class TestStatsOverWire:
    def test_merges_service_and_frontend_counters(
        self, grid10, traffic_snapshot, profile
    ):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        document = _cloak_doc(traffic_snapshot, profile, 0)

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                await client.submit(document)
                stats = await client.stats()
                await client.close()
                return stats

        stats = asyncio.run(main())
        assert stats["format"] == STATS_FORMAT
        assert stats["version"] == WIRE_VERSION
        counters = stats["counters"]
        # Service-side counters...
        for key in (
            "requests_served",
            "failures",
            "reversals_served",
            "reversal_failures",
            "requests_shed",
            "worker_restarts",
            "inline_fallbacks",
            "inflight",
        ):
            assert key in counters, key
        # ...merged with the front-end's own.
        assert counters["connections"] == 1
        assert counters["frames_rejected"] == 0
        assert counters["batches_coalesced"] == 1
        assert counters["frontend_requests_shed"] == 0
        assert counters["frontend_pending"] == 0
        assert counters["requests_served"] == 1
        # The lifecycle counters ride along, all still zero on a clean run.
        for key in (
            "connections_evicted",
            "idle_timeouts",
            "expired_before_dispatch",
            "malformed_frames",
            "drained_inflight",
        ):
            assert counters[key] == 0, key


class TestOverload:
    def test_global_queue_bound_sheds_structured(
        self, grid10, traffic_snapshot, profile
    ):
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(5)]
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(
                service, batch_window_ms=50.0, max_pending=2
            ) as server:
                client = await FrontendClient.connect(server.host, server.port)
                # One burst arrives in one connection read: the first two
                # are admitted into the (un-flushed) lane, the rest must
                # shed immediately rather than buffer without bound.
                futures = [client.submit(doc) for doc in documents]
                outcomes = await asyncio.gather(*futures)
                stats = await client.stats()
                await client.close()
                return outcomes, stats

        outcomes, stats = asyncio.run(main())
        served = [o for o in outcomes if o["status"] == "ok"]
        shed = [o for o in outcomes if o["status"] == "error"]
        assert len(served) == 2
        assert len(shed) == 3
        assert {o["error"]["code"] for o in shed} == {"overloaded"}
        assert stats["counters"]["frontend_requests_shed"] == 3
        # The service itself never saw the shed requests.
        assert stats["counters"]["requests_shed"] == 0
        assert stats["counters"]["requests_served"] == 2

    def test_per_connection_bound_protects_other_clients(
        self, grid10, traffic_snapshot, profile
    ):
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(4)]
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(
                service,
                batch_window_ms=50.0,
                max_connection_pending=1,
                max_pending=100,
            ) as server:
                greedy = await FrontendClient.connect(server.host, server.port)
                polite = await FrontendClient.connect(server.host, server.port)
                greedy_futures = [greedy.submit(doc) for doc in documents]
                greedy_outcomes = await asyncio.gather(*greedy_futures)
                polite_outcome = await polite.submit(documents[0])
                await greedy.close()
                await polite.close()
                return greedy_outcomes, polite_outcome

        greedy_outcomes, polite_outcome = asyncio.run(main())
        assert [o["status"] for o in greedy_outcomes].count("ok") == 1
        shed = [o for o in greedy_outcomes if o["status"] == "error"]
        assert {o["error"]["code"] for o in shed} == {"overloaded"}
        # The per-connection cap never touched the second client.
        assert polite_outcome["status"] == "ok"


class TestAdversarialFraming:
    def test_oversized_frame_answered_and_connection_dropped(
        self, grid10, traffic_snapshot, profile
    ):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        document = _cloak_doc(traffic_snapshot, profile, 0)

        async def main():
            async with FrontendServer(
                service, batch_window_ms=1.0, max_frame_bytes=1 << 12
            ) as server:
                bystander = await FrontendClient.connect(server.host, server.port)
                reader, writer = await _raw_connection(server)
                writer.write(struct.pack(">I", 1 << 20))
                reply = json.loads(
                    await _read_frame(reader, FrameDecoder(1 << 12))
                )
                trailing = await reader.read(1 << 16)
                # The hostile connection is answered once, then dropped...
                assert trailing == b""
                # ...and the bystander's connection never noticed.
                outcome = await bystander.submit(document)
                stats = await bystander.stats()
                writer.close()
                await bystander.close()
                return reply, outcome, stats

        reply, outcome, stats = asyncio.run(main())
        assert reply["request_id"] is None
        assert reply["outcome"]["error"]["code"] == MALFORMED_DOCUMENT
        assert outcome["status"] == "ok"
        assert stats["counters"]["frames_rejected"] == 1

    def test_garbage_json_keeps_connection_usable(self, grid10, traffic_snapshot):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service) as server:
                reader, writer = await _raw_connection(server)
                decoder = FrameDecoder()
                writer.write(encode_frame(b"{definitely not json"))
                garbage_reply = json.loads(await _read_frame(reader, decoder))
                # The byte layer is intact — only the payload was bad —
                # so the same connection keeps serving.
                writer.write(
                    encode_frame(
                        json.dumps({"request_id": 2, "request": _stats_doc()})
                    )
                )
                next_reply = json.loads(await _read_frame(reader, decoder))
                writer.close()
                await writer.wait_closed()
                return garbage_reply, next_reply

        garbage_reply, next_reply = asyncio.run(main())
        assert garbage_reply["request_id"] is None
        assert garbage_reply["outcome"]["error"]["code"] == MALFORMED_DOCUMENT
        assert "not valid JSON" in garbage_reply["outcome"]["error"]["message"]
        assert next_reply["request_id"] == 2
        assert next_reply["outcome"]["status"] == "ok"

    @pytest.mark.parametrize(
        "payload",
        [
            b"[1,2,3]",
            b'{"request": {"format": "repro.stats_request", "version": 1}}',
            b'{"request_id": true, "request": {}}',
            b'{"request_id": {"nested": 1}, "request": {}}',
        ],
        ids=["non-object", "missing-id", "bool-id", "object-id"],
    )
    def test_unattributable_frames_answered_with_null_id(
        self, grid10, traffic_snapshot, payload
    ):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service) as server:
                reader, writer = await _raw_connection(server)
                writer.write(encode_frame(payload))
                reply = json.loads(await _read_frame(reader))
                writer.close()
                await writer.wait_closed()
                return reply

        reply = asyncio.run(main())
        assert reply["request_id"] is None
        assert reply["outcome"]["status"] == "error"
        assert reply["outcome"]["error"]["code"] == MALFORMED_DOCUMENT

    @pytest.mark.parametrize(
        "raw_bytes",
        [b"\x00\x00", encode_frame(b'{"request_id":1}')[:-3]],
        ids=["truncated-prefix", "mid-frame-disconnect"],
    )
    def test_disconnect_inside_a_frame_is_counted_not_fatal(
        self, grid10, traffic_snapshot, profile, raw_bytes
    ):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        document = _cloak_doc(traffic_snapshot, profile, 0)

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                _, writer = await _raw_connection(server)
                writer.write(raw_bytes)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # The server is fully alive for the next client.
                client = await FrontendClient.connect(server.host, server.port)
                outcome = await client.submit(document)
                for _ in range(200):
                    stats = await client.stats()
                    if stats["counters"]["frames_rejected"]:
                        break
                    await asyncio.sleep(0.01)
                await client.close()
                return outcome, stats

        outcome, stats = asyncio.run(main())
        assert outcome["status"] == "ok"
        assert stats["counters"]["frames_rejected"] == 1


class TestDeadlinesAndFaults:
    def test_frame_deadline_reaches_serving(
        self, grid10, traffic_snapshot, profile, monkeypatch
    ):
        """A frame-level ``deadline_ms`` becomes the document's deadline;
        an injected delay (``REPRO_FAULT_PLAN`` semantics) then expires it
        into the structured code — observed through the socket."""
        plan = FaultPlan(
            actions=(
                FaultAction(kind="delay", delay_ms=10_000.0, op="cloak", item=0),
            )
        )
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        service = AnonymizerService(grid10, backend=InlineBackend())
        service.update_snapshot(traffic_snapshot)
        document = _cloak_doc(traffic_snapshot, profile, 0)
        assert "deadline_ms" not in document

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                expired = await client.submit(document, deadline_ms=50.0)
                # Without the frame deadline the same document sails
                # through — the delay only advances the serving clock.
                served = await client.submit(document)
                await client.close()
                return expired, served

        expired, served = asyncio.run(main())
        assert expired["status"] == "error"
        assert expired["error"]["code"] == "deadline_exceeded"
        assert served["status"] == "ok"

    def test_document_deadline_wins_over_frame_deadline(
        self, grid10, traffic_snapshot, profile
    ):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        document = dict(
            _cloak_doc(traffic_snapshot, profile, 0), deadline_ms=60_000.0
        )

        async def main():
            async with FrontendServer(service, batch_window_ms=1.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                # A frame deadline of ~0 would expire anything it applied
                # to; the document's own generous deadline must win.
                outcome = await client.submit(document, deadline_ms=0.001)
                await client.close()
                return outcome

        outcome = asyncio.run(main())
        assert outcome["status"] == "ok"


class TestLifecycleHardening:
    def test_idle_connection_evicted_despite_trickled_bytes(
        self, grid10, traffic_snapshot, profile
    ):
        """Slow loris: a peer trickling partial-frame bytes never resets
        the idle clock — only a *completed* frame does — and the server is
        fully alive for the next client afterwards."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        document = _cloak_doc(traffic_snapshot, profile, 0)

        async def main():
            async with FrontendServer(
                service, batch_window_ms=1.0, idle_timeout_s=0.2
            ) as server:
                reader, writer = await _raw_connection(server)
                frame = encode_frame(
                    json.dumps({"request_id": 1, "request": _stats_doc()})
                )
                eof = asyncio.Event()

                async def watch():
                    try:
                        await reader.read(1 << 16)
                    except (ConnectionError, OSError):
                        pass
                    eof.set()

                watcher = asyncio.get_running_loop().create_task(watch())
                try:
                    # Never the last byte: the frame must never complete.
                    for index in range(len(frame) - 1):
                        writer.write(frame[index : index + 1])
                        await writer.drain()
                        await asyncio.sleep(0.03)
                        if eof.is_set():
                            break
                except (ConnectionError, OSError):
                    pass
                await asyncio.wait_for(eof.wait(), timeout=30)
                await watcher
                writer.close()
                # A fresh client connects and serves normally.
                client = await FrontendClient.connect(server.host, server.port)
                outcome = await client.submit(document)
                stats = await client.stats()
                await client.close()
                return outcome, stats

        outcome, stats = asyncio.run(main())
        assert outcome["status"] == "ok"
        assert stats["counters"]["idle_timeouts"] == 1
        assert stats["counters"]["connections_evicted"] == 1

    def test_malformed_strikes_cut_the_connection(self, grid10, traffic_snapshot):
        """Each malformed frame is answered; the strike that reaches the
        limit closes the connection (flushing that final error reply)."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(
                service, max_malformed_frames=3
            ) as server:
                reader, writer = await _raw_connection(server)
                decoder = FrameDecoder()
                for _ in range(3):
                    writer.write(encode_frame(b"{definitely not json"))
                await writer.drain()
                replies = []
                while len(replies) < 3:
                    data = await asyncio.wait_for(reader.read(1 << 16), 30)
                    assert data, "connection closed before the third reply"
                    replies.extend(decoder.feed(data))
                trailing = await asyncio.wait_for(reader.read(1 << 16), 30)
                writer.close()
                client = await FrontendClient.connect(server.host, server.port)
                stats = await client.stats()
                await client.close()
                return replies, trailing, stats

        replies, trailing, stats = asyncio.run(main())
        for payload in replies:
            reply = json.loads(payload)
            assert reply["outcome"]["error"]["code"] == MALFORMED_DOCUMENT
        assert trailing == b""  # closed, not aborted: clean EOF after reply 3
        assert stats["counters"]["malformed_frames"] == 3
        assert stats["counters"]["frames_rejected"] == 3
        assert stats["counters"]["connections_evicted"] == 1

    def test_slow_reader_evicted_on_write_backlog(
        self, grid10, traffic_snapshot, profile
    ):
        """A peer that sends but never reads blows the write-backlog bound
        and is evicted; the server stays healthy for everyone else."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        document = _cloak_doc(traffic_snapshot, profile, 0)

        async def main():
            loop = asyncio.get_running_loop()
            async with FrontendServer(
                service, batch_window_ms=1.0, max_write_buffer_bytes=1 << 14
            ) as server:
                hog = await FaultyConnection.connect(
                    server.host, server.port, recv_buffer_bytes=2048
                )
                deadline_at = loop.time() + 30
                sent = 0
                # Flood stats requests and read nothing: replies pile up in
                # the hog's tiny kernel buffer, then the server's capped
                # send buffer, then the transport buffer — which trips the
                # bound.
                while server.counters()["connections_evicted"] == 0:
                    assert loop.time() < deadline_at, "hog was never evicted"
                    try:
                        await hog.send_frame(
                            {"request_id": sent, "request": _stats_doc()}
                        )
                    except (ConnectionError, OSError):
                        pass  # reset by the eviction racing our send
                    sent += 1
                await hog.close()
                client = await FrontendClient.connect(server.host, server.port)
                outcome = await client.submit(document)
                await client.close()
                return outcome, server.counters()

        outcome, counters = asyncio.run(main())
        assert outcome["status"] == "ok"
        assert counters["connections_evicted"] == 1
        assert counters["idle_timeouts"] == 0  # evicted for backlog, not idleness

    def test_stalled_reader_cannot_wedge_other_clients(
        self, grid10, traffic_snapshot, profile
    ):
        """Reply drains are per-connection and bounded: a stalled reader
        sharing a coalesced batch cannot delay the other connections'
        replies, and close() stays prompt."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        hog_doc = json.dumps(
            {"request_id": 0, "request": _cloak_doc(traffic_snapshot, profile, 0)}
        )
        documents = [
            _cloak_doc(traffic_snapshot, profile, index) for index in range(1, 4)
        ]

        async def main():
            server = FrontendServer(
                service,
                batch_window_ms=20.0,
                max_write_buffer_bytes=1 << 14,
                drain_timeout_s=0.3,
            )
            await server.start()
            hog = await FaultyConnection.connect(
                server.host, server.port, recv_buffer_bytes=2048
            )
            # One batch, two connections: 80 fat replies the hog will never
            # read, three the bystander is waiting on.
            for index in range(80):
                try:
                    await hog.send_frame(
                        json.dumps(
                            {
                                "request_id": index,
                                "request": _cloak_doc(
                                    traffic_snapshot, profile, index % 8
                                ),
                            }
                        )
                    )
                except (ConnectionError, OSError):
                    break
            bystander = await FrontendClient.connect(server.host, server.port)
            outcomes = await asyncio.wait_for(
                asyncio.gather(*[bystander.submit(d) for d in documents]),
                timeout=30,
            )
            await asyncio.wait_for(server.close(), timeout=30)
            await bystander.close()
            await hog.close()
            return outcomes, server.counters()

        outcomes, counters = asyncio.run(main())
        assert all(outcome["status"] == "ok" for outcome in outcomes)
        assert counters["connections_evicted"] == 1


class TestPingHealth:
    def test_ping_matches_direct_service_handle(self, grid10, traffic_snapshot):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        expected = _canonical(service.handle(_ping_doc()))

        async def main():
            async with FrontendServer(service) as server:
                client = await FrontendClient.connect(server.host, server.port)
                outcome = await client.submit(_ping_doc())
                await client.close()
                return outcome

        outcome = asyncio.run(main())
        assert outcome["format"] == PING_FORMAT
        assert _canonical(outcome) == expected

    def test_probes_answer_before_admission(
        self, grid10, traffic_snapshot, profile
    ):
        """Ping and health must work exactly when the queues are full —
        they answer before the admission check that sheds everything
        else."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(2)]

        async def main():
            server = FrontendServer(
                service, batch_window_ms=60_000.0, max_pending=1
            )
            await server.start()
            client = await FrontendClient.connect(server.host, server.port)
            blocked = client.submit(documents[0])  # admitted, parked in lane
            shed = await client.submit(documents[1])  # queue full
            ping = await client.submit(_ping_doc())
            health = await client.submit(_health_doc())
            close_task = asyncio.get_running_loop().create_task(server.close())
            outcome = await asyncio.wait_for(blocked, timeout=30)
            await asyncio.wait_for(close_task, timeout=30)
            await client.close()
            return shed, ping, health, outcome

        shed, ping, health, outcome = asyncio.run(main())
        assert shed["error"]["code"] == "overloaded"
        assert ping["status"] == "ok"
        assert health["format"] == HEALTH_FORMAT
        assert health["status"] == "ok"
        assert health["counters"]["frontend_pending"] == 1
        assert outcome["status"] == "ok"  # close() flushed the parked lane


class TestDeadlinePropagation:
    def test_expired_request_shed_before_dispatch(
        self, grid10, traffic_snapshot, profile
    ):
        """A request whose deadline expires while coalescing is answered
        with ``deadline_exceeded`` by the front-end — the engine never
        sees it."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        dispatched = []
        original = service.handle_batch

        def capture(documents):
            dispatched.extend(documents)
            return original(documents)

        service.handle_batch = capture
        document = _cloak_doc(traffic_snapshot, profile, 0)

        async def main():
            async with FrontendServer(service, batch_window_ms=150.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                outcome = await client.submit(document, deadline_ms=1.0)
                stats = await client.stats()
                await client.close()
                return outcome, stats

        outcome, stats = asyncio.run(main())
        assert outcome["status"] == "error"
        assert outcome["error"]["code"] == "deadline_exceeded"
        assert "front-end queue" in outcome["error"]["message"]
        assert dispatched == []
        assert stats["counters"]["expired_before_dispatch"] == 1

    def test_remaining_budget_forwarded_to_engine(
        self, grid10, traffic_snapshot, profile
    ):
        """A live request reaches the engine with only its *remaining*
        budget — the coalescing wait already subtracted — while a
        deadline-free request stays deadline-free."""
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        captured = []
        original = service.handle_batch

        def capture(documents):
            captured.extend(documents)
            return original(documents)

        service.handle_batch = capture
        document = _cloak_doc(traffic_snapshot, profile, 0)
        assert "deadline_ms" not in document

        async def main():
            async with FrontendServer(service, batch_window_ms=50.0) as server:
                client = await FrontendClient.connect(server.host, server.port)
                stamped = await client.submit(document, deadline_ms=60_000.0)
                bare = await client.submit(document)
                await client.close()
                return stamped, bare

        stamped, bare = asyncio.run(main())
        assert stamped["status"] == "ok" and bare["status"] == "ok"
        assert len(captured) == 2
        forwarded = captured[0]["deadline_ms"]
        # Shrunk by the ~50 ms coalescing window, but nowhere near spent.
        assert 55_000.0 < forwarded < 60_000.0
        assert "deadline_ms" not in captured[1]


class TestGracefulDrain:
    def _gated_service(self, grid10, traffic_snapshot):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)
        started = threading.Event()
        gate = threading.Event()
        original = service.handle_batch

        def gated(documents):
            started.set()
            assert gate.wait(timeout=60), "test gate never released"
            return original(documents)

        service.handle_batch = gated
        return service, started, gate

    def test_drain_completes_inflight_and_sheds_new(
        self, grid10, traffic_snapshot, profile
    ):
        service, started, gate = self._gated_service(grid10, traffic_snapshot)
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(3)]

        try:

            async def main():
                server = FrontendServer(service, batch_window_ms=1.0)
                await server.start()
                client = await FrontendClient.connect(server.host, server.port)
                raw_reader, raw_writer = await _raw_connection(server)
                futures = [client.submit(doc) for doc in documents]
                await client.drain()
                while not started.is_set():
                    await asyncio.sleep(0.01)
                close_task = asyncio.get_running_loop().create_task(
                    server.close()
                )
                await asyncio.sleep(0.05)
                # The listener is down: new connections are refused...
                with pytest.raises(ConnectionError):
                    await FrontendClient.connect(server.host, server.port)
                # ...existing connections stay readable, but new work is
                # shed with the structured overload code...
                decoder = FrameDecoder()
                raw_writer.write(
                    encode_frame(
                        json.dumps(
                            {"request_id": "late", "request": documents[0]}
                        )
                    )
                )
                late = json.loads(await _read_frame(raw_reader, decoder))
                # ...and a health probe reports the drain in progress.
                raw_writer.write(
                    encode_frame(
                        json.dumps({"request_id": "h", "request": _health_doc()})
                    )
                )
                health = json.loads(await _read_frame(raw_reader, decoder))
                gate.set()
                await asyncio.wait_for(close_task, timeout=30)
                outcomes = await asyncio.wait_for(
                    asyncio.gather(*futures), timeout=30
                )
                await client.close()
                raw_writer.close()
                return late, health, outcomes, server.counters()

            late, health, outcomes, counters = asyncio.run(main())
        finally:
            gate.set()
        assert late["outcome"]["error"]["code"] == "overloaded"
        assert health["outcome"]["status"] == "draining"
        assert all(outcome["status"] == "ok" for outcome in outcomes)
        assert counters["drained_inflight"] == 3
        assert counters["frontend_requests_shed"] == 1

    def test_drain_deadline_escalates_on_wedged_work(
        self, grid10, traffic_snapshot, profile
    ):
        """Work that outlives the drain deadline is cancelled: close()
        returns promptly and the abandoned clients see the connection
        close, not a hang."""
        service, started, gate = self._gated_service(grid10, traffic_snapshot)
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(3)]

        try:

            async def main():
                loop = asyncio.get_running_loop()
                server = FrontendServer(
                    service, batch_window_ms=1.0, drain_deadline_s=0.2
                )
                await server.start()
                client = await FrontendClient.connect(server.host, server.port)
                futures = [client.submit(doc) for doc in documents]
                await client.drain()
                while not started.is_set():
                    await asyncio.sleep(0.01)
                begin = loop.time()
                await asyncio.wait_for(server.close(), timeout=30)
                elapsed = loop.time() - begin
                results = await asyncio.wait_for(
                    asyncio.gather(*futures, return_exceptions=True), timeout=30
                )
                await client.close()
                return elapsed, results

            elapsed, results = asyncio.run(main())
        finally:
            gate.set()  # release the wedged executor thread
        assert elapsed < 5.0  # escalated at ~0.2 s, never waited the gate out
        assert all(isinstance(result, ConnectionError) for result in results)


class TestShutdown:
    def test_close_drains_pending_replies(self, grid10, traffic_snapshot, profile):
        documents = [_cloak_doc(traffic_snapshot, profile, i) for i in range(3)]
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            server = FrontendServer(service, batch_window_ms=60_000.0)
            await server.start()
            client = await FrontendClient.connect(server.host, server.port)
            futures = [client.submit(doc) for doc in documents]
            await client.drain()
            await asyncio.sleep(0.05)  # let the frames land in the lane
            # The window is a minute out — close() must flush the lane,
            # serve it, and write every reply before tearing down.
            await asyncio.wait_for(server.close(), timeout=30)
            outcomes = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(
                    FrontendClient.connect(server.host, server.port), timeout=5
                )
            await client.close()
            return outcomes

        outcomes = asyncio.run(main())
        assert all(outcome["status"] == "ok" for outcome in outcomes)

    def test_close_is_idempotent(self, grid10):
        service = AnonymizerService(grid10)

        async def main():
            server = FrontendServer(service)
            await server.start()
            await server.close()
            await server.close()

        asyncio.run(main())

    def test_client_rejects_submits_after_close(self, grid10, traffic_snapshot):
        service = AnonymizerService(grid10)
        service.update_snapshot(traffic_snapshot)

        async def main():
            async with FrontendServer(service) as server:
                client = await FrontendClient.connect(server.host, server.port)
                await client.close()
                with pytest.raises(ConnectionError):
                    client.submit(_stats_doc())

        asyncio.run(main())


class TestConsoleEntry:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_serves_and_drains_on_signal(self, signum):
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(repo_src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.lbs.frontend",
                "--port",
                "0",
                "--grid-side",
                "6",
                "--batch-window-ms",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline().split()
            assert ready[:1] == ["FRONTEND_READY"]
            host, port = ready[1], int(ready[2])

            async def roundtrip():
                client = await FrontendClient.connect(host, port)
                stats = await client.stats()
                await client.close()
                return stats

            stats = asyncio.run(roundtrip())
            assert stats["counters"]["connections"] == 1
            proc.send_signal(signum)
            out, err = proc.communicate(timeout=30)
        finally:
            proc.kill()
        assert proc.returncode == 0, err
        assert "draining" in out
        assert "Traceback" not in err

    def test_sigterm_completes_inflight_requests(self, profile):
        """SIGTERM with N requests parked behind a huge batch window:
        the drain flushes the lane, all N replies arrive, and the process
        exits 0 within its drain deadline."""
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(repo_src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.lbs.frontend",
                "--port",
                "0",
                "--grid-side",
                "6",
                "--batch-window-ms",
                "10000",
                "--drain-deadline-s",
                "20",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline().split()
            assert ready[:1] == ["FRONTEND_READY"]
            host, port = ready[1], int(ready[2])
            documents = [
                CloakRequestDoc.from_request(
                    CloakRequest(
                        user_id=user_id,
                        profile=profile,
                        chain=KeyChain.from_passphrases(
                            [f"sig{user_id}-1", f"sig{user_id}-2"]
                        ),
                    )
                ).to_dict()
                for user_id in range(4)
            ]

            async def drive():
                client = await FrontendClient.connect(host, port)
                futures = [client.submit(doc) for doc in documents]
                await client.drain()
                # The stats round-trip proves all four were admitted and
                # are parked in the lane before the signal goes out.
                stats = await client.stats()
                assert stats["counters"]["frontend_pending"] == 4
                proc.send_signal(signal.SIGTERM)
                outcomes = await asyncio.wait_for(
                    asyncio.gather(*futures), timeout=30
                )
                await client.close()
                return outcomes

            outcomes = asyncio.run(drive())
            out, err = proc.communicate(timeout=30)
        finally:
            proc.kill()
        assert all(outcome["status"] == "ok" for outcome in outcomes)
        assert proc.returncode == 0, err
        assert "draining" in out
        assert "Traceback" not in err
