"""Tests for :mod:`repro.lbs.framing` — the length-prefixed byte layer of
the network front-end, including its adversarial-input contract: oversized
declarations, truncated prefixes, and pathological chunkings."""

import struct

import pytest

from repro.errors import WireFormatError
from repro.lbs import DEFAULT_MAX_FRAME_BYTES, FrameDecoder, encode_frame
from repro.lbs.framing import FRAME_HEADER_SIZE


PAYLOADS = [b"{}", b'{"request_id":1}', b"x" * 1000, b"", "café".encode()]


def test_frame_layout():
    frame = encode_frame(b"abc")
    assert frame[:FRAME_HEADER_SIZE] == struct.pack(">I", 3)
    assert frame[FRAME_HEADER_SIZE:] == b"abc"


def test_encode_accepts_str_as_utf8():
    assert encode_frame("café") == encode_frame("café".encode("utf-8"))


class TestRoundTrip:
    def test_one_feed(self):
        decoder = FrameDecoder()
        stream = b"".join(encode_frame(p) for p in PAYLOADS)
        assert decoder.feed(stream) == PAYLOADS
        assert not decoder.mid_frame
        assert decoder.buffered_bytes == 0

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 7, 64, 4096])
    def test_any_chunking(self, chunk_size):
        """A frame boundary never has to align with a read boundary."""
        decoder = FrameDecoder()
        stream = b"".join(encode_frame(p) for p in PAYLOADS)
        out = []
        for start in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[start : start + chunk_size]))
        assert out == PAYLOADS
        assert not decoder.mid_frame

    def test_empty_feed_is_noop(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"") == []
        assert not decoder.mid_frame


class TestMidFrame:
    def test_truncated_length_prefix(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []
        assert decoder.mid_frame
        assert decoder.buffered_bytes == 2

    def test_partial_payload(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"hello world")
        assert decoder.feed(frame[:-4]) == []
        assert decoder.mid_frame
        assert decoder.feed(frame[-4:]) == [b"hello world"]
        assert not decoder.mid_frame

    def test_complete_frame_plus_tail_is_mid_frame(self):
        decoder = FrameDecoder()
        stream = encode_frame(b"done") + encode_frame(b"cut")[:3]
        assert decoder.feed(stream) == [b"done"]
        assert decoder.mid_frame


class TestOversized:
    def test_declared_over_limit_raises_before_payload(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(WireFormatError, match="over the 16-byte"):
            # Only the 4 length bytes arrive — the decoder must not wait
            # for (and buffer) a payload it already knows it will refuse.
            decoder.feed(struct.pack(">I", 17))

    def test_exactly_at_limit_is_fine(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        assert decoder.feed(encode_frame(b"x" * 16, 16)) == [b"x" * 16]

    def test_frames_before_the_oversized_one_are_delivered(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        stream = encode_frame(b"ok", 16) + struct.pack(">I", 1 << 30)
        with pytest.raises(WireFormatError):
            decoder.feed(stream)

    def test_encode_refuses_over_limit(self):
        with pytest.raises(WireFormatError, match="exceeds"):
            encode_frame(b"x" * 17, max_frame_bytes=16)
        with pytest.raises(WireFormatError):
            encode_frame(b"x" * (DEFAULT_MAX_FRAME_BYTES + 1))

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(WireFormatError):
            FrameDecoder(max_frame_bytes=0)


class TestPoisonLatch:
    """An oversized declaration is unrecoverable — the stream cannot be
    resynchronized — so the decoder latches and refuses everything after."""

    def test_clean_decoder_is_not_poisoned(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        decoder.feed(encode_frame(b"ok", 16))
        assert not decoder.poisoned

    def test_oversized_declaration_sets_the_latch(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(WireFormatError):
            decoder.feed(struct.pack(">I", 17))
        assert decoder.poisoned

    def test_every_feed_after_poisoning_raises(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(WireFormatError):
            decoder.feed(struct.pack(">I", 1 << 30))
        # Even perfectly well-formed frames are refused now: the byte
        # stream's framing is unrecoverable, not the individual frame.
        for _ in range(2):
            with pytest.raises(WireFormatError, match="poisoned"):
                decoder.feed(encode_frame(b"ok", 16))
        assert decoder.poisoned
