"""Tests for access keys and key chains."""

import pytest

from repro.errors import ProfileError
from repro.keys import AccessKey, KeyChain


class TestAccessKey:
    def test_generate_is_random(self):
        assert AccessKey.generate(1).material != AccessKey.generate(1).material

    def test_level_zero_rejected(self):
        with pytest.raises(ProfileError):
            AccessKey(0, b"x" * 32)

    def test_short_material_rejected(self):
        with pytest.raises(ProfileError):
            AccessKey(1, b"short")

    def test_from_passphrase_deterministic(self):
        a = AccessKey.from_passphrase(1, "hello")
        b = AccessKey.from_passphrase(1, "hello")
        assert a.material == b.material

    def test_from_passphrase_level_tagged(self):
        # same phrase, different level -> different key
        assert (
            AccessKey.from_passphrase(1, "hello").material
            != AccessKey.from_passphrase(2, "hello").material
        )

    def test_repr_hides_material(self):
        key = AccessKey.from_passphrase(1, "secret-phrase")
        assert key.material.hex() not in repr(key)
        assert key.fingerprint() in repr(key)

    def test_stream_purposes_independent(self):
        key = AccessKey.from_passphrase(2, "x")
        assert key.stream("transitions").value_at(0) != key.stream("hints").value_at(0)

    def test_fingerprint_stable(self):
        key = AccessKey.from_passphrase(1, "x")
        assert key.fingerprint() == key.fingerprint()
        assert len(key.fingerprint()) == 8


class TestKeyChain:
    def test_generate_levels(self):
        chain = KeyChain.generate(4)
        assert chain.levels == 4
        assert [key.level for key in chain] == [1, 2, 3, 4]

    def test_zero_levels_rejected(self):
        with pytest.raises(ProfileError):
            KeyChain.generate(0)

    def test_non_contiguous_levels_rejected(self):
        with pytest.raises(ProfileError):
            KeyChain([AccessKey.from_passphrase(1, "a"), AccessKey.from_passphrase(3, "b")])

    def test_key_for(self):
        chain = KeyChain.from_passphrases(["a", "b"])
        assert chain.key_for(2).level == 2
        with pytest.raises(ProfileError):
            chain.key_for(3)

    def test_has_level(self):
        chain = KeyChain.from_passphrases(["a"])
        assert chain.has_level(1)
        assert not chain.has_level(2)

    def test_suffix_grants(self):
        chain = KeyChain.from_passphrases(["a", "b", "c"])
        suffix = chain.suffix(2)
        assert [key.level for key in suffix] == [2, 3]

    def test_suffix_bounds(self):
        chain = KeyChain.from_passphrases(["a", "b"])
        with pytest.raises(ProfileError):
            chain.suffix(0)
        with pytest.raises(ProfileError):
            chain.suffix(3)

    def test_len_and_iter_ordered(self):
        chain = KeyChain.generate(3)
        assert len(chain) == 3
        assert [key.level for key in chain] == [1, 2, 3]

    def test_hex_round_trip(self):
        chain = KeyChain.generate(3)
        restored = KeyChain.from_hex_list(chain.to_hex_list())
        assert restored.levels == 3
        for level in (1, 2, 3):
            assert restored.key_for(level).material == chain.key_for(level).material

    def test_repr_shows_fingerprints_not_material(self):
        chain = KeyChain.from_passphrases(["a", "b"])
        text = repr(chain)
        assert chain.key_for(1).fingerprint() in text
        assert chain.key_for(1).material.hex() not in text
