"""Tests for the keyed PRF streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.keys import PrfStream, derive_pad, prf_value


class TestPrfValue:
    def test_deterministic(self):
        assert prf_value(b"key", b"domain", 5) == prf_value(b"key", b"domain", 5)

    def test_index_sensitivity(self):
        assert prf_value(b"key", b"domain", 0) != prf_value(b"key", b"domain", 1)

    def test_key_sensitivity(self):
        assert prf_value(b"key1", b"domain", 0) != prf_value(b"key2", b"domain", 0)

    def test_domain_sensitivity(self):
        assert prf_value(b"key", b"d1", 0) != prf_value(b"key", b"d2", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            prf_value(b"key", b"domain", -1)

    def test_values_are_256_bit(self):
        value = prf_value(b"key", b"domain", 0)
        assert 0 <= value < 1 << 256

    @given(st.integers(min_value=0, max_value=10_000))
    def test_no_accidental_collisions_nearby(self, index):
        assert prf_value(b"key", b"domain", index) != prf_value(
            b"key", b"domain", index + 1
        )


class TestDerivePad:
    def test_deterministic(self):
        assert derive_pad(b"key", b"domain") == derive_pad(b"key", b"domain")

    def test_width(self):
        assert len(derive_pad(b"key", b"domain", 8)) == 8
        assert len(derive_pad(b"key", b"domain", 32)) == 32

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            derive_pad(b"key", b"domain", 0)
        with pytest.raises(ValueError):
            derive_pad(b"key", b"domain", 33)

    def test_independent_of_prf_stream(self):
        # The pad must not equal any early stream value's prefix (domain
        # separation via the "|pad" suffix).
        pad = derive_pad(b"key", b"domain", 32)
        stream_value = prf_value(b"key", b"domain", 0)
        assert int.from_bytes(pad, "big") != stream_value


class TestPrfStream:
    def test_sequential_matches_random_access(self):
        stream = PrfStream(b"secret")
        values = [stream.next_value() for __ in range(5)]
        assert values == [stream.value_at(i) for i in range(5)]

    def test_cursor_tracks(self):
        stream = PrfStream(b"secret")
        assert stream.cursor == 0
        stream.next_value()
        assert stream.cursor == 1

    def test_reset(self):
        stream = PrfStream(b"secret")
        first = stream.next_value()
        stream.reset()
        assert stream.next_value() == first

    def test_values_iterator(self):
        stream = PrfStream(b"secret")
        assert list(stream.values(3)) == [stream.value_at(i) for i in range(3)]
        assert list(stream.values(2, start=5)) == [
            stream.value_at(5),
            stream.value_at(6),
        ]

    def test_values_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(PrfStream(b"secret").values(-1))

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrfStream(b"")

    def test_fork_is_independent(self):
        stream = PrfStream(b"secret", domain=b"base")
        fork = stream.fork(b"sub")
        assert fork.value_at(0) != stream.value_at(0)

    def test_same_key_same_domain_agree(self):
        # the property reversibility rests on: both protocol sides see the
        # identical stream
        a = PrfStream(b"secret", domain=b"level-1")
        b = PrfStream(b"secret", domain=b"level-1")
        assert [a.next_value() for __ in range(10)] == [
            b.next_value() for __ in range(10)
        ]
