"""Tests for the keyed PRF streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.keys import PrfStream, derive_pad, prf_value


class TestPrfValue:
    def test_deterministic(self):
        assert prf_value(b"key", b"domain", 5) == prf_value(b"key", b"domain", 5)

    def test_index_sensitivity(self):
        assert prf_value(b"key", b"domain", 0) != prf_value(b"key", b"domain", 1)

    def test_key_sensitivity(self):
        assert prf_value(b"key1", b"domain", 0) != prf_value(b"key2", b"domain", 0)

    def test_domain_sensitivity(self):
        assert prf_value(b"key", b"d1", 0) != prf_value(b"key", b"d2", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            prf_value(b"key", b"domain", -1)

    def test_values_are_256_bit(self):
        value = prf_value(b"key", b"domain", 0)
        assert 0 <= value < 1 << 256

    @given(st.integers(min_value=0, max_value=10_000))
    def test_no_accidental_collisions_nearby(self, index):
        assert prf_value(b"key", b"domain", index) != prf_value(
            b"key", b"domain", index + 1
        )


class TestDerivePad:
    def test_deterministic(self):
        assert derive_pad(b"key", b"domain") == derive_pad(b"key", b"domain")

    def test_width(self):
        assert len(derive_pad(b"key", b"domain", 8)) == 8
        assert len(derive_pad(b"key", b"domain", 32)) == 32

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            derive_pad(b"key", b"domain", 0)
        with pytest.raises(ValueError):
            derive_pad(b"key", b"domain", 33)

    def test_independent_of_prf_stream(self):
        # The pad must not equal any early stream value's prefix (domain
        # separation via the "|pad" suffix).
        pad = derive_pad(b"key", b"domain", 32)
        stream_value = prf_value(b"key", b"domain", 0)
        assert int.from_bytes(pad, "big") != stream_value


class TestPrfStream:
    def test_sequential_matches_random_access(self):
        stream = PrfStream(b"secret")
        values = [stream.next_value() for __ in range(5)]
        assert values == [stream.value_at(i) for i in range(5)]

    def test_cursor_tracks(self):
        stream = PrfStream(b"secret")
        assert stream.cursor == 0
        stream.next_value()
        assert stream.cursor == 1

    def test_reset(self):
        stream = PrfStream(b"secret")
        first = stream.next_value()
        stream.reset()
        assert stream.next_value() == first

    def test_values_iterator(self):
        stream = PrfStream(b"secret")
        assert list(stream.values(3)) == [stream.value_at(i) for i in range(3)]
        assert list(stream.values(2, start=5)) == [
            stream.value_at(5),
            stream.value_at(6),
        ]

    def test_values_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(PrfStream(b"secret").values(-1))

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrfStream(b"")

    def test_fork_is_independent(self):
        stream = PrfStream(b"secret", domain=b"base")
        fork = stream.fork(b"sub")
        assert fork.value_at(0) != stream.value_at(0)

    def test_same_key_same_domain_agree(self):
        # the property reversibility rests on: both protocol sides see the
        # identical stream
        a = PrfStream(b"secret", domain=b"level-1")
        b = PrfStream(b"secret", domain=b"level-1")
        assert [a.next_value() for __ in range(10)] == [
            b.next_value() for __ in range(10)
        ]


class TestKeyedDigestPlane:
    def test_keyed_digest_matches_hmac_module(self):
        import hashlib
        import hmac

        from repro.keys import keyed_digest

        for key in (b"12345678", b"k" * 32, b"q" * 100):  # incl. > block size
            for message in (b"", b"m", b"x" * 200):
                assert keyed_digest(key, message) == hmac.new(
                    key, message, hashlib.sha256
                ).digest()

    def test_keyed_digest_block_matches_per_call(self):
        from repro.keys import keyed_digest, keyed_digest_block

        messages = [f"msg-{i}".encode() for i in range(20)]
        assert keyed_digest_block(b"key-bytes", messages) == [
            keyed_digest(b"key-bytes", m) for m in messages
        ]

    def test_lru_keeps_recently_used_keys(self):
        # Eviction is least-recently-used, not a wholesale clear: after
        # overflowing the cap, the most recently touched keys must still be
        # resident while the stalest are gone.
        from repro.keys import keyed_digest, purge_keyed_hmac_cache
        from repro.keys.prf import _KEYED_HMAC_CACHE, _KEYED_HMAC_CACHE_CAP

        purge_keyed_hmac_cache()
        keys = [b"lru-key-%04d" % i for i in range(_KEYED_HMAC_CACHE_CAP + 16)]
        for key in keys:
            keyed_digest(key, b"probe")
        assert len(_KEYED_HMAC_CACHE) == _KEYED_HMAC_CACHE_CAP
        assert keys[0] not in _KEYED_HMAC_CACHE  # stalest evicted
        assert keys[-1] in _KEYED_HMAC_CACHE  # freshest resident
        # Touching a resident key protects it from the next eviction wave.
        survivor = keys[17]
        keyed_digest(survivor, b"probe")
        for i in range(_KEYED_HMAC_CACHE_CAP - 1):
            keyed_digest(b"wave-two-%04d" % i, b"probe")
        assert survivor in _KEYED_HMAC_CACHE
        purge_keyed_hmac_cache()

    def test_purge_empties_cache(self):
        from repro.keys import keyed_digest, purge_keyed_hmac_cache
        from repro.keys.prf import _KEYED_HMAC_CACHE

        keyed_digest(b"purgeable-key", b"m")
        assert _KEYED_HMAC_CACHE
        purge_keyed_hmac_cache()
        assert not _KEYED_HMAC_CACHE
        # ... and digests still work (cache repopulates).
        keyed_digest(b"purgeable-key", b"m")


class TestPrfBlockPlane:
    def test_prf_block_matches_per_call(self):
        from repro.keys import prf_block

        indices = [0, 1, 7, 1 << 24, (9 << 24) | 3, 10_000]
        assert prf_block(b"key", b"domain", indices) == tuple(
            prf_value(b"key", b"domain", i) for i in indices
        )

    def test_prf_block_rejects_negative_index(self):
        from repro.keys import prf_block

        with pytest.raises(ValueError):
            prf_block(b"key", b"domain", [0, -1])

    @given(
        key=st.binary(min_size=1, max_size=80),
        domain=st.binary(max_size=40),
        start=st.integers(min_value=0, max_value=1 << 30),
        count=st.integers(min_value=0, max_value=40),
    )
    def test_block_equals_stream_property(self, key, domain, start, count):
        # The tentpole equivalence: batched drawing is byte-identical to
        # the per-call stream for arbitrary keys/domains/windows.
        from repro.keys import prf_block

        indices = range(start, start + count)
        assert prf_block(key, domain, indices) == tuple(
            prf_value(key, domain, i) for i in indices
        )

    def test_prf_drawer_single_and_block(self):
        from repro.keys import PrfDrawer

        drawer = PrfDrawer(b"key", b"domain")
        assert drawer.value(5) == prf_value(b"key", b"domain", 5)
        assert drawer.block([2, 9]) == (
            prf_value(b"key", b"domain", 2),
            prf_value(b"key", b"domain", 9),
        )
        with pytest.raises(ValueError):
            drawer.value(-1)

    def test_stream_next_block(self):
        stream = PrfStream(b"secret", domain=b"blk")
        reference = PrfStream(b"secret", domain=b"blk")
        values = stream.next_block(6)
        assert list(values) == [reference.next_value() for __ in range(6)]
        assert stream.cursor == 6
        # Mixing planes keeps one coherent stream.
        assert stream.next_value() == reference.next_value()
        assert stream.next_block(0) == ()

    def test_stream_block_buffer(self):
        from repro.keys import PrfBlock

        stream = PrfStream(b"secret", domain=b"blk")
        block = stream.block(4, start=3)
        assert isinstance(block, PrfBlock)
        assert stream.cursor == 0  # blocks never consume
        assert (block.start, block.stop, len(block)) == (3, 7, 4)
        assert block.covers(3) and block.covers(6) and not block.covers(7)
        assert list(block) == [stream.value_at(i) for i in range(3, 7)]
        # In-window and out-of-window reads agree with the stream.
        assert block.value_at(5) == stream.value_at(5)
        assert block.value_at(100) == stream.value_at(100)

    def test_block_rejects_bad_window(self):
        from repro.keys import PrfBlock

        with pytest.raises(ValueError):
            PrfBlock(b"key", b"domain", -1, 4)
        with pytest.raises(ValueError):
            PrfBlock(b"key", b"domain", 0, -4)
        with pytest.raises(ValueError):
            PrfStream(b"key").next_block(-1)


class TestForkEncoding:
    def test_fork_slash_collision_is_gone(self):
        # Regression (bare b"/" join): fork(b"a/b") used to equal
        # fork(b"a").fork(b"b"). Length-prefixing makes the chain encoding
        # injective.
        stream = PrfStream(b"secret", domain=b"base")
        joined = stream.fork(b"a/b")
        chained = stream.fork(b"a").fork(b"b")
        assert joined.domain != chained.domain
        assert joined.value_at(0) != chained.value_at(0)

    def test_fork_is_deterministic_and_keyed(self):
        a = PrfStream(b"secret", domain=b"base").fork(b"sub")
        b = PrfStream(b"secret", domain=b"base").fork(b"sub")
        assert a.domain == b.domain
        assert a.value_at(0) == b.value_at(0)

    def test_unforked_streams_unchanged_golden(self):
        # Envelope bytes rest on unforked domains only (no core call site
        # passes through fork), so the raw PRF outputs must stay pinned to
        # the pre-change values. Hard-coded golden vector.
        value = prf_value(
            b"golden-key-bytes",
            b"reversecloak|level=1|transitions",
            (7 << 24) | 3,
        )
        assert value == int(
            "3638301f52c11120a81226c9ca3421b19d2facf69b3109b6e0a789fc1f756fb1",
            16,
        )
