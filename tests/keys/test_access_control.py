"""Tests for the personal access-control profile."""

import pytest

from repro.errors import ProfileError
from repro.keys import AccessControlProfile, KeyChain, Requester


@pytest.fixture()
def chain():
    return KeyChain.from_passphrases(["a", "b", "c"])


@pytest.fixture()
def profile(chain):
    # level 2 visible at trust 10, level 1 at 50, exact location at 90
    return AccessControlProfile(chain, {2: 10, 1: 50, 0: 90})


class TestRequester:
    def test_empty_id_rejected(self):
        with pytest.raises(ProfileError):
            Requester("", 5)

    def test_negative_trust_rejected(self):
        with pytest.raises(ProfileError):
            Requester("bob", -1)


class TestProfileConstruction:
    def test_threshold_level_out_of_range(self, chain):
        with pytest.raises(ProfileError):
            AccessControlProfile(chain, {3: 10})  # level 3 is public

    def test_inverted_thresholds_rejected(self, chain):
        # finer level requiring LESS trust than a coarser one is inconsistent
        with pytest.raises(ProfileError):
            AccessControlProfile(chain, {0: 10, 1: 50})


class TestGrants:
    def test_unknown_requester_gets_nothing(self, profile):
        grant = profile.fetch_keys("stranger")
        assert grant.access_level == 3
        assert grant.keys == ()

    def test_low_trust_gets_outer_key_only(self, profile):
        profile.register(Requester("acquaintance", trust_degree=15))
        grant = profile.fetch_keys("acquaintance")
        assert grant.access_level == 2
        assert grant.key_levels == (3,)

    def test_mid_trust(self, profile):
        profile.register(Requester("friend", trust_degree=60))
        grant = profile.fetch_keys("friend")
        assert grant.access_level == 1
        assert grant.key_levels == (2, 3)

    def test_full_trust_gets_all_keys(self, profile):
        profile.register(Requester("family", trust_degree=95))
        grant = profile.fetch_keys("family")
        assert grant.access_level == 0
        assert grant.key_levels == (1, 2, 3)

    def test_trust_below_all_thresholds(self, profile):
        profile.register(Requester("lurker", trust_degree=3))
        grant = profile.fetch_keys("lurker")
        assert grant.access_level == 3
        assert grant.keys == ()

    def test_update_requester_changes_grant(self, profile):
        profile.register(Requester("bob", trust_degree=5))
        assert profile.fetch_keys("bob").access_level == 3
        profile.register(Requester("bob", trust_degree=55))
        assert profile.fetch_keys("bob").access_level == 1

    def test_remove_requester(self, profile):
        profile.register(Requester("bob", trust_degree=95))
        profile.remove("bob")
        assert profile.fetch_keys("bob").access_level == 3

    def test_known_requesters_sorted(self, profile):
        profile.register(Requester("zoe", 1))
        profile.register(Requester("amy", 1))
        assert profile.known_requesters() == ("amy", "zoe")

    def test_granted_keys_match_chain(self, profile, chain):
        profile.register(Requester("friend", trust_degree=60))
        grant = profile.fetch_keys("friend")
        for key in grant.keys:
            assert key.material == chain.key_for(key.level).material
