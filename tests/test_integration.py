"""Cross-component integration scenarios.

Each test drives several subsystems together the way the paper's deployment
does — simulator feeding the anonymizer, envelopes flowing to the provider,
keys flowing through access control, requesters reversing and querying.
Unit tests pin the parts; these pin the joints.
"""

import json

import pytest

from repro import (
    AccessControlProfile,
    CloakEnvelope,
    KeyChain,
    PrivacyProfile,
    Requester,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    TrafficSimulator,
    grid_network,
    load_network_json,
    radial_network,
    save_network_json,
)
from repro.attacks import StructuralAdversary, segment_entropy
from repro.lbs import (
    CloakRequest,
    ContinuousCloaker,
    LBSProvider,
    PoiDirectory,
    TrustedAnonymizer,
)
from repro.metrics import nesting_ratios, region_quality


class TestFullDeploymentScenario:
    """The paper's Section IV story, end to end, on both algorithms."""

    @pytest.fixture(params=["rge", "rple"])
    def deployment(self, request):
        network = grid_network(12, 12)
        simulator = TrafficSimulator(network, n_cars=700, seed=101)
        simulator.run(3)
        algorithm = (
            None
            if request.param == "rge"
            else ReversiblePreassignmentExpansion.for_network(network)
        )
        anonymizer = TrustedAnonymizer(network, algorithm)
        anonymizer.update_snapshot(simulator.snapshot())
        provider = LBSProvider(PoiDirectory(network, count=250, seed=9))
        return network, simulator, anonymizer, provider

    def test_owner_to_requester_flow(self, deployment):
        network, simulator, anonymizer, provider = deployment
        snapshot = simulator.snapshot()
        owner = snapshot.users()[12]
        profile = PrivacyProfile.uniform(
            levels=3, base_k=5, k_step=5, base_l=3, l_step=2, max_segments=70
        )
        chain = KeyChain.generate(3)

        # 1. owner cloaks and uploads
        envelope = anonymizer.cloak(
            CloakRequest(user_id=owner, profile=profile, chain=chain)
        )
        provider.upload("owner", envelope)

        # 2. owner configures access control
        acl = AccessControlProfile(chain, {2: 10, 1: 40, 0: 80})
        acl.register(Requester("stranger", 0))
        acl.register(Requester("friend", 50))
        acl.register(Requester("spouse", 99))

        # 3. requesters fetch + reverse per their grants
        stored = provider.envelope_of("owner")
        # serialization boundary: the provider ships JSON
        shipped = CloakEnvelope.from_json(stored.to_json())

        stranger_grant = acl.fetch_keys("stranger")
        assert stranger_grant.keys == ()
        assert provider.visible_region("owner") == shipped.region

        friend_engine = ReverseCloakEngine.for_envelope(network, shipped)
        friend_grant = acl.fetch_keys("friend")
        friend_view = friend_engine.deanonymize(
            shipped,
            {key.level: key for key in friend_grant.keys},
            target_level=friend_grant.access_level,
        )
        assert friend_grant.access_level == 1
        assert set(friend_view.region_at(1)) < set(shipped.region)

        spouse_grant = acl.fetch_keys("spouse")
        spouse_view = friend_engine.deanonymize(
            shipped,
            {key.level: key for key in spouse_grant.keys},
            target_level=0,
        )
        assert spouse_view.region_at(0) == (snapshot.segment_of(owner),)

        # 4. queries get tighter with finer regions
        coarse = provider.serve_range_query("owner", radius=200.0)
        fine = provider.serve_range_query(
            "owner", radius=200.0, region_override=friend_view.region_at(1)
        )
        assert fine.candidate_count <= coarse.candidate_count

    def test_regions_nest_and_satisfy_profile(self, deployment):
        network, simulator, anonymizer, provider = deployment
        snapshot = simulator.snapshot()
        profile = PrivacyProfile.uniform(
            levels=3, base_k=4, k_step=4, base_l=3, l_step=1, max_segments=70
        )
        chain = KeyChain.generate(3)
        envelope = anonymizer.cloak(
            CloakRequest(user_id=snapshot.users()[3], profile=profile, chain=chain)
        )
        engine = ReverseCloakEngine.for_envelope(network, envelope)
        result = engine.deanonymize(envelope, chain, target_level=0)
        ratios = nesting_ratios(result.regions)
        assert all(0 < ratio <= 1 for ratio in ratios.values())
        for level in (1, 2, 3):
            quality = region_quality(
                network,
                set(result.regions[level]),
                snapshot,
                profile.requirement(level),
            )
            assert quality.meets(profile.requirement(level))


class TestMapPersistenceScenario:
    """Owner and requester load the same map from disk (the real workflow:
    a map file is distributed once, envelopes flow separately)."""

    def test_cloak_travels_across_processes(self, tmp_path):
        network = radial_network(5, 8)
        map_path = tmp_path / "city.json"
        save_network_json(network, map_path)

        # "anonymizer process"
        simulator = TrafficSimulator(network, n_cars=300, seed=77)
        simulator.run(2)
        snapshot = simulator.snapshot()
        profile = PrivacyProfile.uniform(
            levels=2, base_k=4, k_step=4, base_l=3, l_step=1, max_segments=40
        )
        chain = KeyChain.generate(2)
        engine = ReverseCloakEngine(network)
        user_segment = snapshot.occupied_segments()[0]
        envelope = engine.anonymize(user_segment, snapshot, profile, chain)
        (tmp_path / "envelope.json").write_text(envelope.to_json())
        (tmp_path / "keys.json").write_text(
            json.dumps({"levels": chain.to_hex_list()})
        )

        # "requester process": everything reloaded from disk
        loaded_network = load_network_json(map_path)
        loaded_envelope = CloakEnvelope.from_json(
            (tmp_path / "envelope.json").read_text()
        )
        loaded_chain = KeyChain.from_hex_list(
            json.loads((tmp_path / "keys.json").read_text())["levels"]
        )
        requester_engine = ReverseCloakEngine.for_envelope(
            loaded_network, loaded_envelope
        )
        result = requester_engine.deanonymize(
            loaded_envelope, loaded_chain, target_level=0
        )
        assert result.region_at(0) == (user_segment,)


class TestAdversaryIntegration:
    """Adversaries operate on real deployment artifacts, not synthetic ones."""

    def test_structural_adversary_vs_live_envelope(self):
        network = grid_network(10, 10)
        simulator = TrafficSimulator(network, n_cars=400, seed=23)
        simulator.run(2)
        snapshot = simulator.snapshot()
        profile = PrivacyProfile.uniform(
            levels=2, base_k=5, k_step=5, base_l=3, l_step=2, max_segments=50
        )
        chain = KeyChain.generate(2)
        engine = ReverseCloakEngine(network)
        user_segment = snapshot.occupied_segments()[4]
        envelope = engine.anonymize(user_segment, snapshot, profile, chain)

        adversary = StructuralAdversary(network, max_sequences=40_000)
        posterior = adversary.attack_envelope(envelope, target_level=0)
        # privacy floor: the keyless adversary's uncertainty stays within a
        # factor of the l-diversity design (many candidates remain)
        assert posterior.candidate_count >= 2
        assert posterior.probability_of({user_segment}) < 1.0
        # ... while the region's raw entropy matches its size
        assert segment_entropy(set(envelope.region)) > 2.0

    def test_continuous_cloaks_remain_individually_sound(self):
        """Every envelope in a continuous stream independently satisfies its
        profile and reverses exactly (the intersection weakness is *across*
        envelopes, never within one)."""
        network = grid_network(10, 10)
        simulator = TrafficSimulator(network, n_cars=400, seed=29)
        simulator.run(2)
        engine = ReverseCloakEngine(network)
        profile = PrivacyProfile.uniform(
            levels=2, base_k=5, k_step=3, base_l=3, l_step=1, max_segments=50
        )
        cloaker = ContinuousCloaker(engine, simulator, profile)
        timeline = cloaker.run(user_id=8, ticks=5, interval_seconds=5.0)
        for entry in timeline.successful_entries():
            assert entry.snapshot.count_in_region(
                set(entry.envelope.region)
            ) >= profile.requirement(2).k
            result = engine.deanonymize(entry.envelope, entry.chain, 0)
            assert result.region_at(0) == (entry.snapshot.segment_of(8),)
