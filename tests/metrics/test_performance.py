"""Tests for timing and memory instruments."""

import time

import pytest

from repro.metrics import Timer, deep_sizeof, measure


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first


class TestMeasure:
    def test_summary_fields(self):
        summary = measure(lambda: sum(range(1000)), repeats=5)
        assert summary.repeats == 5
        assert summary.min_s <= summary.median_s <= summary.max_s
        assert summary.mean_s > 0

    def test_single_repeat_has_zero_stdev(self):
        summary = measure(lambda: None, repeats=1)
        assert summary.stdev_s == 0.0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_str_mentions_mean(self):
        summary = measure(lambda: None, repeats=2)
        assert "ms mean" in str(summary)


class TestDeepSizeof:
    def test_container_bigger_than_scalar(self):
        assert deep_sizeof([1, 2, 3]) > deep_sizeof(1)

    def test_nested_counts_children(self):
        flat = deep_sizeof([0] * 10)
        nested = deep_sizeof([[0] * 10, [1] * 10])
        assert nested > flat

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared)

    def test_objects_with_dict(self):
        class Holder:
            def __init__(self):
                self.payload = list(range(50))

        assert deep_sizeof(Holder()) > deep_sizeof(list(range(50)))

    def test_dict_counts_keys_and_values(self):
        assert deep_sizeof({"a" * 50: "b" * 50}) > deep_sizeof({})
