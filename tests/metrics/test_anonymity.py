"""Tests for anonymity/region-quality metrics."""

import pytest

from repro.core import LevelRequirement, ToleranceSpec
from repro.metrics import nesting_ratios, region_quality
from repro.mobility import PopulationSnapshot
from repro.roadnet import grid_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6, spacing=100.0)


@pytest.fixture(scope="module")
def snapshot():
    return PopulationSnapshot.from_counts({0: 3, 1: 2, 2: 1, 30: 4})


class TestRegionQuality:
    def test_counts(self, grid, snapshot):
        quality = region_quality(grid, {0, 1, 2}, snapshot)
        assert quality.segments == 3
        assert quality.users == 6
        assert quality.total_length == pytest.approx(300.0)
        assert quality.diagonal == pytest.approx(300.0)

    def test_relative_figures(self, grid, snapshot):
        requirement = LevelRequirement(
            k=3, l=2, tolerance=ToleranceSpec(max_segments=10)
        )
        quality = region_quality(grid, {0, 1, 2}, snapshot, requirement)
        assert quality.relative_k == pytest.approx(2.0)
        assert quality.relative_l == pytest.approx(1.5)
        assert quality.meets(requirement)

    def test_no_requirement_means_no_relatives(self, grid, snapshot):
        quality = region_quality(grid, {0, 1}, snapshot)
        assert quality.relative_k is None
        assert quality.relative_l is None

    def test_meets_false_when_under(self, grid, snapshot):
        requirement = LevelRequirement(
            k=100, l=2, tolerance=ToleranceSpec(max_segments=10)
        )
        quality = region_quality(grid, {0, 1, 2}, snapshot, requirement)
        assert not quality.meets(requirement)

    def test_empty_region_rejected(self, grid, snapshot):
        with pytest.raises(ValueError):
            region_quality(grid, set(), snapshot)


class TestNestingRatios:
    def test_ratios(self):
        regions = {0: [5], 1: [4, 5], 2: [3, 4, 5, 6]}
        ratios = nesting_ratios(regions)
        assert ratios[0] == pytest.approx(0.5)
        assert ratios[1] == pytest.approx(0.5)

    def test_non_nested_rejected(self):
        with pytest.raises(ValueError):
            nesting_ratios({0: [1], 1: [2, 3]})

    def test_single_level_no_ratios(self):
        assert nesting_ratios({2: [1, 2, 3]}) == {}
