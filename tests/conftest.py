"""Shared fixtures for the ReverseCloak reproduction test suite.

Expensive artifacts (maps, pre-assignments, fleets) are session-scoped —
they are deterministic and immutable, so sharing them across tests is safe
and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    TrafficSimulator,
    grid_network,
)


@pytest.fixture(scope="session")
def grid10():
    """A 10x10 junction grid (180 segments)."""
    return grid_network(10, 10)


@pytest.fixture(scope="session")
def grid6():
    """A 6x6 junction grid (60 segments) for cheaper exhaustive tests."""
    return grid_network(6, 6)


@pytest.fixture(scope="session")
def dense_snapshot(grid10):
    """Two users on every segment of ``grid10`` — k-anonymity is then purely
    a function of region size, which makes step counts predictable."""
    return PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in grid10.segment_ids()}
    )


@pytest.fixture(scope="session")
def traffic_snapshot(grid10):
    """A realistic (uneven) snapshot from the mobility simulator."""
    simulator = TrafficSimulator(grid10, n_cars=400, seed=11)
    simulator.run(3)
    return simulator.snapshot()


@pytest.fixture(scope="session")
def profile3():
    """A three-level profile with growing k and l."""
    return PrivacyProfile.uniform(
        levels=3, base_k=4, k_step=4, base_l=3, l_step=2, max_segments=60
    )


@pytest.fixture(scope="session")
def chain3():
    """A deterministic three-key chain (tests must be reproducible)."""
    return KeyChain.from_passphrases(["alpha", "beta", "gamma"])


@pytest.fixture(scope="session")
def rge_engine(grid10):
    return ReverseCloakEngine(grid10)


@pytest.fixture(scope="session")
def rple_algorithm(grid10):
    """One shared RPLE pre-assignment over ``grid10``."""
    return ReversiblePreassignmentExpansion.for_network(grid10)


@pytest.fixture(scope="session")
def rple_engine(grid10, rple_algorithm):
    return ReverseCloakEngine(grid10, rple_algorithm)
