"""Property test: arbitrary checkpoint/rollback interleavings vs clones.

Hypothesis drives :class:`~repro.core.region_state.RegionState` through
arbitrary interpreted programs of add / remove / checkpoint / rollback
steps; a clone captured at every checkpoint is the oracle a later rollback
must reproduce *exactly* — including the exact fixed-point length
accumulator, the removability answer and the canonical length ordering.
This is the reversal search's safety net: `peel_level` explores thousands
of hypotheses by apply/undo on one shared state, so any drift between a
rolled-back state and a fresh one would silently corrupt reversals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PopulationSnapshot, RegionState, grid_network

NETWORK = grid_network(7, 7)
SEGMENTS = NETWORK.segment_ids()
SNAPSHOT = PopulationSnapshot.from_counts(
    {sid: (sid * 7) % 5 for sid in SEGMENTS}
)

#: Program steps: ("add"/"remove", pick) mutate, ("checkpoint",) pushes,
#: ("rollback", pick) unwinds to a still-live checkpoint.
_STEP = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 10_000)),
    st.tuples(st.just("remove"), st.integers(0, 10_000)),
    st.tuples(st.just("checkpoint")),
    st.tuples(st.just("rollback"), st.integers(0, 10_000)),
)


def _observe(state):
    """Every maintained observable, in comparable form."""
    return (
        frozenset(state.members),
        state.frontier(),
        tuple(sorted(state.frontier_counts().items())),
        state.exact_total_length,
        state.total_length,
        state.population,
        state.segments_by_length(),
        state.bounding_box() if len(state) else None,
        state.removable_members(),
    )


@settings(max_examples=60, deadline=None)
@given(program=st.lists(_STEP, min_size=1, max_size=60))
def test_rollback_matches_clone_oracle(program):
    state = RegionState(NETWORK, snapshot=SNAPSHOT)
    live = set()
    checkpoints = []  # (token, oracle clone)
    for step in program:
        if step[0] == "add":
            candidates = [s for s in SEGMENTS if s not in live]
            if not candidates:
                continue
            sid = candidates[step[1] % len(candidates)]
            state.add(sid)
            live.add(sid)
        elif step[0] == "remove":
            if not live:
                continue
            sid = sorted(live)[step[1] % len(live)]
            state.remove(sid)
            live.discard(sid)
        elif step[0] == "checkpoint":
            checkpoints.append((state.checkpoint(), state.clone()))
        else:  # rollback
            if not checkpoints:
                continue
            index = step[1] % len(checkpoints)
            token, oracle = checkpoints[index]
            del checkpoints[index:]
            state.rollback(token)
            assert _observe(state) == _observe(oracle)
            live = set(oracle.members)
    # Final unwind: every remaining checkpoint must still restore exactly.
    while checkpoints:
        token, oracle = checkpoints.pop()
        state.rollback(token)
        assert _observe(state) == _observe(oracle)
