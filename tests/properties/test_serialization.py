"""Property-based serialization round trips.

Every artifact that crosses a process boundary — maps, envelopes, traces,
key files — must survive serialization exactly: the reversal protocol
depends on bit-identical state on both sides.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CloakEnvelope,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    grid_network,
    random_delaunay_network,
)
from repro.core.envelope import network_digest
from repro.roadnet import network_from_dict, network_to_dict

GRID = grid_network(8, 8)
SNAPSHOT = PopulationSnapshot.from_counts(
    {segment_id: 2 for segment_id in GRID.segment_ids()}
)
ENGINE = ReverseCloakEngine(GRID)


class TestNetworkRoundTrips:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        extra=st.integers(min_value=0, max_value=30),
    )
    def test_random_networks_round_trip_exactly(self, seed, extra):
        network = random_delaunay_network(30, 29 + extra, seed=seed, extent=1500.0)
        restored = network_from_dict(network_to_dict(network))
        assert network_digest(network) == network_digest(restored)
        # adjacency structure identical, not just digests
        for segment_id in network.segment_ids():
            assert network.neighbors(segment_id) == restored.neighbors(segment_id)


class TestEnvelopeRoundTrips:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        user_index=st.integers(min_value=0, max_value=111),
        passphrase=st.text(min_size=1, max_size=10),
        levels=st.integers(min_value=1, max_value=3),
        hints=st.booleans(),
    )
    def test_envelope_json_round_trip_preserves_reversal(
        self, user_index, passphrase, levels, hints
    ):
        profile = PrivacyProfile.uniform(
            levels=levels, base_k=3, k_step=2, base_l=2, l_step=1, max_segments=40
        )
        chain = KeyChain.from_passphrases(
            [f"{passphrase}-{index}" for index in range(levels)]
        )
        user_segment = GRID.segment_ids()[user_index]
        envelope = ENGINE.anonymize(
            user_segment, SNAPSHOT, profile, chain, include_hints=hints
        )
        restored = CloakEnvelope.from_json(envelope.to_json())
        assert restored == envelope
        assert restored.to_json() == envelope.to_json()
        if hints:
            result = ENGINE.deanonymize(restored, chain, target_level=0)
            assert result.region_at(0) == (user_segment,)


class TestKeyChainRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(levels=st.integers(min_value=1, max_value=8))
    def test_hex_round_trip(self, levels):
        chain = KeyChain.generate(levels)
        restored = KeyChain.from_hex_list(chain.to_hex_list())
        for level in range(1, levels + 1):
            assert restored.key_for(level).material == chain.key_for(level).material
            assert (
                restored.key_for(level).fingerprint()
                == chain.key_for(level).fingerprint()
            )
