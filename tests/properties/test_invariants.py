"""Property-based tests of structural invariants (DESIGN.md section 6)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KeyChain, PopulationSnapshot, PrivacyProfile, ReverseCloakEngine
from repro.core import Preassignment, TransitionTable
from repro.core.envelope import seal_anchor, unseal_anchor
from repro.keys import AccessKey
from repro.roadnet import grid_network, random_delaunay_network

GRID = grid_network(8, 8)


class TestTransitionTableInvariants:
    """Invariant 2: table soundness on arbitrary cloak/candidate splits."""

    @settings(max_examples=80, deadline=None)
    @given(
        split=st.integers(min_value=1, max_value=30),
        width=st.integers(min_value=1, max_value=30),
        random_value=st.integers(min_value=0, max_value=2**64),
    )
    def test_forward_result_in_candidates_and_invertible(
        self, split, width, random_value
    ):
        segment_ids = GRID.segment_ids()
        cloak = set(segment_ids[:split])
        candidates = set(segment_ids[split : split + width])
        table = TransitionTable(GRID, cloak, candidates)
        for anchor in sorted(cloak)[:5]:
            selected = table.forward(anchor, random_value)
            assert selected in candidates
            assert anchor in table.backward(selected, random_value)

    @settings(max_examples=50, deadline=None)
    @given(
        split=st.integers(min_value=1, max_value=20),
        extra=st.integers(min_value=0, max_value=20),
        random_value=st.integers(min_value=0, max_value=2**64),
    )
    def test_collision_free_tables_have_unique_backward(
        self, split, extra, random_value
    ):
        segment_ids = GRID.segment_ids()
        cloak = set(segment_ids[:split])
        candidates = set(segment_ids[split : split + split + extra])
        table = TransitionTable(GRID, cloak, candidates)
        assert table.collision_free
        for candidate in sorted(candidates)[:5]:
            assert len(table.backward(candidate, random_value)) <= 1


class TestPreassignmentInvariants:
    """Invariant 3: RPLE pre-assignment symmetry on random maps."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        list_length=st.integers(min_value=2, max_value=10),
    )
    def test_symmetry_on_random_maps(self, seed, list_length):
        network = random_delaunay_network(40, 55, seed=seed, extent=2000.0)
        pre = Preassignment(network, list_length=list_length)
        assert pre.verify_symmetry()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_no_slot_double_assignment(self, seed):
        network = random_delaunay_network(40, 55, seed=seed, extent=2000.0)
        pre = Preassignment(network, list_length=6)
        # A (target, slot) pair maps back to exactly one source.
        seen = {}
        for segment_id in network.segment_ids():
            for slot, target in enumerate(pre.forward_list(segment_id)):
                if target is not None:
                    assert (target, slot) not in seen
                    seen[(target, slot)] = segment_id


class TestSealingInvariants:
    """Invariant 5/6 support: sealing is a keyed bijection."""

    @settings(max_examples=100, deadline=None)
    @given(
        anchor=st.integers(min_value=0, max_value=2**63),
        passphrase=st.text(min_size=1, max_size=16),
        level=st.integers(min_value=1, max_value=9),
    )
    def test_seal_unseal_identity(self, anchor, passphrase, level):
        key = AccessKey.from_passphrase(level, passphrase)
        assert unseal_anchor(key, seal_anchor(key, anchor)) == anchor

    @settings(max_examples=50, deadline=None)
    @given(
        anchor=st.integers(min_value=0, max_value=2**32),
        passphrase=st.text(min_size=1, max_size=16),
    )
    def test_wrong_key_unseal_differs(self, anchor, passphrase):
        key = AccessKey.from_passphrase(1, passphrase)
        other = AccessKey.from_passphrase(1, passphrase + "-x")
        assert unseal_anchor(other, seal_anchor(key, anchor)) != anchor


class TestDeterminismInvariant:
    """Invariant 6: byte-identical envelopes across runs and dict orders."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        user_index=st.integers(min_value=0, max_value=100),
        passphrase=st.text(min_size=1, max_size=8),
    )
    def test_envelope_bytes_stable(self, user_index, passphrase):
        snapshot = PopulationSnapshot.from_counts(
            {segment_id: 2 for segment_id in GRID.segment_ids()}
        )
        profile = PrivacyProfile.uniform(
            levels=2, base_k=3, k_step=2, base_l=2, l_step=1, max_segments=50
        )
        chain = KeyChain.from_passphrases([passphrase, passphrase + "2"])
        user_segment = GRID.segment_ids()[user_index]
        payloads = set()
        for __ in range(3):
            engine = ReverseCloakEngine(GRID)  # fresh engine each time
            envelope = engine.anonymize(user_segment, snapshot, profile, chain)
            payloads.add(envelope.to_json())
        assert len(payloads) == 1
