"""Property-based round trips for the serving wire protocol.

Every wire document must survive ``to_dict -> json -> from_dict``
unchanged — the process-pool backend's byte-identical-serving guarantee
rests on these round trips — and every malformed document must map to the
stable ``malformed_document`` error code rather than a raw ``KeyError`` /
``TypeError`` escaping the parser.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AccessKey,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    grid_network,
)
from repro.core.profile import LevelRequirement, ToleranceSpec
from repro.errors import KeyMismatchError, WireFormatError
from repro.lbs.wire import (
    BatchOutcomeDoc,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
    error_code_for,
    snapshot_from_dict,
    snapshot_to_dict,
)

GRID = grid_network(8, 8)
SNAPSHOT = PopulationSnapshot.from_counts(
    {segment_id: 2 for segment_id in GRID.segment_ids()}
)
ENGINE = ReverseCloakEngine(GRID)


@st.composite
def tolerances(draw):
    max_segments = draw(st.one_of(st.none(), st.integers(4, 500)))
    max_total_length = draw(
        st.one_of(st.none(), st.floats(1.0, 1e6, allow_nan=False))
    )
    max_diagonal = draw(st.one_of(st.none(), st.floats(1.0, 1e6, allow_nan=False)))
    if max_segments is None and max_total_length is None and max_diagonal is None:
        max_segments = draw(st.integers(4, 500))
    return ToleranceSpec(
        max_segments=max_segments,
        max_total_length=max_total_length,
        max_diagonal=max_diagonal,
    )


@st.composite
def profiles(draw):
    levels = draw(st.integers(1, 4))
    tolerance = draw(tolerances())
    # delta_l may never exceed the segment-count bound (profile invariant).
    max_l = tolerance.max_segments or 10**9
    requirements = []
    k = draw(st.integers(1, 20))
    l = draw(st.integers(1, min(4, max_l)))
    for _ in range(levels):
        requirements.append(LevelRequirement(k=k, l=l, tolerance=tolerance))
        k += draw(st.integers(0, 10))
        l = min(l + draw(st.integers(0, 2)), max_l)
    return PrivacyProfile(requirements)


@st.composite
def chains(draw):
    levels = draw(st.integers(1, 4))
    return KeyChain(
        AccessKey(level, draw(st.binary(min_size=8, max_size=48)))
        for level in range(1, levels + 1)
    )


class TestWireDocumentRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(profile=profiles())
    def test_profile_documents(self, profile):
        document = json.loads(json.dumps(profile.to_dict()))
        assert PrivacyProfile.from_dict(document) == profile

    @settings(max_examples=40, deadline=None)
    @given(chain=chains())
    def test_keychain_documents(self, chain):
        document = json.loads(json.dumps(chain.to_dict()))
        assert KeyChain.from_dict(document) == chain

    @settings(max_examples=25, deadline=None)
    @given(
        profile=profiles(),
        chain=chains(),
        user_id=st.integers(0, 2**40),
        segment=st.one_of(st.none(), st.integers(0, 10_000)),
    )
    def test_cloak_request_documents(self, profile, chain, user_id, segment):
        doc = CloakRequestDoc(
            user_id=user_id, profile=profile, chain=chain, user_segment=segment
        )
        assert CloakRequestDoc.from_json(doc.to_json()) == doc

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        user_index=st.integers(0, 111),
        passphrase=st.text(min_size=1, max_size=8),
        levels=st.integers(1, 3),
        target=st.integers(0, 2),
    )
    def test_envelope_and_outcome_documents(
        self, user_index, passphrase, levels, target
    ):
        segment = GRID.segment_ids()[user_index % GRID.segment_count]
        chain = KeyChain.from_passphrases(
            [f"{passphrase}-{level}" for level in range(1, levels + 1)]
        )
        profile = PrivacyProfile.uniform(
            levels=levels, base_k=4, k_step=3, base_l=3, l_step=1, max_segments=50
        )
        envelope = ENGINE.anonymize(segment, SNAPSHOT, profile, chain)
        outcome = OutcomeDoc.from_envelope(envelope)
        restored = OutcomeDoc.from_json(outcome.to_json())
        assert restored.envelope == envelope
        assert restored.envelope.to_json() == envelope.to_json()

        reversal = DeanonymizeRequestDoc(
            envelope=envelope,
            keys=tuple(chain),
            target_level=min(target, levels - 1),
        )
        assert DeanonymizeRequestDoc.from_json(reversal.to_json()) == reversal

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        user_indices=st.lists(
            st.integers(0, 111), min_size=1, max_size=4, unique=True
        ),
        passphrase=st.text(min_size=1, max_size=8),
        modes=st.lists(
            st.sampled_from(["auto", "hint", "search"]), min_size=4, max_size=4
        ),
    )
    def test_batch_documents(self, user_indices, passphrase, modes):
        profile = PrivacyProfile.uniform(
            levels=2, base_k=4, k_step=3, base_l=3, l_step=1, max_segments=50
        )
        items = []
        for index, user_index in enumerate(user_indices):
            segment = GRID.segment_ids()[user_index % GRID.segment_count]
            chain = KeyChain.from_passphrases(
                [f"{passphrase}b{index}-1", f"{passphrase}b{index}-2"]
            )
            envelope = ENGINE.anonymize(segment, SNAPSHOT, profile, chain)
            items.append(
                DeanonymizeRequestDoc(
                    envelope=envelope,
                    keys=tuple(chain),
                    target_level=index % 2,
                    mode=modes[index % len(modes)],
                )
            )
        batch = DeanonymizeBatchDoc(items=tuple(items))
        restored = DeanonymizeBatchDoc.from_json(batch.to_json())
        assert restored == batch
        assert restored.to_json() == batch.to_json()

        # The positional response: mix successes and per-item errors.
        outcomes = []
        for item in items:
            result = ENGINE.deanonymize(
                item.envelope, dict(item.key_map()), item.target_level
            )
            outcomes.append(OutcomeDoc.from_result(result))
        outcomes.append(
            OutcomeDoc.from_exception(KeyMismatchError("wrong key"))
        )
        batch_outcome = BatchOutcomeDoc(outcomes=tuple(outcomes))
        restored_outcome = BatchOutcomeDoc.from_json(batch_outcome.to_json())
        assert restored_outcome == batch_outcome
        assert restored_outcome.to_json() == batch_outcome.to_json()
        assert not restored_outcome.ok  # the error item poisons only `ok`
        assert [o.ok for o in restored_outcome.outcomes] == (
            [True] * len(items) + [False]
        )
        assert isinstance(
            restored_outcome.outcomes[-1].to_exception(), KeyMismatchError
        )

    def test_empty_batches_rejected(self):
        with pytest.raises(WireFormatError):
            DeanonymizeBatchDoc(items=())
        with pytest.raises(WireFormatError):
            BatchOutcomeDoc(outcomes=())

    @settings(max_examples=20, deadline=None)
    @given(
        counts=st.dictionaries(
            st.integers(0, 500), st.integers(0, 9), min_size=1, max_size=40
        ),
        time=st.floats(0, 1e6, allow_nan=False),
    )
    def test_snapshot_documents(self, counts, time):
        snapshot = PopulationSnapshot.from_counts(counts, time=time)
        users_doc = json.loads(json.dumps(snapshot_to_dict(snapshot)))
        counts_doc = json.loads(
            json.dumps(snapshot_to_dict(snapshot, counts_only=True))
        )
        by_users = snapshot_from_dict(users_doc)
        by_counts = snapshot_from_dict(counts_doc)
        assert by_users.users() == snapshot.users()
        assert by_users.counts() == snapshot.counts()
        assert by_counts.counts() == snapshot.counts()
        assert by_users.time == by_counts.time == snapshot.time


def _valid_documents():
    profile = PrivacyProfile.uniform(
        levels=2, base_k=4, k_step=4, base_l=3, l_step=1, max_segments=40
    )
    chain = KeyChain.from_passphrases(["m-1", "m-2"])
    envelope = ENGINE.anonymize(30, SNAPSHOT, profile, chain)
    return [
        pytest.param(
            CloakRequestDoc(user_id=1, profile=profile, chain=chain).to_dict(),
            CloakRequestDoc.from_dict,
            id="cloak_request",
        ),
        pytest.param(
            DeanonymizeRequestDoc(
                envelope=envelope, keys=tuple(chain), target_level=0
            ).to_dict(),
            DeanonymizeRequestDoc.from_dict,
            id="deanonymize_request",
        ),
        pytest.param(
            OutcomeDoc.from_envelope(envelope).to_dict(),
            OutcomeDoc.from_dict,
            id="outcome",
        ),
        pytest.param(
            DeanonymizeBatchDoc(
                items=(
                    DeanonymizeRequestDoc(
                        envelope=envelope, keys=tuple(chain), target_level=0
                    ),
                )
            ).to_dict(),
            DeanonymizeBatchDoc.from_dict,
            id="deanonymize_batch",
        ),
        pytest.param(
            BatchOutcomeDoc(
                outcomes=(OutcomeDoc.from_envelope(envelope),)
            ).to_dict(),
            BatchOutcomeDoc.from_dict,
            id="batch_outcome",
        ),
        pytest.param(
            snapshot_to_dict(SNAPSHOT),
            snapshot_from_dict,
            id="snapshot",
        ),
    ]


class TestMalformedDocuments:
    """One malformed-document property per wire type: any structural damage
    must surface as WireFormatError -> ``malformed_document``, never as a
    stray KeyError/TypeError/ValueError."""

    @pytest.mark.parametrize("document, parser", _valid_documents())
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_structural_damage_maps_to_malformed_document(
        self, document, parser, data
    ):
        damaged = json.loads(json.dumps(document))
        keys = sorted(damaged)
        action = data.draw(
            st.sampled_from(["drop", "retype", "version", "format"])
        )
        if action == "drop":
            damaged.pop(data.draw(st.sampled_from(keys)))
        elif action == "retype":
            damaged[data.draw(st.sampled_from(keys))] = data.draw(
                st.sampled_from([None, "junk", 3.5, ["x"], {"y": 1}])
            )
        elif action == "version":
            damaged["version"] = data.draw(st.sampled_from([0, 99, "one", None]))
        else:
            damaged["format"] = data.draw(
                st.sampled_from(["", "repro.other", None, 7])
            )
        try:
            parsed = parser(damaged)
        except WireFormatError as exc:
            assert error_code_for(exc) == "malformed_document"
        else:
            # Some damage is harmless (e.g. dropping an optional field or
            # replacing a value with an equivalent one) — parsing may
            # succeed, but it must never raise anything un-structured.
            assert parsed is not None
