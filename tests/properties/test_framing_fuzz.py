"""Property-based tests of the length-prefixed frame decoder.

The byte layer is the one component that faces raw, adversarial input
before any schema can help, so its contract is pinned property-style:

* **chunking invariance** — any re-split of a valid frame stream decodes
  to exactly the original payloads, in order (the TCP contract: the
  network may deliver bytes in arbitrary pieces);
* **adversarial input never crashes** — garbage, torn prefixes, and
  oversized declarations either wait for more bytes or raise
  :class:`~repro.errors.WireFormatError`; nothing else escapes, and an
  oversized declaration poisons the stream rather than corrupting later
  frames.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.lbs import FrameDecoder, encode_frame
from repro.lbs.framing import FRAME_HEADER_SIZE

MAX_FRAME = 512

payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=MAX_FRAME), min_size=0, max_size=8
)


def _chunks(data: bytes, cut_points) -> list:
    """Split ``data`` at the given sorted cut offsets (plus the ends)."""
    bounds = sorted({0, len(data), *cut_points})
    return [
        data[start:end] for start, end in zip(bounds, bounds[1:])
    ]


class TestChunkingInvariance:
    @settings(max_examples=150, deadline=None)
    @given(payloads=payloads_strategy, data=st.data())
    def test_any_resplit_decodes_identically(self, payloads, data):
        stream = b"".join(
            encode_frame(payload, MAX_FRAME) for payload in payloads
        )
        cut_points = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(stream)), max_size=12
            )
        )
        decoder = FrameDecoder(max_frame_bytes=MAX_FRAME)
        decoded = []
        for chunk in _chunks(stream, cut_points):
            decoded.extend(decoder.feed(chunk))
        assert decoded == payloads
        assert not decoder.mid_frame
        assert decoder.buffered_bytes == 0

    @settings(max_examples=50, deadline=None)
    @given(payloads=payloads_strategy)
    def test_byte_at_a_time_matches_single_feed(self, payloads):
        stream = b"".join(
            encode_frame(payload, MAX_FRAME) for payload in payloads
        )
        whole = FrameDecoder(max_frame_bytes=MAX_FRAME).feed(stream)
        trickle = FrameDecoder(max_frame_bytes=MAX_FRAME)
        dribbled = []
        for index in range(len(stream)):
            dribbled.extend(trickle.feed(stream[index : index + 1]))
        assert dribbled == whole == payloads


class TestAdversarialInput:
    @settings(max_examples=200, deadline=None)
    @given(garbage=st.binary(min_size=0, max_size=64))
    def test_garbage_waits_or_raises_wire_format_error(self, garbage):
        decoder = FrameDecoder(max_frame_bytes=MAX_FRAME)
        try:
            frames = decoder.feed(garbage)
        except WireFormatError:
            assert decoder.poisoned
            return
        # No error means the bytes parsed as (partial) frames under the
        # limit; whatever was delivered must be accounted for exactly.
        consumed = sum(
            FRAME_HEADER_SIZE + len(frame) for frame in frames
        )
        assert consumed + decoder.buffered_bytes == len(garbage)

    @settings(max_examples=100, deadline=None)
    @given(
        declared=st.integers(min_value=MAX_FRAME + 1, max_value=0xFFFFFFFF),
        preceding=st.binary(min_size=0, max_size=32),
    )
    def test_oversized_declaration_raises_and_poisons(
        self, declared, preceding
    ):
        decoder = FrameDecoder(max_frame_bytes=MAX_FRAME)
        stream = encode_frame(preceding, MAX_FRAME) + struct.pack(
            ">I", declared
        )
        with pytest.raises(WireFormatError):
            decoder.feed(stream)
        assert decoder.poisoned
        with pytest.raises(WireFormatError, match="poisoned"):
            decoder.feed(encode_frame(b"later", MAX_FRAME))

    @settings(max_examples=100, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=MAX_FRAME),
        keep=st.data(),
    )
    def test_torn_frame_stays_pending_never_delivers(self, payload, keep):
        frame = encode_frame(payload, MAX_FRAME)
        cut = keep.draw(
            st.integers(min_value=1, max_value=len(frame) - 1)
        )
        decoder = FrameDecoder(max_frame_bytes=MAX_FRAME)
        assert decoder.feed(frame[:cut]) == []
        assert decoder.mid_frame
        # Completing the frame later delivers it intact: a torn frame is
        # pending, not lost.
        assert decoder.feed(frame[cut:]) == [payload]
        assert not decoder.mid_frame
