"""Property-based tests of the headline invariant: reversibility.

For ANY map, population, profile, key material and algorithm,
``deanonymize(anonymize(x))`` must restore the exact region of every lower
level and the user's segment (DESIGN.md invariant 1). Hypothesis explores
the space; failures shrink to minimal counterexamples.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversibleGlobalExpansion,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.core import LevelRequirement, ToleranceSpec

# Maps are cached at module scope; hypothesis draws everything else.
GRID = grid_network(9, 9)
RPLE_ALGO = ReversiblePreassignmentExpansion.for_network(GRID)
RGE_ALGO = ReversibleGlobalExpansion()


def snapshot_strategy():
    """Populations: every segment holds 0-4 users, drawn per segment."""
    return st.builds(
        PopulationSnapshot.from_counts,
        st.fixed_dictionaries(
            {},
            optional={
                segment_id: st.integers(min_value=0, max_value=4)
                for segment_id in GRID.segment_ids()[:60]
            },
        ),
    )


profile_strategy = st.builds(
    PrivacyProfile.uniform,
    levels=st.integers(min_value=1, max_value=4),
    base_k=st.integers(min_value=1, max_value=8),
    k_step=st.integers(min_value=0, max_value=6),
    base_l=st.integers(min_value=1, max_value=5),
    l_step=st.integers(min_value=0, max_value=3),
    max_segments=st.integers(min_value=40, max_value=90),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    user_index=st.integers(min_value=0, max_value=143),
    profile=profile_strategy,
    passphrase=st.text(min_size=1, max_size=12),
    algorithm_name=st.sampled_from(["rge", "rple"]),
    base_count=st.integers(min_value=1, max_value=3),
)
def test_full_round_trip_restores_every_level(
    user_index, profile, passphrase, algorithm_name, base_count
):
    """anonymize -> deanonymize restores every level exactly (hint mode)."""
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: base_count for segment_id in GRID.segment_ids()}
    )
    user_segment = GRID.segment_ids()[user_index]
    chain = KeyChain.from_passphrases(
        [f"{passphrase}-{level}" for level in range(profile.level_count)]
    )
    algorithm = RGE_ALGO if algorithm_name == "rge" else RPLE_ALGO
    engine = ReverseCloakEngine(GRID, algorithm)
    envelope = engine.anonymize(user_segment, snapshot, profile, chain)
    result = engine.deanonymize(envelope, chain, target_level=0)

    # L0 is the exact user segment.
    assert result.region_at(0) == (user_segment,)
    # Every level satisfies its requirement and nests in the next.
    for level in range(1, profile.level_count + 1):
        requirement = profile.requirement(level)
        region = set(result.regions[level])
        assert len(region) >= requirement.l
        assert snapshot.count_in_region(region) >= requirement.k
        assert requirement.tolerance.fits(GRID, region)
        assert GRID.is_connected_region(region)
        if level < profile.level_count:
            assert region <= set(result.regions[level + 1])
    # The outermost recovered region is the published one.
    assert result.regions[profile.level_count] == envelope.region


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    user_index=st.integers(min_value=0, max_value=143),
    passphrase=st.text(min_size=1, max_size=10),
    algorithm_name=st.sampled_from(["rge", "rple"]),
    target=st.integers(min_value=0, max_value=2),
)
def test_partial_grants_reach_exactly_their_level(
    user_index, passphrase, algorithm_name, target
):
    """Holding keys j+1..top recovers levels j..top and nothing deeper."""
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in GRID.segment_ids()}
    )
    profile = PrivacyProfile.uniform(
        levels=3, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=70
    )
    user_segment = GRID.segment_ids()[user_index]
    chain = KeyChain.from_passphrases([f"{passphrase}{i}" for i in range(3)])
    algorithm = RGE_ALGO if algorithm_name == "rge" else RPLE_ALGO
    engine = ReverseCloakEngine(GRID, algorithm)
    envelope = engine.anonymize(user_segment, snapshot, profile, chain)

    granted = {key.level: key for key in chain.suffix(target + 1)}
    result = engine.deanonymize(envelope, granted, target_level=target)
    assert min(result.regions) == target
    if target == 0:
        assert result.region_at(0) == (user_segment,)

    # Full-chain reference: the partial result agrees level-by-level.
    reference = engine.deanonymize(envelope, chain, target_level=0)
    for level in result.regions:
        assert result.regions[level] == reference.regions[level]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    user_index=st.integers(min_value=0, max_value=143),
    passphrase=st.text(min_size=1, max_size=8),
    algorithm_name=st.sampled_from(["rge", "rple"]),
)
def test_search_mode_never_returns_a_wrong_region(
    user_index, passphrase, algorithm_name
):
    """Search-mode reversal either recovers the truth or raises
    CollisionError — it never silently returns a wrong region."""
    from repro.errors import CollisionError

    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in GRID.segment_ids()}
    )
    profile = PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )
    user_segment = GRID.segment_ids()[user_index]
    chain = KeyChain.from_passphrases([f"{passphrase}{i}" for i in range(2)])
    algorithm = RGE_ALGO if algorithm_name == "rge" else RPLE_ALGO
    engine = ReverseCloakEngine(GRID, algorithm)
    envelope = engine.anonymize(
        user_segment, snapshot, profile, chain, include_hints=False
    )
    try:
        result = engine.deanonymize(envelope, chain, target_level=0, mode="search")
    except CollisionError:
        return  # ambiguity detected and reported: acceptable
    assert result.region_at(0) == (user_segment,)
