"""Property-based tamper detection: no mutation of an envelope may yield a
silently wrong reversal (DESIGN.md invariant 5, strengthened).

Hypothesis mutates random fields of a valid envelope; the de-anonymizer
must either raise a :class:`~repro.errors.ReverseCloakError` or — when the
mutation happens to be semantically inert (e.g. rewriting a field to its
current value) — return exactly the true regions.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CloakEnvelope,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    grid_network,
)
from repro.errors import ReverseCloakError

NETWORK = grid_network(9, 9)
SNAPSHOT = PopulationSnapshot.from_counts(
    {segment_id: 2 for segment_id in NETWORK.segment_ids()}
)
PROFILE = PrivacyProfile.uniform(
    levels=2, base_k=4, k_step=3, base_l=3, l_step=1, max_segments=50
)
CHAIN = KeyChain.from_passphrases(["tamper-a", "tamper-b"])
ENGINE = ReverseCloakEngine(NETWORK)
ENVELOPE = ENGINE.anonymize(60, SNAPSHOT, PROFILE, CHAIN)
TRUTH = ENGINE.deanonymize(ENVELOPE, CHAIN, target_level=0).regions


def _mutate(document: dict, path: str, value) -> dict:
    """Apply one mutation to a (deep-copied) envelope document."""
    import copy

    mutated = copy.deepcopy(document)
    level_index = int(path.split(":")[1]) % len(mutated["levels"])
    field = path.split(":")[0]
    record = mutated["levels"][level_index]
    if field == "steps":
        record["steps"] = max(0, record["steps"] + value)
        # keep witness arity consistent so construction succeeds and the
        # MAC (not the arity check) must do the detection
        while len(record["witnesses"]) < record["steps"]:
            record["witnesses"].append(abs(value) % 256)
        record["witnesses"] = record["witnesses"][: record["steps"]]
    elif field == "sealed_anchor":
        record["sealed_anchor"] = (record["sealed_anchor"] or 0) ^ (value or 1)
    elif field == "sealed_start":
        record["sealed_start"] = (record["sealed_start"] or 0) ^ (value or 1)
    elif field == "witness":
        if record["witnesses"]:
            index = abs(value) % len(record["witnesses"])
            record["witnesses"][index] ^= 0xA5
    elif field == "digest":
        record["digest"] = record["digest"][::-1]
    elif field == "mac":
        record["mac"] = record["mac"][::-1]
    elif field == "region_add":
        extra = abs(value) % NETWORK.segment_count
        if extra not in mutated["region"]:
            mutated["region"] = sorted(mutated["region"] + [extra])
    elif field == "region_drop":
        if len(mutated["region"]) > 1:
            index = abs(value) % len(mutated["region"])
            mutated["region"] = (
                mutated["region"][:index] + mutated["region"][index + 1 :]
            )
    return mutated


FIELDS = (
    "steps",
    "sealed_anchor",
    "sealed_start",
    "witness",
    "digest",
    "mac",
    "region_add",
    "region_drop",
)


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    field=st.sampled_from(FIELDS),
    level_index=st.integers(min_value=0, max_value=1),
    value=st.integers(min_value=-3, max_value=1 << 20),
)
def test_any_tampering_is_detected_or_inert(field, level_index, value):
    document = ENVELOPE.to_dict()
    mutated = _mutate(document, f"{field}:{level_index}", value)
    if mutated == document:
        return  # the mutation was an identity; nothing to assert
    try:
        tampered = CloakEnvelope.from_dict(mutated)
    except ReverseCloakError:
        return  # rejected at construction: detected
    try:
        result = ENGINE.deanonymize(tampered, CHAIN, target_level=0)
    except ReverseCloakError:
        return  # rejected during reversal: detected
    # Reversal succeeded: it must have produced exactly the truth (the
    # mutation was semantically inert, e.g. XOR with 0).
    assert result.regions == TRUTH
