"""Equivalence tests for the batched PRF plane (``LevelDraws`` /
``batched_prf``).

The batched plane must be invisible in every output: the same keyed values,
the same envelopes byte for byte, the same reversals — exactly the contract
``incremental=False`` already pins for the region state.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.core.algorithm import MAX_ATTEMPT, LevelDraws, keyed_draw
from repro.errors import CloakingError
from repro.keys import AccessKey


class TestLevelDraws:
    def test_matches_keyed_draw_sequential(self):
        key = AccessKey.from_passphrase(2, "draws-seq")
        draws = LevelDraws(key)
        for step in range(1, 120):
            assert draws.draw(step) == keyed_draw(key, step)

    def test_matches_keyed_draw_with_redraws(self):
        key = AccessKey.from_passphrase(1, "draws-redraw")
        draws = LevelDraws(key)
        for step in (1, 3, 7):
            for attempt in range(10):
                assert draws.draw(step, attempt) == keyed_draw(key, step, attempt)

    def test_random_access_and_descending_steps(self):
        # The backward pass requests steps high-to-low; the buffer must
        # serve any access pattern.
        key = AccessKey.from_passphrase(1, "draws-desc")
        draws = LevelDraws(key, lookahead=50)
        for step in range(50, 0, -1):
            assert draws.draw(step) == keyed_draw(key, step)

    def test_memoizes(self):
        key = AccessKey.from_passphrase(1, "draws-memo")
        draws = LevelDraws(key)
        assert draws.draw(5, 2) == draws.draw(5, 2)
        assert draws.level == 1

    def test_validation_parity_with_keyed_draw(self):
        key = AccessKey.from_passphrase(1, "draws-valid")
        draws = LevelDraws(key)
        with pytest.raises(CloakingError):
            draws.draw(0)
        with pytest.raises(CloakingError):
            draws.draw(1, -1)
        with pytest.raises(CloakingError):
            draws.draw(1, MAX_ATTEMPT)

    @settings(deadline=None, max_examples=40)
    @given(
        passphrase=st.text(min_size=1, max_size=12),
        level=st.integers(min_value=1, max_value=5),
        accesses=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=600),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=60,
        ),
    )
    def test_property_random_patterns(self, passphrase, level, accesses):
        # Property form of the tentpole equivalence: over random keys,
        # levels and access patterns, the batched plane serves exactly the
        # per-call values.
        key = AccessKey.from_passphrase(level, passphrase)
        draws = LevelDraws(key)
        for step, attempt in accesses:
            assert draws.draw(step, attempt) == keyed_draw(key, step, attempt)


@pytest.fixture(scope="module")
def batch_grid():
    return grid_network(8, 8)


@pytest.fixture(scope="module")
def batch_snapshot(batch_grid):
    return PopulationSnapshot.from_counts(
        {sid: 1 for sid in batch_grid.segment_ids()}
    )


@pytest.fixture(scope="module")
def batch_profile():
    return PrivacyProfile.uniform(
        levels=2, base_k=6, k_step=6, base_l=3, l_step=1, max_segments=40
    )


GOLDEN_ENVELOPE_SHA256 = {
    # sha256(envelope.to_json()) for the fixed request below, captured
    # before the batched plane landed — pins byte-identity to the seed era.
    "rge": "bbe0ef8fd733452625404dc26a3be4352b335154bcff8b2e1b1f6e35deff8a7b",
    "rple": "fdebdcd77c7b7e9748906a7ed0d821c383535ad4d5b5e1de0f9f98f0790a45fa",
}


class TestEngineEquivalence:
    @pytest.mark.parametrize("algo_name", ["rge", "rple"])
    @pytest.mark.parametrize("include_hints", [True, False])
    def test_envelopes_byte_identical(
        self, batch_grid, batch_snapshot, batch_profile, algo_name, include_hints
    ):
        algorithm = (
            None
            if algo_name == "rge"
            else ReversiblePreassignmentExpansion.for_network(batch_grid)
        )
        chain = KeyChain.from_passphrases(["golden-1", "golden-2"])
        batched = ReverseCloakEngine(batch_grid, algorithm)
        per_call = ReverseCloakEngine(batch_grid, algorithm, batched_prf=False)
        a = batched.anonymize(
            60, batch_snapshot, batch_profile, chain, include_hints=include_hints
        )
        b = per_call.anonymize(
            60, batch_snapshot, batch_profile, chain, include_hints=include_hints
        )
        assert a == b
        assert a.to_json() == b.to_json()

    @pytest.mark.parametrize("algo_name", ["rge", "rple"])
    def test_envelope_matches_pre_change_golden(
        self, batch_grid, batch_snapshot, batch_profile, algo_name
    ):
        algorithm = (
            None
            if algo_name == "rge"
            else ReversiblePreassignmentExpansion.for_network(batch_grid)
        )
        chain = KeyChain.from_passphrases(["golden-1", "golden-2"])
        envelope = ReverseCloakEngine(batch_grid, algorithm).anonymize(
            60, batch_snapshot, batch_profile, chain
        )
        digest = hashlib.sha256(envelope.to_json().encode()).hexdigest()
        assert digest == GOLDEN_ENVELOPE_SHA256[algo_name]

    @pytest.mark.parametrize("algo_name", ["rge", "rple"])
    @pytest.mark.parametrize("mode", ["hint", "search"])
    def test_reversals_identical(
        self, batch_grid, batch_snapshot, algo_name, mode
    ):
        algorithm = (
            None
            if algo_name == "rge"
            else ReversiblePreassignmentExpansion.for_network(batch_grid)
        )
        chain = KeyChain.from_passphrases(["peel-1"])
        profile = PrivacyProfile.uniform(
            levels=1, base_k=8, k_step=1, base_l=3, l_step=1, max_segments=40
        )
        batched = ReverseCloakEngine(batch_grid, algorithm)
        per_call = ReverseCloakEngine(batch_grid, algorithm, batched_prf=False)
        envelope = batched.anonymize(
            60, batch_snapshot, profile, chain, include_hints=(mode == "hint")
        )
        assert envelope == per_call.anonymize(
            60, batch_snapshot, profile, chain, include_hints=(mode == "hint")
        )
        a = batched.deanonymize(envelope, chain, 0, mode=mode)
        b = per_call.deanonymize(envelope, chain, 0, mode=mode)
        assert a.regions == b.regions
        assert a.removed == b.removed

    def test_flags_compose(self, batch_grid, batch_snapshot, batch_profile):
        # All four (incremental, batched_prf) combinations agree.
        chain = KeyChain.from_passphrases(["combo-1", "combo-2"])
        envelopes = {
            (incremental, batched): ReverseCloakEngine(
                batch_grid, incremental=incremental, batched_prf=batched
            ).anonymize(60, batch_snapshot, batch_profile, chain)
            for incremental in (True, False)
            for batched in (True, False)
        }
        reference = envelopes[(True, True)]
        assert all(env == reference for env in envelopes.values())


class TestLookaheadBounds:
    def test_forged_lookahead_is_capped(self):
        # Envelopes are attacker input: a forged step count must not make
        # the buffer allocate/draw an arbitrarily large first block.
        key = AccessKey.from_passphrase(1, "forged-steps")
        draws = LevelDraws(key, lookahead=10**9)
        assert draws.draw(1) == keyed_draw(key, 1)
        assert len(draws._values) <= LevelDraws._MAX_LOOKAHEAD

    def test_honest_long_level_predraws_fully(self):
        key = AccessKey.from_passphrase(1, "long-level")
        draws = LevelDraws(key, lookahead=500)
        draws.draw(1)
        # The whole known level arrives in the first block (no refills).
        assert len(draws._values) == 500
        for step in (250, 500):
            assert draws.draw(step) == keyed_draw(key, step)
