"""Tests for level peeling and forward replay."""

import pytest

from repro.core import (
    ReversibleGlobalExpansion,
    ToleranceSpec,
    enumerate_bootstraps,
    peel_level,
    replay_level,
)
from repro.errors import CollisionError, DeanonymizationError
from repro.keys import AccessKey
from repro.roadnet import grid_network


WIDE = ToleranceSpec(max_segments=100)


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8)


@pytest.fixture(scope="module")
def key():
    return AccessKey.from_passphrase(1, "peel-test")


@pytest.fixture(scope="module")
def rge():
    return ReversibleGlobalExpansion()


def expand(network, algorithm, key, start, steps):
    """Run a forward expansion, returning (region, additions, final anchor)."""
    region = {start}
    anchor = start
    additions = []
    for step in range(1, steps + 1):
        segment = algorithm.forward_step(network, region, anchor, key, step, WIDE)
        region.add(segment)
        additions.append(segment)
        anchor = segment
    return region, additions, anchor


class TestReplay:
    def test_replay_reproduces_expansion(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 6)
        replayed = replay_level(grid, rge, key, {27}, 27, 6, WIDE)
        assert replayed == tuple(additions)

    def test_replay_fails_from_wrong_anchor(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 6)
        wrong_anchor_replay = replay_level(
            grid, rge, key, {27}, 27, 5, WIDE
        )  # shorter but fine
        assert wrong_anchor_replay == tuple(additions[:5])

    def test_replay_none_on_failure(self, grid, rge, key):
        # replay that cannot expand (tolerance 1 segment) returns None
        tight = ToleranceSpec(max_segments=1)
        assert replay_level(grid, rge, key, {27}, 27, 2, tight) is None


class TestEnumerateBootstraps:
    def test_contains_true_last_added(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 5)
        assert anchor in enumerate_bootstraps(grid, region)

    def test_all_keep_connectivity(self, grid, rge, key):
        region, __, __ = expand(grid, rge, key, 27, 5)
        for bootstrap in enumerate_bootstraps(grid, region):
            assert grid.is_connected_region(region - {bootstrap})


class TestPeelLevel:
    def test_peel_with_true_bootstrap(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 6)
        outcomes = peel_level(grid, rge, key, region, 6, WIDE, (anchor,))
        assert outcomes
        exact = [o for o in outcomes if o.inner_region == frozenset({27})]
        assert len(exact) == 1
        assert exact[0].removed == tuple(reversed(additions))
        assert exact[0].start_anchor == 27

    def test_peel_zero_steps(self, grid, rge, key):
        outcomes = peel_level(grid, rge, key, {1, 2, 3}, 0, WIDE, (2,))
        assert len(outcomes) == 1
        assert outcomes[0].inner_region == frozenset({1, 2, 3})
        assert outcomes[0].removed == ()
        assert outcomes[0].start_anchor == 2

    def test_peel_zero_steps_bootstrap_must_be_inside(self, grid, rge, key):
        assert peel_level(grid, rge, key, {1, 2, 3}, 0, WIDE, (99,)) == []

    def test_steps_exceeding_region_rejected(self, grid, rge, key):
        with pytest.raises(DeanonymizationError):
            peel_level(grid, rge, key, {1, 2, 3}, 3, WIDE, (1,))

    def test_wrong_bootstrap_is_pruned_or_distinct(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 6)
        wrong = [b for b in enumerate_bootstraps(grid, region) if b != anchor]
        outcomes = peel_level(grid, rge, key, region, 6, WIDE, tuple(wrong))
        # a wrong bootstrap can never certify back to the true inner region
        # with the true sequence
        for outcome in outcomes:
            assert outcome.removed[0] != anchor

    def test_validation_filters_inconsistent(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 6)
        all_bootstraps = enumerate_bootstraps(grid, region)
        certified = peel_level(
            grid, rge, key, region, 6, WIDE, all_bootstraps, validate=True
        )
        uncertified = peel_level(
            grid, rge, key, region, 6, WIDE, all_bootstraps, validate=False
        )
        assert len(certified) <= len(uncertified)
        assert any(o.inner_region == frozenset({27}) for o in certified)

    def test_branch_limit_raises_collision(self, grid, rge, key):
        region, __, anchor = expand(grid, rge, key, 27, 10)
        with pytest.raises(CollisionError):
            peel_level(
                grid,
                rge,
                key,
                region,
                10,
                WIDE,
                enumerate_bootstraps(grid, region),
                branch_limit=2,
            )

    def test_first_only_stops_early(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 6)
        outcomes = peel_level(
            grid, rge, key, region, 6, WIDE, (anchor,), first_only=True
        )
        assert len(outcomes) == 1

    def test_added_sequence_property(self, grid, rge, key):
        region, additions, anchor = expand(grid, rge, key, 27, 4)
        outcomes = peel_level(grid, rge, key, region, 4, WIDE, (anchor,))
        truth = [o for o in outcomes if o.inner_region == frozenset({27})]
        assert truth[0].added_sequence == tuple(additions)
