"""Undo-log RegionState and the checkpoint/rollback peel search.

Three layers of assurance, matching the PR's equivalence contract:

* randomized add/remove/checkpoint/rollback sequences where every rollback
  is compared field-for-field against a clone taken at checkpoint time —
  the clone path is the oracle the undo log must reproduce exactly
  (members, frontier counts, *exact* total length, bbox, removability,
  length ordering, population);
* golden-vector pinning: engine de-anonymization (hint and search modes,
  RGE and RPLE) must be byte-identical with the undo-log path on and off,
  and `peel_level` itself must return identical outcome lists;
* the derived small-hinted-peel crossover (`incremental_threshold`) must
  come from the compiled plane and behave identically on either side of
  the boundary.
"""

import random

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    RegionState,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    ToleranceSpec,
    grid_network,
    random_delaunay_network,
)
from repro.core import enumerate_bootstraps, peel_level
from repro.core.reversal import _CROSSOVER_STEP_COST, incremental_threshold
from repro.errors import CloakingError
from repro.keys import AccessKey

GRID = grid_network(8, 8)
DELAUNAY = random_delaunay_network(n_junctions=50, target_segments=100, seed=11)


def assert_states_equal(state, oracle):
    """Every observable of ``state`` equals the clone oracle's, exactly."""
    assert state.members == oracle.members
    assert len(state) == len(oracle)
    assert state.frontier() == oracle.frontier()
    assert state.frontier_counts() == oracle.frontier_counts()
    # Exact equality on purpose: rollback must restore the fixed-point
    # accumulator bit for bit, not approximately.
    assert state.exact_total_length == oracle.exact_total_length
    assert state.total_length == oracle.total_length
    assert state.population == oracle.population
    assert state.segments_by_length() == oracle.segments_by_length()
    if len(state):
        assert state.bounding_box() == oracle.bounding_box()
    assert state.removable_members() == oracle.removable_members()


class TestRandomizedRollback:
    @pytest.mark.parametrize("network", [GRID, DELAUNAY], ids=["grid", "delaunay"])
    def test_random_ops_with_nested_checkpoints(self, network):
        rng = random.Random(411)
        snapshot = PopulationSnapshot.from_counts(
            {sid: rng.randrange(4) for sid in network.segment_ids()}
        )
        all_segments = list(network.segment_ids())
        state = RegionState(network, snapshot=snapshot)
        # Stack of (token, clone-at-checkpoint) pairs — the oracle.
        checkpoints = []
        for _ in range(400):
            action = rng.random()
            if action < 0.25:
                checkpoints.append((state.checkpoint(), state.clone()))
            elif action < 0.40 and checkpoints:
                # Roll back to a random live checkpoint (dropping inner ones,
                # exactly like the peel search unwinding several levels).
                index = rng.randrange(len(checkpoints))
                token, oracle = checkpoints[index]
                del checkpoints[index:]
                state.rollback(token)
                assert_states_equal(state, oracle)
            elif action < 0.65 and state.members:
                state.remove(rng.choice(sorted(state.members)))
            else:
                sid = rng.choice(all_segments)
                if sid not in state.members:
                    state.add(sid)
        # Unwind everything that is left.
        while checkpoints:
            token, oracle = checkpoints.pop()
            state.rollback(token)
            assert_states_equal(state, oracle)

    def test_rollback_restores_cached_answers(self):
        state = RegionState.from_region(GRID, {0, 1, 2, 16})
        token = state.checkpoint()
        removable_before = state.removable_members()
        frontier_before = state.frontier()
        state.remove(2)
        state.add(17)
        state.rollback(token)
        # The restored cached objects are the very ones captured by the
        # trail, not recomputes — and they are still correct.
        assert state.removable_members() == removable_before
        assert state.frontier() == frontier_before

    def test_rollback_without_checkpoint_raises(self):
        state = RegionState.from_region(GRID, {0, 1})
        with pytest.raises(CloakingError):
            state.rollback(0)

    def test_rollback_past_trail_raises(self):
        state = RegionState.from_region(GRID, {0, 1})
        token = state.checkpoint()
        state.remove(1)
        with pytest.raises(CloakingError):
            state.rollback(token + 5)

    def test_rolled_past_token_is_dead(self):
        state = RegionState.from_region(GRID, {0, 1, 2})
        outer = state.checkpoint()
        state.remove(2)
        inner = state.checkpoint()
        state.remove(1)
        state.rollback(outer)
        with pytest.raises(CloakingError):
            state.rollback(inner)

    def test_clone_does_not_inherit_trail(self):
        state = RegionState.from_region(GRID, {0, 1, 2})
        state.checkpoint()
        state.remove(2)
        clone = state.clone()
        assert clone.trail_length == 0
        with pytest.raises(CloakingError):
            clone.rollback(0)
        # ... and mutating the clone never disturbs the original's trail.
        clone.add(2)
        state.rollback(0)
        assert state.members == {0, 1, 2}


def _engines(network, algorithm, **kwargs):
    return (
        ReverseCloakEngine(network, algorithm, undo_log=True, **kwargs),
        ReverseCloakEngine(network, algorithm, undo_log=False, **kwargs),
    )


class TestGoldenEquivalence:
    """Peel outcomes and envelopes byte-identical with the undo log on/off."""

    @pytest.fixture(scope="class")
    def network(self):
        return grid_network(10, 10)

    @pytest.fixture(scope="class")
    def snapshot(self, network):
        return PopulationSnapshot.from_counts(
            {sid: 1 for sid in network.segment_ids()}
        )

    @pytest.mark.parametrize("algo_name", ["rge", "rple"])
    def test_deanonymize_modes_identical(self, network, snapshot, algo_name):
        algorithm = (
            None
            if algo_name == "rge"
            else ReversiblePreassignmentExpansion.for_network(network)
        )
        undo, clone = _engines(network, algorithm)
        chain = KeyChain.from_passphrases(["undo-golden-1", "undo-golden-2"])
        profile = PrivacyProfile.uniform(
            levels=2, base_k=18, k_step=12, base_l=3, l_step=1, max_segments=80
        )
        user = network.segment_ids()[25]
        envelope = undo.anonymize(user, snapshot, profile, chain)
        # The undo log is a reversal-search feature; anonymization is
        # untouched, so both engines publish identical bytes.
        assert envelope == clone.anonymize(user, snapshot, profile, chain)
        for mode in ("hint", "auto"):
            assert undo.deanonymize(envelope, chain, 0, mode=mode) == (
                clone.deanonymize(envelope, chain, 0, mode=mode)
            )
        blind = undo.anonymize(user, snapshot, profile, chain, include_hints=False)
        result_undo = undo.deanonymize(blind, chain, 1, mode="search")
        result_clone = clone.deanonymize(blind, chain, 1, mode="search")
        assert result_undo == result_clone

    def test_peel_level_outcome_lists_identical(self, network):
        key = AccessKey.from_passphrase(1, "undo-peel")
        algorithm = ReversiblePreassignmentExpansion.for_network(network)
        tolerance = ToleranceSpec(max_segments=60)
        region = {44}
        anchor = 44
        for step in range(1, 13):
            segment = algorithm.forward_step(
                network, region, anchor, key, step, tolerance
            )
            region.add(segment)
            anchor = segment
        bootstraps = enumerate_bootstraps(network, region)
        outcomes_undo = peel_level(
            network, algorithm, key, region, 12, tolerance, bootstraps,
            undo_log=True,
        )
        outcomes_clone = peel_level(
            network, algorithm, key, region, 12, tolerance, bootstraps,
            undo_log=False,
        )
        assert outcomes_undo == outcomes_clone
        assert any(o.inner_region == frozenset({44}) for o in outcomes_undo)


class TestDerivedThreshold:
    def test_threshold_comes_from_compiled_plane(self):
        for network in (GRID, DELAUNAY):
            expected = max(
                8,
                int(_CROSSOVER_STEP_COST / max(network.compiled().avg_degree, 1.0)),
            )
            assert incremental_threshold(network) == expected

    def test_denser_maps_cross_over_sooner(self):
        # Mean degree orders the crossover: the denser map needs fewer
        # members before maintained state beats from-scratch recomputes.
        sparse = grid_network(4, 4)
        dense = grid_network(30, 30)
        assert sparse.compiled().avg_degree < dense.compiled().avg_degree
        assert incremental_threshold(sparse) >= incremental_threshold(dense)

    def test_hinted_peel_identical_across_boundary(self):
        """Regression at the crossover: hinted de-anonymization must agree
        between the incremental and from-scratch paths for region sizes
        straddling the derived threshold exactly."""
        network = grid_network(12, 12)
        threshold = incremental_threshold(network)
        snapshot = PopulationSnapshot.from_counts(
            {sid: 1 for sid in network.segment_ids()}
        )
        chain = KeyChain.from_passphrases(["boundary-key"])
        user = network.segment_ids()[50]
        for target in (threshold - 1, threshold, threshold + 1):
            profile = PrivacyProfile.uniform(
                levels=1, base_k=target, k_step=1, base_l=3, l_step=1,
                max_segments=2 * target + 4,
            )
            fast = ReverseCloakEngine(network)
            slow = ReverseCloakEngine(network, incremental=False)
            envelope = fast.anonymize(user, snapshot, profile, chain)
            assert envelope == slow.anonymize(user, snapshot, profile, chain)
            assert fast.deanonymize(envelope, chain, 0, mode="hint") == (
                slow.deanonymize(envelope, chain, 0, mode="hint")
            )
