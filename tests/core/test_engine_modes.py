"""Tests for engine configuration modes (validation off, branch limits,
mixed-density populations)."""

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.errors import CollisionError


class TestValidationOffFastPath:
    def test_fast_engine_still_exact(self, grid10, dense_snapshot, profile3, chain3):
        fast = ReverseCloakEngine(grid10, validate_reversals=False)
        envelope = fast.anonymize(90, dense_snapshot, profile3, chain3)
        result = fast.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)

    def test_fast_engine_agrees_with_validating(self, grid10, dense_snapshot, profile3, chain3):
        slow = ReverseCloakEngine(grid10, validate_reversals=True)
        fast = ReverseCloakEngine(grid10, validate_reversals=False)
        envelope = slow.anonymize(90, dense_snapshot, profile3, chain3)
        assert (
            slow.deanonymize(envelope, chain3, target_level=0).regions
            == fast.deanonymize(envelope, chain3, target_level=0).regions
        )

    def test_fast_rple_engine(self, grid10, rple_algorithm, dense_snapshot, profile3, chain3):
        fast = ReverseCloakEngine(
            grid10, rple_algorithm, validate_reversals=False
        )
        envelope = fast.anonymize(90, dense_snapshot, profile3, chain3)
        result = fast.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)


class TestBranchLimit:
    def test_tiny_branch_limit_raises_collision_in_search(
        self, grid10, dense_snapshot, chain3
    ):
        profile = PrivacyProfile.uniform(
            levels=3, base_k=8, k_step=4, base_l=4, l_step=1, max_segments=60
        )
        engine = ReverseCloakEngine(grid10, branch_limit=3)
        envelope = engine.anonymize(
            90, dense_snapshot, profile, chain3, include_hints=False
        )
        with pytest.raises(CollisionError):
            engine.deanonymize(envelope, chain3, target_level=0, mode="search")

    def test_hint_mode_survives_small_limits(self, grid10, dense_snapshot, profile3, chain3):
        # Hint mode with witnesses explores ~steps states; a modest limit
        # suffices where search mode would blow through it.
        engine = ReverseCloakEngine(grid10, branch_limit=200)
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)


class TestUnevenPopulations:
    def test_population_hotspot(self, grid10, chain3):
        """A hotspot snapshot: most users on few segments — regions stay
        small near the hotspot, grow elsewhere."""
        counts = {segment_id: 0 for segment_id in grid10.segment_ids()}
        for segment_id in list(grid10.segment_ids())[:6]:
            counts[segment_id] = 20
        for segment_id in list(grid10.segment_ids())[6:]:
            counts[segment_id] = 1
        snapshot = PopulationSnapshot.from_counts(counts)
        profile = PrivacyProfile.uniform(
            levels=2, base_k=10, k_step=5, base_l=2, l_step=1, max_segments=80
        )
        engine = ReverseCloakEngine(grid10)
        hot_chain = KeyChain.from_passphrases(["h1", "h2"])
        hot = engine.anonymize(0, snapshot, profile, hot_chain)
        cold_chain = KeyChain.from_passphrases(["c1", "c2"])
        cold = engine.anonymize(150, snapshot, profile, cold_chain)
        assert len(hot.region) < len(cold.region)
        # both reverse exactly
        assert engine.deanonymize(
            cold, cold_chain, target_level=0
        ).region_at(0) == (150,)

    def test_empty_segments_are_usable(self, grid10, chain3):
        """Segments with zero users may join regions (they add l-diversity
        but no k); reversal is unaffected."""
        counts = {segment_id: 0 for segment_id in grid10.segment_ids()}
        counts[90] = 1
        counts[91] = 5
        counts[102] = 5
        snapshot = PopulationSnapshot.from_counts(counts)
        profile = PrivacyProfile.uniform(
            levels=2, base_k=3, k_step=2, base_l=3, l_step=1, max_segments=60
        )
        chain = KeyChain.from_passphrases(["e1", "e2"])
        engine = ReverseCloakEngine(grid10)
        envelope = engine.anonymize(90, snapshot, profile, chain)
        result = engine.deanonymize(envelope, chain, target_level=0)
        assert result.region_at(0) == (90,)


class TestZeroStepEdgeCases:
    def test_all_levels_zero_steps(self, grid10, chain3):
        """A profile already satisfied by the user's own segment: every
        level adds nothing, reversal is trivial but well-formed."""
        snapshot = PopulationSnapshot.from_counts(
            {segment_id: 50 for segment_id in grid10.segment_ids()}
        )
        profile = PrivacyProfile.uniform(
            levels=3, base_k=2, k_step=0, base_l=1, l_step=0, max_segments=10
        )
        engine = ReverseCloakEngine(grid10)
        envelope = engine.anonymize(90, snapshot, profile, chain3)
        assert [record.steps for record in envelope.levels] == [0, 0, 0]
        assert envelope.region == (90,)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)
        for level in (0, 1, 2, 3):
            assert result.regions[level] == (90,)
