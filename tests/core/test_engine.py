"""End-to-end tests of the multi-level engine (RGE and RPLE)."""

import pytest

from repro import (
    CloakEnvelope,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    algorithm_for_envelope,
)
from repro.core import region_digest


@pytest.fixture(params=["rge", "rple"])
def engine(request, rge_engine, rple_engine):
    """Parametrizes every test over both algorithms."""
    return rge_engine if request.param == "rge" else rple_engine


class TestAnonymize:
    def test_envelope_shape(self, engine, dense_snapshot, profile3, chain3):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        assert envelope.top_level == 3
        assert envelope.algorithm == engine.algorithm.name
        assert 90 in envelope.region
        assert envelope.region == tuple(sorted(envelope.region))

    def test_requirements_satisfied_per_level(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        for level in range(1, 4):
            requirement = profile3.requirement(level)
            region = set(result.regions[level])
            assert len(region) >= requirement.l
            assert dense_snapshot.count_in_region(region) >= requirement.k
            assert requirement.tolerance.fits(engine.network, region)

    def test_regions_nest(self, engine, dense_snapshot, profile3, chain3):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        for level in range(0, 3):
            assert set(result.regions[level]) <= set(result.regions[level + 1])

    def test_regions_connected(self, engine, dense_snapshot, profile3, chain3):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        for region in result.regions.values():
            assert engine.network.is_connected_region(set(region))

    def test_deterministic_envelope(self, engine, dense_snapshot, profile3, chain3):
        a = engine.anonymize(90, dense_snapshot, profile3, chain3)
        b = engine.anonymize(90, dense_snapshot, profile3, chain3)
        assert a.to_json() == b.to_json()

    def test_different_keys_different_region(
        self, engine, dense_snapshot, profile3
    ):
        chain_a = KeyChain.from_passphrases(["1a", "2a", "3a"])
        chain_b = KeyChain.from_passphrases(["1b", "2b", "3b"])
        env_a = engine.anonymize(90, dense_snapshot, profile3, chain_a)
        env_b = engine.anonymize(90, dense_snapshot, profile3, chain_b)
        assert env_a.region != env_b.region

    def test_zero_step_level(self, engine, grid10, chain3):
        """A level already satisfied by the inner region adds nothing."""
        snapshot = PopulationSnapshot.from_counts(
            {sid: 5 for sid in grid10.segment_ids()}
        )
        profile = PrivacyProfile.uniform(
            levels=3, base_k=5, k_step=0, base_l=2, l_step=0, max_segments=60
        )
        envelope = engine.anonymize(90, snapshot, profile, chain3)
        assert envelope.level_record(2).steps == 0
        assert envelope.level_record(3).steps == 0
        result = engine.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)

    def test_chain_profile_mismatch(self, engine, dense_snapshot, profile3):
        from repro.errors import ProfileError

        with pytest.raises(ProfileError):
            engine.anonymize(
                90, dense_snapshot, profile3, KeyChain.from_passphrases(["only-one"])
            )

    def test_level_digests_follow_regions(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        for level in range(1, 4):
            assert envelope.level_record(level).digest == region_digest(
                set(result.regions[level])
            )


class TestDeanonymize:
    def test_full_round_trip(self, engine, dense_snapshot, profile3, chain3):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)

    def test_partial_grant_reaches_partial_level(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        partial = {key.level: key for key in chain3.suffix(3)}  # only Key3
        result = engine.deanonymize(envelope, partial, target_level=2)
        assert set(result.regions[2]) < set(envelope.region)
        assert 2 in result.regions and 3 in result.regions
        assert 0 not in result.regions

    def test_each_intermediate_level_available(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        assert sorted(result.regions) == [0, 1, 2, 3]
        assert sorted(result.removed) == [1, 2, 3]

    def test_removed_segments_partition_region(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        reassembled = {90}
        for level in (1, 2, 3):
            reassembled |= set(result.removed[level])
        assert reassembled == set(envelope.region)

    def test_search_mode_without_hints(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelope = engine.anonymize(
            90, dense_snapshot, profile3, chain3, include_hints=False
        )
        from repro.errors import CollisionError

        try:
            result = engine.deanonymize(envelope, chain3, target_level=0, mode="search")
        except CollisionError:
            pytest.skip("genuine search ambiguity for this keyset (detected)")
        assert result.region_at(0) == (90,)

    def test_hint_mode_requires_hints(self, engine, dense_snapshot, profile3, chain3):
        from repro.errors import DeanonymizationError

        envelope = engine.anonymize(
            90, dense_snapshot, profile3, chain3, include_hints=False
        )
        with pytest.raises(DeanonymizationError):
            engine.deanonymize(envelope, chain3, target_level=0, mode="hint")

    def test_level_regions_match_anonymizer_view(
        self, engine, dense_snapshot, profile3, chain3
    ):
        """Search and hint modes agree on every recovered region."""
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        hint_result = engine.deanonymize(envelope, chain3, target_level=0, mode="hint")
        auto_result = engine.deanonymize(envelope, chain3, target_level=0, mode="auto")
        assert hint_result.regions == auto_result.regions

    def test_result_region_at_unknown_level(self, engine, dense_snapshot, profile3, chain3):
        from repro.errors import DeanonymizationError

        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=2)
        with pytest.raises(DeanonymizationError):
            result.region_at(0)

    def test_envelope_serialization_round_trip_reversal(
        self, engine, dense_snapshot, profile3, chain3
    ):
        """A JSON-round-tripped envelope reverses identically."""
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        restored = CloakEnvelope.from_json(envelope.to_json())
        result = engine.deanonymize(restored, chain3, target_level=0)
        assert result.region_at(0) == (90,)

    def test_algorithm_for_envelope_reconstructs(self, engine, dense_snapshot, profile3, chain3):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        algorithm = algorithm_for_envelope(engine.network, envelope)
        assert algorithm.name == engine.algorithm.name
        requester_engine = ReverseCloakEngine(engine.network, algorithm)
        result = requester_engine.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (90,)

    def test_for_envelope_classmethod(self, engine, dense_snapshot, profile3, chain3):
        envelope = engine.anonymize(90, dense_snapshot, profile3, chain3)
        requester_engine = ReverseCloakEngine.for_envelope(engine.network, envelope)
        result = requester_engine.deanonymize(envelope, chain3, target_level=1)
        assert set(result.regions[1]) <= set(envelope.region)


class TestTrafficSnapshots:
    """Round trips on realistic (uneven) populations."""

    def test_round_trip_on_traffic(self, engine, traffic_snapshot, chain3):
        profile = PrivacyProfile.uniform(
            levels=3, base_k=3, k_step=3, base_l=3, l_step=2, max_segments=80
        )
        user_segment = traffic_snapshot.occupied_segments()[5]
        envelope = engine.anonymize(user_segment, traffic_snapshot, profile, chain3)
        result = engine.deanonymize(envelope, chain3, target_level=0)
        assert result.region_at(0) == (user_segment,)

    def test_k_counts_on_traffic(self, engine, traffic_snapshot, chain3):
        profile = PrivacyProfile.uniform(
            levels=2, base_k=6, k_step=6, base_l=2, l_step=1, max_segments=80
        )
        user_segment = traffic_snapshot.occupied_segments()[0]
        chain = KeyChain.from_passphrases(["t1", "t2"])
        envelope = engine.anonymize(user_segment, traffic_snapshot, profile, chain)
        assert traffic_snapshot.count_in_region(set(envelope.region)) >= 12


class TestDeanonymizeBatch:
    """The engine-level batch entry point: element-wise byte-identical to
    per-item deanonymize, with keyed-draw buffers shared across envelopes
    that were produced under the same level keys."""

    def _envelopes(self, engine, dense_snapshot, profile3, chain3, segments):
        return [
            engine.anonymize(segment, dense_snapshot, profile3, chain3)
            for segment in segments
        ]

    def test_matches_per_item_deanonymize(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelopes = self._envelopes(
            engine, dense_snapshot, profile3, chain3, (90, 95, 100)
        )
        items = [
            (envelope, chain3, target)
            for envelope, target in zip(envelopes, (0, 1, 2))
        ]
        results = engine.deanonymize_batch(items)
        expected = [
            engine.deanonymize(envelope, chain3, target)
            for envelope, _keys, target in items
        ]
        assert [(r.target_level, r.regions, r.removed) for r in results] == [
            (e.target_level, e.regions, e.removed) for e in expected
        ]

    def test_shared_chain_pools_draw_buffers(
        self, engine, dense_snapshot, profile3, chain3
    ):
        from repro.core.reversal import DrawsCache

        envelopes = self._envelopes(
            engine, dense_snapshot, profile3, chain3, (90, 95, 100, 105)
        )
        cache = DrawsCache()
        results = engine.deanonymize_batch(
            [(envelope, chain3, 0) for envelope in envelopes],
            draws_cache=cache,
        )
        # All four envelopes share chain3, so the pool holds one buffer
        # per level — not one per (envelope, level).
        assert len(cache) == profile3.level_count
        assert [r.region_at(0) for r in results] == [
            (90,), (95,), (100,), (105,)
        ]

    def test_modes_apply_to_every_item(
        self, engine, dense_snapshot, profile3, chain3
    ):
        envelopes = self._envelopes(
            engine, dense_snapshot, profile3, chain3, (90, 100)
        )
        items = [(envelope, chain3, 0) for envelope in envelopes]
        hint = engine.deanonymize_batch(items, mode="hint")
        search = engine.deanonymize_batch(items, mode="search")
        assert [r.regions for r in hint] == [r.regions for r in search]

    def test_first_failing_item_propagates(
        self, engine, dense_snapshot, profile3, chain3
    ):
        from repro.errors import KeyMismatchError

        envelopes = self._envelopes(
            engine, dense_snapshot, profile3, chain3, (90, 95)
        )
        wrong = KeyChain.from_passphrases(["no-1", "no-2", "no-3"])
        with pytest.raises(KeyMismatchError):
            engine.deanonymize_batch(
                [(envelopes[0], chain3, 0), (envelopes[1], wrong, 0)]
            )
