"""Tests for RPLE pre-assignment (Algorithm 1) and local expansion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Preassignment,
    ReversiblePreassignmentExpansion,
    ToleranceSpec,
)
from repro.errors import CloakingError, PreassignmentError
from repro.keys import AccessKey
from repro.roadnet import fig3_network, grid_network, path_network


WIDE = ToleranceSpec(max_segments=200)


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6)


@pytest.fixture(scope="module")
def pre(grid):
    return Preassignment(grid, list_length=8)


@pytest.fixture(scope="module")
def rple(pre):
    return ReversiblePreassignmentExpansion(pre)


@pytest.fixture(scope="module")
def key():
    return AccessKey.from_passphrase(1, "rple-test")


class TestPreassignment:
    def test_symmetry_invariant(self, pre):
        """Algorithm 1's collision-freedom: FT[s][q] = sp <=> BT[sp][q] = s."""
        assert pre.verify_symmetry()

    def test_lists_have_requested_length(self, pre, grid):
        for segment_id in grid.segment_ids():
            assert len(pre.forward_list(segment_id)) == 8
            assert len(pre.backward_list(segment_id)) == 8

    def test_forward_entries_are_nearby_segments(self, pre, grid):
        from repro.roadnet import segment_hop_distances

        for segment_id in list(grid.segment_ids())[:10]:
            hops = segment_hop_distances(grid, segment_id, max_hops=4)
            for target in pre.forward_list(segment_id):
                if target is not None:
                    assert target in hops

    def test_no_self_assignment(self, pre, grid):
        for segment_id in grid.segment_ids():
            assert segment_id not in pre.forward_list(segment_id)
            assert segment_id not in pre.backward_list(segment_id)

    def test_deterministic(self, grid):
        a = Preassignment(grid, list_length=6)
        b = Preassignment(grid, list_length=6)
        for segment_id in grid.segment_ids():
            assert a.forward_list(segment_id) == b.forward_list(segment_id)

    def test_adjacent_segments_assigned_first(self, grid):
        pre = Preassignment(grid, list_length=4)
        # With only 4 slots and >= 4 adjacent segments, every filled slot of
        # an interior segment should be hop-1 (proximity order).
        interior = 20
        neighbors = set(grid.neighbors(interior))
        filled = [t for t in pre.forward_list(interior) if t is not None]
        assert filled
        assert all(t in neighbors for t in filled)

    def test_memory_accounting(self, pre, grid):
        assert pre.assigned_entries() > 0
        assert pre.memory_bytes() == 8 * 2 * 8 * grid.segment_count

    def test_unknown_segment_raises(self, pre):
        with pytest.raises(PreassignmentError):
            pre.forward_list(9999)

    def test_invalid_parameters(self, grid):
        with pytest.raises(PreassignmentError):
            Preassignment(grid, list_length=0)
        with pytest.raises(PreassignmentError):
            Preassignment(grid, list_length=4, max_hops=0)

    def test_figure3_star_fills_six_slots(self):
        """Figure 3: s8 with six neighbours and T=6 gets a full list."""
        network = fig3_network()
        pre = Preassignment(network, list_length=6)
        forward = pre.forward_list(8)
        assert sorted(t for t in forward if t is not None) == [
            10, 11, 12, 13, 14, 15,
        ]

    @settings(max_examples=20, deadline=None)
    @given(list_length=st.integers(min_value=1, max_value=12))
    def test_symmetry_for_any_list_length(self, list_length):
        network = grid_network(4, 4)
        assert Preassignment(network, list_length=list_length).verify_symmetry()


class TestForwardStep:
    def test_selects_linked_segment(self, grid, rple, key):
        region = {14}
        selected = rple.forward_step(grid, region, 14, key, 1, WIDE)
        assert selected in grid.frontier(region)
        assert selected in [
            t for t in rple.preassignment.forward_list(14) if t is not None
        ]

    def test_deterministic(self, grid, rple, key):
        a = rple.forward_step(grid, {14, 15}, 15, key, 2, WIDE)
        b = rple.forward_step(grid, {14, 15}, 15, key, 2, WIDE)
        assert a == b

    def test_figure3_index_rule(self, key):
        """The paper's Figure 3: the slot index is R_i mod 6 for T=6."""
        network = fig3_network()
        rple = ReversiblePreassignmentExpansion.for_network(network, list_length=6)
        from repro.core.algorithm import keyed_draw

        slot = keyed_draw(key, 1, 0) % 6
        expected = rple.preassignment.forward_list(8)[slot]
        selected = rple.forward_step(network, {8}, 8, key, 1, WIDE)
        assert selected == expected

    def test_redraw_skips_in_region_targets(self, grid, rple, key):
        # Fill the region with the anchor's whole first-choice set except one
        forward = [t for t in rple.preassignment.forward_list(14) if t is not None]
        region = {14, *forward[:-1]}
        selected = rple.forward_step(grid, region, 14, key, 1, WIDE)
        assert selected not in region

    def test_anchor_must_be_inside(self, grid, rple, key):
        with pytest.raises(CloakingError):
            rple.forward_step(grid, {0}, 5, key, 1, WIDE)

    def test_dead_anchor_raises(self, rple, key):
        # On a path, the middle anchor of a fully-covered neighbourhood dies.
        network = path_network(3)
        algo = ReversiblePreassignmentExpansion.for_network(network, list_length=4)
        with pytest.raises(CloakingError):
            algo.forward_step(network, {0, 1, 2}, 1, key, 1, WIDE)


class TestBackwardAnchors:
    def test_inverts_forward(self, grid, rple, key):
        region = {14, 15, 20}
        for anchor in region:
            try:
                selected = rple.forward_step(grid, region, anchor, key, 3, WIDE)
            except CloakingError:
                continue
            anchors = rple.backward_anchors(grid, region, selected, key, 3, WIDE)
            assert anchor in anchors

    def test_figure3_backward_rule(self, key):
        """Figure 3: moving back to s14, the key re-selects s8 from the
        backward list of s14."""
        network = fig3_network()
        rple = ReversiblePreassignmentExpansion.for_network(network, list_length=6)
        selected = rple.forward_step(network, {8}, 8, key, 1, WIDE)
        anchors = rple.backward_anchors(network, {8}, selected, key, 1, WIDE)
        assert anchors == (8,)

    def test_non_adjacent_removal_rejected(self, grid, rple, key):
        # segment 29 (far corner) shares no junction with the region
        anchors = rple.backward_anchors(grid, {0, 1}, 29, key, 1, WIDE)
        assert anchors == ()

    def test_removed_inside_region_raises(self, grid, rple, key):
        with pytest.raises(CloakingError):
            rple.backward_anchors(grid, {0, 1}, 1, key, 1, WIDE)

    def test_tolerance_respected(self, grid, rple, key):
        region = {14, 15}
        selected = rple.forward_step(grid, region, 15, key, 1, WIDE)
        tight = ToleranceSpec(max_segments=2)  # the addition violated this
        assert rple.backward_anchors(grid, region, selected, key, 1, tight) == ()

    def test_params_round_trip(self, rple):
        assert rple.params() == {"list_length": 8, "max_hops": 4}
