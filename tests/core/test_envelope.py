"""Tests for cloak envelopes, sealing and MACs."""

import pytest

from repro.core import (
    CloakEnvelope,
    LevelRecord,
    ToleranceSpec,
    network_digest,
    region_digest,
    seal_anchor,
    unseal_anchor,
)
from repro.core.envelope import level_mac
from repro.errors import EnvelopeError, KeyMismatchError
from repro.keys import AccessKey
from repro.roadnet import grid_network


@pytest.fixture(scope="module")
def key():
    return AccessKey.from_passphrase(2, "seal-test")


def make_record(key, level=2, steps=3, sealed=None, sealed_start=None,
                witnesses=(), digest="abc", algorithm="rge", net="net1"):
    mac = level_mac(
        key, level, steps, sealed, sealed_start, witnesses, digest, algorithm, net
    )
    return LevelRecord(
        level=level,
        steps=steps,
        k=5,
        l=3,
        tolerance=ToleranceSpec(max_segments=40),
        sealed_anchor=sealed,
        sealed_start=sealed_start,
        witnesses=witnesses,
        mac=mac,
        digest=digest,
    )


class TestDigests:
    def test_region_digest_order_independent(self):
        assert region_digest({3, 1, 2}) == region_digest({2, 3, 1})

    def test_region_digest_distinguishes(self):
        assert region_digest({1, 2}) != region_digest({1, 3})

    def test_network_digest_stable(self):
        a = grid_network(4, 4)
        b = grid_network(4, 4)
        assert network_digest(a) == network_digest(b)

    def test_network_digest_distinguishes(self):
        assert network_digest(grid_network(4, 4)) != network_digest(
            grid_network(4, 5)
        )


class TestSealing:
    def test_round_trip(self, key):
        sealed = seal_anchor(key, 1234)
        assert sealed != 1234  # pad actually masks
        assert unseal_anchor(key, sealed) == 1234

    def test_purposes_use_distinct_pads(self, key):
        assert seal_anchor(key, 77, "hint") != seal_anchor(key, 77, "start")

    def test_wrong_key_unseals_garbage(self, key):
        sealed = seal_anchor(key, 1234)
        other = AccessKey.from_passphrase(2, "other")
        assert unseal_anchor(other, sealed) != 1234

    def test_wrong_level_unseals_garbage(self, key):
        sealed = seal_anchor(key, 1234)
        other_level = AccessKey(3, key.material)
        assert unseal_anchor(other_level, sealed) != 1234

    def test_out_of_range_anchor_rejected(self, key):
        with pytest.raises(EnvelopeError):
            seal_anchor(key, -1)
        with pytest.raises(EnvelopeError):
            seal_anchor(key, 1 << 64)


class TestLevelRecordMac:
    def test_verify_accepts_correct_key(self, key):
        record = make_record(key)
        record.verify_key(key, "rge", "net1")

    def test_verify_rejects_wrong_key(self, key):
        record = make_record(key)
        with pytest.raises(KeyMismatchError):
            record.verify_key(AccessKey.from_passphrase(2, "wrong"), "rge", "net1")

    def test_verify_rejects_wrong_level_key(self, key):
        record = make_record(key)
        with pytest.raises(KeyMismatchError):
            record.verify_key(AccessKey(3, key.material), "rge", "net1")

    def test_verify_rejects_tampered_steps(self, key):
        record = make_record(key)
        tampered = LevelRecord(
            level=record.level,
            steps=record.steps + 1,
            k=record.k,
            l=record.l,
            tolerance=record.tolerance,
            sealed_anchor=record.sealed_anchor,
            sealed_start=record.sealed_start,
            witnesses=record.witnesses,
            mac=record.mac,
            digest=record.digest,
        )
        with pytest.raises(KeyMismatchError):
            tampered.verify_key(key, "rge", "net1")

    def test_verify_rejects_wrong_algorithm_context(self, key):
        record = make_record(key)
        with pytest.raises(KeyMismatchError):
            record.verify_key(key, "rple", "net1")

    def test_record_dict_round_trip(self, key):
        record = make_record(key, sealed=99, sealed_start=42)
        assert LevelRecord.from_dict(record.to_dict()) == record


class TestCloakEnvelope:
    def _envelope(self, key):
        region = (1, 2, 3, 4)
        record1 = make_record(
            AccessKey(1, key.material), level=1, digest=region_digest({1, 2})
        )
        record2 = make_record(key, level=2, digest=region_digest(set(region)))
        return CloakEnvelope(
            algorithm="rge",
            algorithm_params={},
            network_name="test",
            net_digest="net1",
            region=region,
            levels=(record1, record2),
        )

    def test_basic_accessors(self, key):
        envelope = self._envelope(key)
        assert envelope.top_level == 2
        assert envelope.total_steps() == 6
        assert envelope.level_record(1).level == 1
        assert envelope.region_set() == frozenset({1, 2, 3, 4})

    def test_level_bounds(self, key):
        envelope = self._envelope(key)
        with pytest.raises(EnvelopeError):
            envelope.level_record(0)
        with pytest.raises(EnvelopeError):
            envelope.level_record(3)

    def test_unsorted_region_rejected(self, key):
        record = make_record(key, level=1, digest=region_digest({1, 2}))
        with pytest.raises(EnvelopeError):
            CloakEnvelope(
                algorithm="rge",
                algorithm_params={},
                network_name="test",
                net_digest="net1",
                region=(2, 1),
                levels=(record,),
            )

    def test_empty_region_rejected(self, key):
        with pytest.raises(EnvelopeError):
            CloakEnvelope(
                algorithm="rge",
                algorithm_params={},
                network_name="test",
                net_digest="net1",
                region=(),
                levels=(),
            )

    def test_top_digest_must_match_region(self, key):
        record = make_record(key, level=1, digest="wrong-digest")
        with pytest.raises(EnvelopeError):
            CloakEnvelope(
                algorithm="rge",
                algorithm_params={},
                network_name="test",
                net_digest="net1",
                region=(1, 2),
                levels=(record,),
            )

    def test_gapped_levels_rejected(self, key):
        record2 = make_record(key, level=2, digest=region_digest({1, 2}))
        with pytest.raises(EnvelopeError):
            CloakEnvelope(
                algorithm="rge",
                algorithm_params={},
                network_name="test",
                net_digest="net1",
                region=(1, 2),
                levels=(record2,),
            )

    def test_json_round_trip(self, key):
        envelope = self._envelope(key)
        restored = CloakEnvelope.from_json(envelope.to_json())
        assert restored == envelope

    def test_json_is_canonical(self, key):
        envelope = self._envelope(key)
        assert envelope.to_json() == CloakEnvelope.from_json(
            envelope.to_json()
        ).to_json()

    def test_bad_format_rejected(self):
        with pytest.raises(EnvelopeError):
            CloakEnvelope.from_dict({"format": "nope"})

    def test_bad_version_rejected(self, key):
        document = self._envelope(key).to_dict()
        document["version"] = 99
        with pytest.raises(EnvelopeError):
            CloakEnvelope.from_dict(document)
