"""Failure-injection tests: wrong keys, tampering, exhaustion, map mismatch."""

import pytest

from repro import (
    CloakEnvelope,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    grid_network,
    path_network,
)
from repro.core import ToleranceSpec, LevelRequirement
from repro.errors import (
    CloakingError,
    DeanonymizationError,
    EnvelopeError,
    FrontierExhaustedError,
    KeyMismatchError,
    ToleranceExceededError,
)


@pytest.fixture()
def envelope3(rge_engine, dense_snapshot, profile3, chain3):
    return rge_engine.anonymize(90, dense_snapshot, profile3, chain3)


class TestWrongKeys:
    def test_wrong_key_rejected_by_mac(self, rge_engine, envelope3, chain3):
        bad_chain = KeyChain.from_passphrases(["alpha", "beta", "WRONG"])
        with pytest.raises(KeyMismatchError):
            rge_engine.deanonymize(envelope3, bad_chain, target_level=0)

    def test_wrong_key_never_silently_succeeds(
        self, rge_engine, dense_snapshot, profile3, chain3
    ):
        envelope = rge_engine.anonymize(90, dense_snapshot, profile3, chain3)
        for trial in range(10):
            bad_chain = KeyChain.from_passphrases(
                ["alpha", "beta", f"guess-{trial}"]
            )
            with pytest.raises(KeyMismatchError):
                rge_engine.deanonymize(envelope, bad_chain, target_level=2)

    def test_missing_level_key_rejected(self, rge_engine, envelope3, chain3):
        only_top = {3: chain3.key_for(3)}
        with pytest.raises(KeyMismatchError):
            rge_engine.deanonymize(envelope3, only_top, target_level=0)

    def test_keys_registered_under_wrong_level(self, rge_engine, envelope3, chain3):
        from repro.errors import ProfileError

        mislabeled = {1: chain3.key_for(2)}
        with pytest.raises(ProfileError):
            rge_engine.deanonymize(envelope3, mislabeled, target_level=2)

    def test_extra_keys_are_harmless(self, rge_engine, envelope3, chain3):
        result = rge_engine.deanonymize(envelope3, chain3, target_level=2)
        assert 2 in result.regions


class TestTampering:
    def test_tampered_region_rejected_at_construction(self, envelope3):
        # Growing the region without forging the digest fails immediately.
        document = envelope3.to_dict()
        document["region"] = sorted(document["region"] + [150])
        with pytest.raises(EnvelopeError):
            CloakEnvelope.from_dict(document)

    def test_tampered_region_with_forged_digest_detected(
        self, rge_engine, envelope3, chain3
    ):
        # Forging the digest to match the grown region defeats the
        # constructor check but not the keyed MAC.
        from repro.core import region_digest

        document = envelope3.to_dict()
        document["region"] = sorted(document["region"] + [150])
        document["levels"][2]["digest"] = region_digest(set(document["region"]))
        tampered = CloakEnvelope.from_dict(document)
        with pytest.raises(KeyMismatchError):
            rge_engine.deanonymize(tampered, chain3, target_level=0)

    def test_tampered_steps_alone_rejected_at_construction(self, envelope3):
        # Changing the step count desynchronises it from the witness list.
        document = envelope3.to_dict()
        document["levels"][2]["steps"] += 1
        with pytest.raises(EnvelopeError):
            CloakEnvelope.from_dict(document)

    def test_tampered_steps_with_forged_witnesses_detected(
        self, rge_engine, envelope3, chain3
    ):
        # Padding the witness list to match defeats the construction check
        # but not the keyed MAC.
        document = envelope3.to_dict()
        document["levels"][2]["steps"] += 1
        document["levels"][2]["witnesses"].append(0)
        tampered = CloakEnvelope.from_dict(document)
        with pytest.raises(KeyMismatchError):
            rge_engine.deanonymize(tampered, chain3, target_level=0)

    def test_tampered_hint_detected(self, rge_engine, envelope3, chain3):
        document = envelope3.to_dict()
        document["levels"][2]["sealed_anchor"] ^= 0xFF
        tampered = CloakEnvelope.from_dict(document)
        with pytest.raises(KeyMismatchError):
            rge_engine.deanonymize(tampered, chain3, target_level=0)

    def test_swapped_algorithm_detected(self, rge_engine, envelope3, chain3):
        document = envelope3.to_dict()
        document["algorithm"] = "rple"
        tampered = CloakEnvelope.from_dict(document)
        with pytest.raises(EnvelopeError):
            rge_engine.deanonymize(tampered, chain3, target_level=0)


class TestMapMismatch:
    def test_envelope_from_other_map_rejected(self, envelope3, chain3):
        other_engine = ReverseCloakEngine(grid_network(10, 11))
        with pytest.raises(EnvelopeError):
            other_engine.deanonymize(envelope3, chain3, target_level=0)


class TestTargetLevelValidation:
    def test_target_out_of_range(self, rge_engine, envelope3, chain3):
        with pytest.raises(DeanonymizationError):
            rge_engine.deanonymize(envelope3, chain3, target_level=3)
        with pytest.raises(DeanonymizationError):
            rge_engine.deanonymize(envelope3, chain3, target_level=-1)

    def test_unknown_mode(self, rge_engine, envelope3, chain3):
        with pytest.raises(DeanonymizationError):
            rge_engine.deanonymize(envelope3, chain3, target_level=0, mode="psychic")


class TestCloakingFailures:
    def test_tolerance_exceeded(self, grid10, dense_snapshot):
        # k = 500 users needs 250 segments; tolerance allows 10
        profile = PrivacyProfile(
            [
                LevelRequirement(
                    k=500, l=2, tolerance=ToleranceSpec(max_segments=10)
                )
            ]
        )
        engine = ReverseCloakEngine(grid10)
        with pytest.raises(ToleranceExceededError):
            engine.anonymize(
                90, dense_snapshot, profile, KeyChain.from_passphrases(["x"])
            )

    def test_frontier_exhausted_on_small_component(self):
        network = path_network(4)
        snapshot = PopulationSnapshot.from_counts({0: 1, 1: 1, 2: 1, 3: 1})
        profile = PrivacyProfile(
            [
                LevelRequirement(
                    k=50, l=2, tolerance=ToleranceSpec(max_segments=100)
                )
            ]
        )
        engine = ReverseCloakEngine(network)
        with pytest.raises(FrontierExhaustedError):
            engine.anonymize(
                0, snapshot, profile, KeyChain.from_passphrases(["x"])
            )

    def test_unknown_user_segment(self, rge_engine, dense_snapshot, profile3, chain3):
        from repro.errors import RoadNetworkError

        with pytest.raises(RoadNetworkError):
            rge_engine.anonymize(99999, dense_snapshot, profile3, chain3)
