"""Tests for the RGE transition table, including the paper's Figure 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransitionTable, length_order
from repro.errors import CloakingError
from repro.roadnet import fig2_network, grid_network


@pytest.fixture(scope="module")
def fig2():
    return fig2_network()


@pytest.fixture(scope="module")
def fig2_table(fig2):
    return TransitionTable(fig2, {8, 9, 11}, {6, 10, 14})


class TestFigure2:
    """The exact worked example of the paper's Section III-A."""

    def test_row_order_by_length(self, fig2_table):
        assert fig2_table.rows == (9, 8, 11)

    def test_column_order_by_length(self, fig2_table):
        assert fig2_table.columns == (6, 14, 10)

    def test_value_grid(self, fig2_table):
        # ((i-1)+(j-1)) mod 3 over a 3x3 table
        assert fig2_table.grid() == [[0, 1, 2], [1, 2, 0], [2, 0, 1]]

    def test_pick_value_for_r_equals_5(self, fig2_table):
        # "if R_i is 5, p_i will be 2"
        assert fig2_table.pick_value(5) == 2

    def test_forward_transition_s8_to_s14(self, fig2_table):
        # "since the last added segment is s8, we find the transition value 2
        #  in the 2nd row is located in the cell (2,2), which indicates the
        #  forward transition from s8 to s14"
        assert fig2_table.forward(last_added=8, random_value=5) == 14

    def test_backward_transition_s14_to_s8(self, fig2_table):
        # "known the last removed segment s14, the transition value 2 in the
        #  cell (2,2) here indicates the backward transition from s14 to s8"
        assert fig2_table.backward(removed=14, random_value=5) == (8,)

    def test_cell_22_value_is_2(self, fig2_table):
        assert fig2_table.value(1, 1) == 2  # 0-based cell (2,2)

    def test_render_contains_segments(self, fig2_table):
        text = fig2_table.render()
        assert "s8" in text and "s14" in text


class TestTableProperties:
    def test_cloak_and_candidates_must_not_overlap(self, fig2):
        with pytest.raises(CloakingError):
            TransitionTable(fig2, {8, 9}, {9, 10})

    def test_empty_sets_rejected(self, fig2):
        with pytest.raises(CloakingError):
            TransitionTable(fig2, set(), {6})
        with pytest.raises(CloakingError):
            TransitionTable(fig2, {8}, set())

    def test_unknown_anchor_rejected(self, fig2_table):
        with pytest.raises(CloakingError):
            fig2_table.forward(last_added=99, random_value=0)

    def test_unknown_removed_rejected(self, fig2_table):
        with pytest.raises(CloakingError):
            fig2_table.backward(removed=99, random_value=0)

    def test_negative_random_rejected(self, fig2_table):
        with pytest.raises(CloakingError):
            fig2_table.pick_value(-1)

    def test_value_bounds_checked(self, fig2_table):
        with pytest.raises(CloakingError):
            fig2_table.value(3, 0)
        with pytest.raises(CloakingError):
            fig2_table.value(0, 3)

    def test_collision_free_flag(self, fig2):
        assert TransitionTable(fig2, {8, 9}, {6, 10, 14}).collision_free
        assert not TransitionTable(fig2, {8, 9, 11}, {6, 10}).collision_free


class TestUniquenessInvariant:
    """Paper: 'there is no repeated transition value in each row and column
    if CloakA <= CanA, thus no collisions.'"""

    @settings(max_examples=60, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=12),
        extra_cols=st.integers(min_value=0, max_value=8),
    )
    def test_rows_and_columns_distinct_when_collision_free(
        self, n_rows, extra_cols
    ):
        network = grid_network(8, 8)
        segment_ids = network.segment_ids()
        n_cols = n_rows + extra_cols
        cloak = set(segment_ids[:n_rows])
        candidates = set(segment_ids[n_rows : n_rows + n_cols])
        table = TransitionTable(network, cloak, candidates)
        grid = table.grid()
        for row in grid:
            assert len(set(row)) == len(row)
        for column_index in range(table.column_count):
            column = [row[column_index] for row in grid]
            assert len(set(column)) == len(column)

    @settings(max_examples=60, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=10),
        extra_cols=st.integers(min_value=0, max_value=6),
        random_value=st.integers(min_value=0, max_value=10**9),
    )
    def test_forward_backward_inverse(self, n_rows, extra_cols, random_value):
        """backward(forward(anchor)) recovers the anchor for every anchor."""
        network = grid_network(8, 8)
        segment_ids = network.segment_ids()
        cloak = set(segment_ids[:n_rows])
        candidates = set(segment_ids[n_rows : n_rows + n_rows + extra_cols])
        table = TransitionTable(network, cloak, candidates)
        for anchor in cloak:
            selected = table.forward(anchor, random_value)
            back = table.backward(selected, random_value)
            assert anchor in back
            if table.collision_free:
                assert back == (anchor,)

    def test_backward_candidates_spaced_by_column_count(self):
        network = grid_network(8, 8)
        segment_ids = network.segment_ids()
        cloak = set(segment_ids[:7])
        candidates = set(segment_ids[7:10])  # 7 rows x 3 columns
        table = TransitionTable(network, cloak, candidates)
        pick = table.pick_value(4)
        column = table.columns.index(table.columns[0])
        first_row = (pick - column) % table.column_count
        expected = len(range(first_row, table.row_count, table.column_count))
        back = table.backward(table.columns[0], random_value=4)
        assert len(back) == expected
        assert 2 <= len(back) <= 3  # ceil/floor of 7/3 depending on offset


class TestLengthOrder:
    def test_sorts_by_length_then_id(self, fig2):
        assert length_order(fig2, {8, 9, 11, 6, 10, 14}) == (6, 9, 14, 8, 10, 11)

    def test_ties_break_by_id(self):
        network = grid_network(3, 3)  # all segments 100 m
        assert length_order(network, {5, 1, 3}) == (1, 3, 5)
