"""Tests for privacy profiles and tolerance specs."""

import pytest

from repro.core import LevelRequirement, PrivacyProfile, ToleranceSpec
from repro.errors import ProfileError
from repro.mobility import PopulationSnapshot
from repro.roadnet import grid_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6, spacing=100.0)


class TestToleranceSpec:
    def test_requires_some_bound(self):
        with pytest.raises(ProfileError):
            ToleranceSpec()

    def test_invalid_bounds(self):
        with pytest.raises(ProfileError):
            ToleranceSpec(max_segments=0)
        with pytest.raises(ProfileError):
            ToleranceSpec(max_total_length=0.0)
        with pytest.raises(ProfileError):
            ToleranceSpec(max_diagonal=-1.0)

    def test_max_segments(self, grid):
        spec = ToleranceSpec(max_segments=3)
        assert spec.fits(grid, {0, 1, 2})
        assert not spec.fits(grid, {0, 1, 2, 3})

    def test_max_total_length(self, grid):
        spec = ToleranceSpec(max_total_length=250.0)
        assert spec.fits(grid, {0, 1})  # 200 m
        assert not spec.fits(grid, {0, 1, 2})  # 300 m

    def test_max_diagonal(self, grid):
        spec = ToleranceSpec(max_diagonal=250.0)
        assert spec.fits(grid, {0, 1})  # 200 m wide strip
        assert not spec.fits(grid, {0, 1, 2})  # 300 m wide

    def test_empty_region_always_fits(self, grid):
        assert ToleranceSpec(max_segments=1).fits(grid, set())

    def test_combined_bounds_all_must_hold(self, grid):
        spec = ToleranceSpec(max_segments=10, max_total_length=250.0)
        assert not spec.fits(grid, {0, 1, 2})  # segments ok, length not

    def test_looseness_ordering(self):
        tight = ToleranceSpec(max_segments=10)
        loose = ToleranceSpec(max_segments=20)
        unbounded = ToleranceSpec(max_segments=None, max_total_length=1e9)
        assert loose.at_least_as_loose_as(tight)
        assert not tight.at_least_as_loose_as(loose)
        assert unbounded.at_least_as_loose_as(ToleranceSpec(max_total_length=5.0))

    def test_dict_round_trip(self):
        spec = ToleranceSpec(max_segments=5, max_diagonal=120.0)
        assert ToleranceSpec.from_dict(spec.to_dict()) == spec


class TestLevelRequirement:
    def test_invalid_k_l(self):
        tolerance = ToleranceSpec(max_segments=50)
        with pytest.raises(ProfileError):
            LevelRequirement(k=0, l=2, tolerance=tolerance)
        with pytest.raises(ProfileError):
            LevelRequirement(k=2, l=0, tolerance=tolerance)

    def test_tolerance_must_allow_l(self):
        with pytest.raises(ProfileError):
            LevelRequirement(k=2, l=10, tolerance=ToleranceSpec(max_segments=5))

    def test_satisfied_by(self, grid):
        requirement = LevelRequirement(
            k=4, l=2, tolerance=ToleranceSpec(max_segments=10)
        )
        snapshot = PopulationSnapshot.from_counts({0: 3, 1: 3})
        assert requirement.satisfied_by(grid, {0, 1}, snapshot)
        assert not requirement.satisfied_by(grid, {0}, snapshot)  # l unmet
        sparse = PopulationSnapshot.from_counts({0: 1, 1: 1})
        assert not requirement.satisfied_by(grid, {0, 1}, sparse)  # k unmet

    def test_satisfied_respects_tolerance(self, grid):
        requirement = LevelRequirement(
            k=1, l=1, tolerance=ToleranceSpec(max_segments=2)
        )
        snapshot = PopulationSnapshot.from_counts({0: 5, 1: 5, 2: 5})
        assert not requirement.satisfied_by(grid, {0, 1, 2}, snapshot)

    def test_dict_round_trip(self):
        requirement = LevelRequirement(
            k=7, l=3, tolerance=ToleranceSpec(max_segments=40)
        )
        assert LevelRequirement.from_dict(requirement.to_dict()) == requirement


class TestPrivacyProfile:
    def test_uniform_shape(self):
        profile = PrivacyProfile.uniform(
            levels=3, base_k=5, k_step=5, base_l=2, l_step=2, max_segments=60
        )
        assert profile.level_count == 3
        assert profile.total_levels == 4
        assert [profile.requirement(i).k for i in (1, 2, 3)] == [5, 10, 15]
        assert [profile.requirement(i).l for i in (1, 2, 3)] == [2, 4, 6]

    def test_uniform_auto_tolerance(self):
        profile = PrivacyProfile.uniform(levels=2, base_k=5, k_step=5)
        assert profile.requirement(1).tolerance.max_segments is not None

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            PrivacyProfile([])

    def test_decreasing_k_rejected(self):
        tolerance = ToleranceSpec(max_segments=60)
        with pytest.raises(ProfileError):
            PrivacyProfile(
                [
                    LevelRequirement(k=10, l=2, tolerance=tolerance),
                    LevelRequirement(k=5, l=2, tolerance=tolerance),
                ]
            )

    def test_decreasing_l_rejected(self):
        tolerance = ToleranceSpec(max_segments=60)
        with pytest.raises(ProfileError):
            PrivacyProfile(
                [
                    LevelRequirement(k=5, l=4, tolerance=tolerance),
                    LevelRequirement(k=10, l=2, tolerance=tolerance),
                ]
            )

    def test_tightening_tolerance_rejected(self):
        with pytest.raises(ProfileError):
            PrivacyProfile(
                [
                    LevelRequirement(
                        k=5, l=2, tolerance=ToleranceSpec(max_segments=40)
                    ),
                    LevelRequirement(
                        k=10, l=2, tolerance=ToleranceSpec(max_segments=20)
                    ),
                ]
            )

    def test_level_bounds(self):
        profile = PrivacyProfile.uniform(levels=2, base_k=5, k_step=5)
        with pytest.raises(ProfileError):
            profile.requirement(0)
        with pytest.raises(ProfileError):
            profile.requirement(3)

    def test_dict_round_trip(self):
        profile = PrivacyProfile.uniform(
            levels=3, base_k=4, k_step=3, base_l=2, l_step=1, max_segments=50
        )
        assert PrivacyProfile.from_dict(profile.to_dict()) == profile

    def test_invalid_levels(self):
        with pytest.raises(ProfileError):
            PrivacyProfile.uniform(levels=0, base_k=5, k_step=5)
