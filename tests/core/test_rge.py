"""Tests for Reversible Global Expansion single steps."""

import pytest

from repro.core import ReversibleGlobalExpansion, ToleranceSpec
from repro.core.algorithm import eligible_candidates, keyed_draw
from repro.errors import (
    CloakingError,
    FrontierExhaustedError,
    ToleranceExceededError,
)
from repro.keys import AccessKey
from repro.roadnet import grid_network, path_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6)


@pytest.fixture(scope="module")
def key():
    return AccessKey.from_passphrase(1, "rge-test")


@pytest.fixture()
def rge():
    return ReversibleGlobalExpansion()


WIDE = ToleranceSpec(max_segments=100)


class TestKeyedDraw:
    def test_deterministic(self, key):
        assert keyed_draw(key, 3) == keyed_draw(key, 3)

    def test_step_sensitivity(self, key):
        assert keyed_draw(key, 1) != keyed_draw(key, 2)

    def test_attempt_sensitivity(self, key):
        assert keyed_draw(key, 1, 0) != keyed_draw(key, 1, 1)

    def test_level_sensitivity(self):
        key1 = AccessKey(1, b"0" * 32)
        key2 = AccessKey(2, b"0" * 32)
        assert keyed_draw(key1, 1) != keyed_draw(key2, 1)

    def test_bounds(self, key):
        with pytest.raises(CloakingError):
            keyed_draw(key, 0)
        with pytest.raises(CloakingError):
            keyed_draw(key, 1, -1)


class TestEligibleCandidates:
    def test_matches_frontier_when_tolerance_loose(self, grid):
        region = {0, 1}
        assert eligible_candidates(grid, region, WIDE) == grid.frontier(region)

    def test_tolerance_filters_everything(self, grid):
        region = {0, 1, 2}
        tight = ToleranceSpec(max_segments=3)
        assert eligible_candidates(grid, region, tight) == ()

    def test_length_tolerance_filters_partially(self):
        # A path with mixed lengths: a tight length budget admits only the
        # shorter frontier segment.
        from repro.roadnet import RoadNetworkBuilder

        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 100, 0)
        builder.add_junction(2, 150, 0)  # short segment 1: 50 m
        builder.add_junction(3, -300, 0)  # long segment 2: 300 m
        builder.add_segment(0, 0, 1)
        builder.add_segment(1, 1, 2)
        builder.add_segment(2, 0, 3)
        network = builder.build()
        spec = ToleranceSpec(max_total_length=200.0)
        assert eligible_candidates(network, {0}, spec) == (1,)


class TestForwardStep:
    def test_selects_a_frontier_segment(self, grid, rge, key):
        region = {0}
        selected = rge.forward_step(grid, region, 0, key, 1, WIDE)
        assert selected in grid.frontier(region)

    def test_deterministic(self, grid, rge, key):
        a = rge.forward_step(grid, {0, 1}, 1, key, 2, WIDE)
        b = rge.forward_step(grid, {0, 1}, 1, key, 2, WIDE)
        assert a == b

    def test_depends_on_key(self, grid, rge):
        region = {0, 1, 6, 7}
        picks = {
            rge.forward_step(
                grid, region, 1, AccessKey.from_passphrase(1, f"k{i}"), 1, WIDE
            )
            for i in range(12)
        }
        assert len(picks) > 1  # different keys pick different segments

    def test_depends_on_anchor(self, grid, rge, key):
        region = {0, 1, 6, 7}
        picks = {
            rge.forward_step(grid, region, anchor, key, 1, WIDE)
            for anchor in region
        }
        assert len(picks) > 1

    def test_anchor_must_be_inside(self, grid, rge, key):
        with pytest.raises(CloakingError):
            rge.forward_step(grid, {0}, 5, key, 1, WIDE)

    def test_frontier_exhausted(self, rge, key):
        network = path_network(3)
        with pytest.raises(FrontierExhaustedError):
            rge.forward_step(network, {0, 1, 2}, 2, key, 1, WIDE)

    def test_tolerance_exceeded(self, grid, rge, key):
        with pytest.raises(ToleranceExceededError):
            rge.forward_step(grid, {0, 1}, 1, key, 1, ToleranceSpec(max_segments=2))


class TestBackwardAnchors:
    def test_inverts_forward(self, grid, rge, key):
        region = {0, 1, 6}
        anchor = 1
        selected = rge.forward_step(grid, region, anchor, key, 4, WIDE)
        anchors = rge.backward_anchors(grid, region, selected, key, 4, WIDE)
        assert anchor in anchors

    def test_unique_when_frontier_large(self, grid, rge, key):
        region = {0, 1}  # 2 rows, frontier >= 4 columns -> collision-free
        selected = rge.forward_step(grid, region, 0, key, 1, WIDE)
        anchors = rge.backward_anchors(grid, region, selected, key, 1, WIDE)
        assert anchors == (0,)

    def test_non_candidate_removal_rejected(self, grid, rge, key):
        # segment 29 (far corner) is nowhere near region {0,1}: it could
        # never have been the segment this step added
        anchors = rge.backward_anchors(grid, {0, 1}, 29, key, 1, WIDE)
        assert anchors == ()

    def test_removed_must_be_outside(self, grid, rge, key):
        with pytest.raises(CloakingError):
            rge.backward_anchors(grid, {0, 1}, 1, key, 1, WIDE)

    def test_wrong_key_usually_differs(self, grid, rge, key):
        region = {0, 1, 6}
        selected = rge.forward_step(grid, region, 1, key, 2, WIDE)
        other = AccessKey.from_passphrase(1, "different")
        mismatches = 0
        anchors = rge.backward_anchors(grid, region, selected, other, 2, WIDE)
        if anchors != (1,):
            mismatches += 1
        # single trial may coincide; check several steps
        for step in range(3, 10):
            chosen = rge.forward_step(grid, region, 1, key, step, WIDE)
            back = rge.backward_anchors(grid, region, chosen, other, step, WIDE)
            if back != (1,):
                mismatches += 1
        assert mismatches > 0
