"""RegionState: incremental bookkeeping must match from-scratch recomputes.

Two layers of assurance:

* a randomized property test applying arbitrary interleaved add/remove
  sequences on grid and Delaunay networks, checking every maintained
  quantity (frontier, total length, bounding box, population count,
  length ordering, connectivity/removability) against the from-scratch
  answer after every single mutation;
* protocol equivalence: the engine with ``incremental=True`` must produce
  byte-identical envelopes (regions, digests, MACs) to ``incremental=False``
  for both algorithms, and envelopes from either engine must de-anonymize
  correctly under the other in every reversal mode.
"""

import random

import pytest

from repro import (
    KeyChain,
    LevelRequirement,
    PopulationSnapshot,
    PrivacyProfile,
    RegionState,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    ToleranceSpec,
    grid_network,
    random_delaunay_network,
)
from repro.core.algorithm import eligible_candidates
from repro.core.transition_table import length_order
from repro.errors import CloakingError


GRID = grid_network(8, 8)
DELAUNAY = random_delaunay_network(n_junctions=50, target_segments=100, seed=11)


def brute_removable(network, region):
    """The seed-era O(R^2) definition: removal keeps the rest connected."""
    return tuple(
        sid
        for sid in sorted(region)
        if network.is_connected_region(region - {sid})
    )


def assert_state_matches(network, snapshot, state, region):
    assert state.members == region
    assert len(state) == len(region)
    assert state.frontier() == network.frontier(region)
    assert state.frontier_counts() == {
        candidate: sum(1 for n in network.neighbors(candidate) if n in region)
        for candidate in network.frontier(region)
    }
    assert state.total_length == pytest.approx(
        network.total_length(region), rel=1e-12, abs=1e-9
    )
    assert state.population == snapshot.count_in_region(region)
    assert state.segments_by_length() == length_order(network, region)
    if region:
        assert state.bounding_box() == network.bounding_box(region)
    assert state.is_connected() == network.is_connected_region(region)
    assert tuple(sorted(state.removable_members())) == brute_removable(
        network, set(region)
    )


class TestRandomizedProperty:
    @pytest.mark.parametrize("network", [GRID, DELAUNAY], ids=["grid", "delaunay"])
    def test_interleaved_add_remove_matches_recompute(self, network):
        rng = random.Random(2024)
        snapshot = PopulationSnapshot.from_counts(
            {sid: rng.randrange(4) for sid in network.segment_ids()}
        )
        all_segments = list(network.segment_ids())
        state = RegionState(network, snapshot=snapshot)
        region = set()
        for _ in range(200):
            if region and rng.random() < 0.4:
                sid = rng.choice(sorted(region))
                state.remove(sid)
                region.discard(sid)
            else:
                sid = rng.choice(all_segments)
                if sid in region:
                    continue
                state.add(sid)
                region.add(sid)
            assert_state_matches(network, snapshot, state, region)

    def test_from_region_matches_recompute(self):
        rng = random.Random(7)
        snapshot = PopulationSnapshot.from_counts(
            {sid: 1 for sid in GRID.segment_ids()}
        )
        region = set(rng.sample(GRID.segment_ids(), 25))
        state = RegionState.from_region(GRID, region, snapshot=snapshot)
        assert_state_matches(GRID, snapshot, state, region)


class TestMutationContract:
    def test_double_add_raises(self):
        state = RegionState(GRID, (0,))
        with pytest.raises(CloakingError):
            state.add(0)

    def test_remove_absent_raises(self):
        state = RegionState(GRID, (0,))
        with pytest.raises(CloakingError):
            state.remove(5)

    def test_length_rank(self):
        state = RegionState(DELAUNAY, (0, 1, 2, 3))
        order = state.segments_by_length()
        for expected, sid in enumerate(order):
            assert state.length_rank(sid) == expected
        with pytest.raises(CloakingError):
            state.length_rank(99)

    def test_bbox_shrinks_after_boundary_removal(self):
        # A 1x3 strip: removing an end segment must shrink the box.
        state = RegionState(GRID, (0, 1, 2))
        wide = state.bounding_box()
        state.remove(2)
        assert state.bounding_box() == GRID.bounding_box({0, 1})
        assert state.bounding_box().width < wide.width

    def test_diagonal_after_add_is_exact(self):
        state = RegionState(GRID, (0, 1))
        for candidate in state.frontier():
            expected = GRID.bounding_box({0, 1, candidate}).diagonal
            assert state.diagonal_after_add(candidate) == expected


class TestToleranceDeltas:
    def test_fits_after_add_matches_fits(self):
        specs = [
            ToleranceSpec(max_segments=4),
            ToleranceSpec(max_total_length=450.0),
            ToleranceSpec(max_diagonal=320.0),
            ToleranceSpec(max_segments=6, max_total_length=650.0, max_diagonal=500.0),
        ]
        state = RegionState(GRID, (0,))
        region = {0}
        for _ in range(6):
            for spec in specs:
                for candidate in state.frontier():
                    assert spec.fits_after_add(state, candidate) == spec.fits(
                        GRID, region | {candidate}
                    ), (spec, candidate)
            frontier = state.frontier()
            nxt = frontier[0]
            state.add(nxt)
            region.add(nxt)

    def test_total_length_decisions_are_order_independent_at_the_bound(self):
        # 0.1 + 0.2 + 0.3 is the canonical float-summation trap: naive
        # left-to-right gives 0.6000000000000001 while other orders give
        # 0.6. All tolerance paths must agree on regions that land exactly
        # on the bound, whatever mutation order built the state.
        from repro import RoadNetworkBuilder

        builder = RoadNetworkBuilder(name="float-trap")
        for jid, x in enumerate((0.0, 1.0, 2.0, 3.0)):
            builder.add_junction(jid, x, 0.0)
        for sid, length in enumerate((0.1, 0.2, 0.3)):
            builder.add_segment(sid, sid, sid + 1, length=length)
        network = builder.build()
        region = {0, 1, 2}
        for bound in (0.6, 0.6000000000000001, 0.5999999999999999, 0.7):
            spec = ToleranceSpec(max_total_length=bound)
            expected = spec.fits(network, region)
            for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
                state = RegionState(network, order)
                assert spec.fits_state(state) == expected, (bound, order)
            # Clone-derived and remove-derived states must agree too.
            grown = RegionState(network, (0, 1, 2))
            derived = grown.clone()
            assert spec.fits_state(derived) == expected, bound
            prefix = RegionState(network, (0, 1))
            assert spec.fits_after_add(prefix, 2) == expected, bound
            via_remove = RegionState(network, (0, 1, 2))
            via_remove.remove(2)
            assert spec.fits_after_add(via_remove, 2) == expected, bound

    def test_eligible_candidates_state_path_identical(self):
        spec = ToleranceSpec(max_segments=8, max_diagonal=420.0)
        state = RegionState(GRID, (27,))
        region = {27}
        for _ in range(5):
            fast = eligible_candidates(GRID, region, spec, state=state)
            slow = eligible_candidates(GRID, region, spec)
            assert fast == slow
            if not fast:
                break
            state.add(fast[0])
            region.add(fast[0])


class TestEngineEquivalence:
    """The refactor must not change a single protocol-visible byte."""

    NETWORKS = [
        ("grid", grid_network(9, 9)),
        ("delaunay", random_delaunay_network(n_junctions=70, target_segments=140, seed=5)),
    ]

    @pytest.mark.parametrize("label,network", NETWORKS, ids=[n for n, _ in NETWORKS])
    @pytest.mark.parametrize("algo_name", ["rge", "rple"])
    def test_envelopes_byte_identical_and_cross_reversible(self, label, network, algo_name):
        snapshot = PopulationSnapshot.from_counts(
            {sid: (sid % 3) for sid in network.segment_ids()}
        )
        diag = network.bounding_box().diagonal
        tolerance = ToleranceSpec(
            max_segments=40,
            max_total_length=network.total_length() / 2.0,
            max_diagonal=diag,
        )
        profile = PrivacyProfile(
            [
                LevelRequirement(k=6, l=3, tolerance=tolerance),
                LevelRequirement(k=12, l=5, tolerance=tolerance),
            ]
        )
        chain = KeyChain.from_passphrases(["eq-1", "eq-2"])
        algorithm = (
            None
            if algo_name == "rge"
            else ReversiblePreassignmentExpansion.for_network(network)
        )
        fast = ReverseCloakEngine(network, algorithm)
        slow = ReverseCloakEngine(network, algorithm, incremental=False)
        user = snapshot.occupied_segments()[0]

        fast_envelope = fast.anonymize(user, snapshot, profile, chain)
        slow_envelope = slow.anonymize(user, snapshot, profile, chain)
        # Byte-identical: same regions, same digests, same MACs, same JSON.
        assert fast_envelope == slow_envelope
        assert fast_envelope.to_json() == slow_envelope.to_json()

        # Envelopes from either engine reverse correctly under the other.
        for mode in ("hint", "search", "auto"):
            from_fast = slow.deanonymize(fast_envelope, chain, 0, mode=mode)
            from_slow = fast.deanonymize(slow_envelope, chain, 0, mode=mode)
            assert from_fast.region_at(0) == (user,)
            assert from_slow.region_at(0) == (user,)
            assert from_fast.regions == from_slow.regions
            assert from_fast.removed == from_slow.removed
