"""Tests for the per-step witness mechanism (decision D13)."""

import pytest

from repro import KeyChain, PopulationSnapshot, PrivacyProfile, ReverseCloakEngine
from repro.core.envelope import witness_byte
from repro.keys import AccessKey


@pytest.fixture(scope="module")
def key():
    return AccessKey.from_passphrase(1, "witness-test")


class TestWitnessByte:
    def test_deterministic(self, key):
        assert witness_byte(key, 3, 42) == witness_byte(key, 3, 42)

    def test_byte_range(self, key):
        for step in range(1, 20):
            assert 0 <= witness_byte(key, step, 7) <= 255

    def test_step_sensitivity(self, key):
        values = {witness_byte(key, step, 42) for step in range(1, 40)}
        assert len(values) > 1

    def test_anchor_sensitivity(self, key):
        values = {witness_byte(key, 1, anchor) for anchor in range(40)}
        assert len(values) > 1

    def test_key_sensitivity(self, key):
        other = AccessKey.from_passphrase(1, "other")
        differing = sum(
            1
            for anchor in range(64)
            if witness_byte(key, 1, anchor) != witness_byte(other, 1, anchor)
        )
        assert differing > 48  # ~255/256 expected to differ

    def test_roughly_uniform(self, key):
        """Witness bytes behave like PRF output (no obvious bias)."""
        values = [witness_byte(key, step, 5) for step in range(1, 513)]
        low = sum(1 for value in values if value < 128)
        assert 180 < low < 332  # ~256 +- generous slack


class TestWitnessesInEnvelopes:
    def test_hinted_envelope_carries_witnesses(
        self, rge_engine, dense_snapshot, profile3, chain3
    ):
        envelope = rge_engine.anonymize(90, dense_snapshot, profile3, chain3)
        for record in envelope.levels:
            assert len(record.witnesses) == record.steps
            assert all(0 <= byte <= 255 for byte in record.witnesses)

    def test_search_envelope_has_none(
        self, rge_engine, dense_snapshot, profile3, chain3
    ):
        envelope = rge_engine.anonymize(
            90, dense_snapshot, profile3, chain3, include_hints=False
        )
        for record in envelope.levels:
            assert record.witnesses == ()

    def test_witnesses_match_true_anchors(
        self, rge_engine, dense_snapshot, profile3, chain3
    ):
        """Every recorded witness verifies against the true per-step anchor
        (recovered via full reversal)."""
        envelope = rge_engine.anonymize(90, dense_snapshot, profile3, chain3)
        result = rge_engine.deanonymize(envelope, chain3, target_level=0)
        for level in range(1, envelope.top_level + 1):
            record = envelope.level_record(level)
            key = chain3.key_for(level)
            # added order = reversed removal order; the step-j anchor is the
            # previous addition (or the level's start for step 1)
            added = list(reversed(result.removed[level]))
            inner = list(result.regions[level - 1])
            previous_levels_last = None
            # reconstruct anchors: start anchor, then each addition
            start_anchor = (
                result.regions[0][0]
                if level == 1
                else list(reversed(result.removed[level - 1] or ()))[-1]
                if result.removed.get(level - 1)
                else None
            )
            anchors = []
            anchor = start_anchor
            for segment in added:
                anchors.append(anchor)
                anchor = segment
            for step, step_anchor in enumerate(anchors, start=1):
                if step_anchor is None:
                    continue
                assert witness_byte(key, step, step_anchor) == record.witnesses[
                    step - 1
                ]

    def test_tampered_witness_detected(
        self, rge_engine, dense_snapshot, profile3, chain3
    ):
        from repro import CloakEnvelope
        from repro.errors import KeyMismatchError

        envelope = rge_engine.anonymize(90, dense_snapshot, profile3, chain3)
        document = envelope.to_dict()
        level_with_steps = next(
            item for item in document["levels"] if item["steps"] > 0
        )
        level_with_steps["witnesses"][0] ^= 0xFF
        tampered = CloakEnvelope.from_dict(document)
        with pytest.raises(KeyMismatchError):
            rge_engine.deanonymize(tampered, chain3, target_level=0)

    def test_witness_mismatched_count_rejected(self):
        from repro.core import LevelRecord, ToleranceSpec
        from repro.errors import EnvelopeError

        with pytest.raises(EnvelopeError):
            LevelRecord(
                level=1,
                steps=3,
                k=5,
                l=2,
                tolerance=ToleranceSpec(max_segments=10),
                sealed_anchor=None,
                sealed_start=None,
                witnesses=(1, 2),  # two witnesses for three steps
                mac="x",
                digest="y",
            )
