"""Tests for the adversary models (paper security claims, experiment E10)."""

import pytest

from repro import KeyChain, PrivacyProfile, ReverseCloakEngine
from repro.attacks import KeyProbeAdversary, StructuralAdversary


@pytest.fixture(scope="module")
def envelope_and_truth(grid10, dense_snapshot):
    profile = PrivacyProfile.uniform(
        levels=2, base_k=3, k_step=3, base_l=2, l_step=1, max_segments=60
    )
    chain = KeyChain.from_passphrases(["atk1", "atk2"])
    engine = ReverseCloakEngine(grid10)
    envelope = engine.anonymize(90, dense_snapshot, profile, chain)
    return envelope, 90, chain, engine


class TestStructuralAdversary:
    def test_true_inner_region_among_candidates(
        self, grid10, envelope_and_truth
    ):
        envelope, user_segment, chain, engine = envelope_and_truth
        adversary = StructuralAdversary(grid10)
        posterior = adversary.attack_envelope(envelope, target_level=0)
        assert frozenset({user_segment}) in set(posterior.candidate_regions)

    def test_posterior_is_spread_not_pinpointed(self, grid10, envelope_and_truth):
        """The paper's claim: without the key the adversary cannot single
        out the user — many candidates remain plausible."""
        envelope, user_segment, __, __ = envelope_and_truth
        adversary = StructuralAdversary(grid10)
        posterior = adversary.attack_envelope(envelope, target_level=0)
        assert posterior.candidate_count >= 3
        assert posterior.probability_of({user_segment}) < 0.6
        assert posterior.entropy() > 1.0

    def test_user_segment_posterior_sums_to_one(self, grid10, envelope_and_truth):
        envelope, user_segment, __, __ = envelope_and_truth
        adversary = StructuralAdversary(grid10)
        weights = adversary.user_segment_posterior(envelope)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert user_segment in weights

    def test_partial_peel_enumeration(self, grid10, envelope_and_truth):
        envelope, __, chain, engine = envelope_and_truth
        truth = engine.deanonymize(envelope, chain, target_level=1)
        adversary = StructuralAdversary(grid10)
        posterior = adversary.attack_envelope(envelope, target_level=1)
        assert frozenset(truth.regions[1]) in set(posterior.candidate_regions)

    def test_zero_steps_unique_candidate(self, grid10):
        adversary = StructuralAdversary(grid10)
        posterior = adversary.enumerate_level({0, 1, 2}, steps=0)
        assert posterior.candidate_regions == (frozenset({0, 1, 2}),)
        assert posterior.entropy() == 0.0

    def test_sequence_cap_respected(self, grid10, envelope_and_truth):
        envelope, __, __, __ = envelope_and_truth
        tiny = StructuralAdversary(grid10, max_sequences=10)
        posterior = tiny.attack_envelope(envelope, target_level=0)
        assert sum(posterior.sequence_counts.values()) <= 10


class TestKeyProbeAdversary:
    def test_random_keys_always_rejected(self, grid10, envelope_and_truth):
        envelope, __, __, __ = envelope_and_truth
        adversary = KeyProbeAdversary(grid10, seed=1)
        outcome = adversary.probe(envelope, trials=8)
        assert outcome == {"rejected": 8, "accepted": 0}
