"""Tests for the intersection attack on continuous cloaking."""

import pytest

from repro import (
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.attacks import IntersectionAttack
from repro.lbs import ContinuousCloaker


@pytest.fixture(scope="module")
def timeline():
    network = grid_network(10, 10)
    simulator = TrafficSimulator(network, n_cars=400, seed=55)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    profile = PrivacyProfile.uniform(
        levels=2, base_k=6, k_step=4, base_l=3, l_step=1, max_segments=50
    )
    cloaker = ContinuousCloaker(engine, simulator, profile)
    return cloaker.run(user_id=11, ticks=8, interval_seconds=6.0)


class TestUserIntersection:
    def test_true_user_always_survives(self, timeline):
        trace = IntersectionAttack().user_candidates(timeline)
        assert 11 in trace.final_candidates

    def test_candidates_monotonically_shrink(self, timeline):
        trace = IntersectionAttack().user_candidates(timeline)
        counts = trace.candidate_counts
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_first_tick_meets_k(self, timeline):
        trace = IntersectionAttack().user_candidates(timeline)
        # the first cloak alone hides >= k users (k of the top level = 10)
        assert trace.candidate_counts[0] >= 10

    def test_linking_erodes_anonymity(self, timeline):
        """The attack's point: the intersection is strictly smaller than any
        single cloak's candidate set after several observations."""
        trace = IntersectionAttack().user_candidates(timeline)
        assert trace.candidate_counts[-1] < trace.candidate_counts[0]

    def test_entropy_series_tracks_counts(self, timeline):
        trace = IntersectionAttack().user_candidates(timeline)
        entropies = trace.entropy_series()
        assert len(entropies) == len(trace.candidate_counts)
        assert all(b <= a + 1e-9 for a, b in zip(entropies, entropies[1:]))

    def test_identification_flags_consistent(self, timeline):
        trace = IntersectionAttack().user_candidates(timeline)
        if trace.identified:
            assert trace.final_candidates == frozenset({11})
            assert trace.ticks_to_identify is not None
            assert (
                trace.candidate_counts[trace.ticks_to_identify] == 1
            )
        else:
            assert len(trace.final_candidates) > 1
            assert trace.ticks_to_identify is None


class TestSegmentIntersection:
    def test_moving_user_often_empties_segments(self, timeline):
        """Region-only linking against a moving user collapses toward the
        (possibly empty) set of segments the user kept revisiting."""
        common = IntersectionAttack().segment_candidates(timeline)
        first = set(timeline.entry(0).envelope.region)
        assert set(common) <= first
