"""Tests for the entropy metrics."""

import math

import pytest

from repro.attacks import (
    level_entropy_profile,
    segment_entropy,
    shannon_entropy,
    uniform_entropy,
    user_entropy,
    weighted_segment_entropy,
)
from repro.mobility import PopulationSnapshot


class TestShannonEntropy:
    def test_uniform_two(self):
        assert shannon_entropy([0.5, 0.5]) == pytest.approx(1.0)

    def test_deterministic_zero(self):
        assert shannon_entropy([1.0]) == pytest.approx(0.0)

    def test_skips_zero_probabilities(self):
        assert shannon_entropy([0.5, 0.5, 0.0]) == pytest.approx(1.0)

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            shannon_entropy([0.5, 0.2])

    def test_skewed_less_than_uniform(self):
        assert shannon_entropy([0.9, 0.1]) < 1.0


class TestUniformEntropy:
    def test_log2(self):
        assert uniform_entropy(8) == pytest.approx(3.0)

    def test_single_outcome(self):
        assert uniform_entropy(1) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_entropy(0)


class TestRegionEntropies:
    def test_segment_entropy(self):
        assert segment_entropy({1, 2, 3, 4}) == pytest.approx(2.0)

    def test_segment_entropy_empty_rejected(self):
        with pytest.raises(ValueError):
            segment_entropy(set())

    def test_user_entropy(self):
        snapshot = PopulationSnapshot.from_counts({1: 2, 2: 2})
        assert user_entropy({1, 2}, snapshot) == pytest.approx(2.0)

    def test_user_entropy_no_users_rejected(self):
        snapshot = PopulationSnapshot.from_counts({9: 1})
        with pytest.raises(ValueError):
            user_entropy({1, 2}, snapshot)

    def test_weighted_entropy_below_uniform_when_skewed(self):
        snapshot = PopulationSnapshot.from_counts({1: 20, 2: 0, 3: 0, 4: 0})
        weighted = weighted_segment_entropy({1, 2, 3, 4}, snapshot)
        assert weighted < segment_entropy({1, 2, 3, 4})

    def test_weighted_entropy_equals_uniform_when_even(self):
        snapshot = PopulationSnapshot.from_counts({1: 3, 2: 3, 3: 3, 4: 3})
        assert weighted_segment_entropy({1, 2, 3, 4}, snapshot) == pytest.approx(
            2.0
        )


class TestLevelProfile:
    def test_entropy_decreases_with_level(self):
        snapshot = PopulationSnapshot.from_counts(
            {segment_id: 2 for segment_id in range(16)}
        )
        regions = {0: [5], 1: [4, 5, 6], 2: list(range(10))}
        profile = level_entropy_profile(regions, snapshot)
        assert profile[0]["segments"] == 0.0
        assert (
            profile[0]["segments"]
            < profile[1]["segments"]
            < profile[2]["segments"]
        )
        assert profile[1]["users"] == pytest.approx(math.log2(6))
