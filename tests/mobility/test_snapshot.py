"""Tests for population snapshots."""

import pytest

from repro.errors import MobilityError
from repro.mobility import PopulationSnapshot


@pytest.fixture()
def snapshot():
    return PopulationSnapshot({0: 10, 1: 10, 2: 11, 3: 12}, time=5.0)


class TestBasics:
    def test_counts(self, snapshot):
        assert snapshot.user_count == 4
        assert snapshot.count_on(10) == 2
        assert snapshot.count_on(11) == 1
        assert snapshot.count_on(99) == 0

    def test_users_on_sorted(self, snapshot):
        assert snapshot.users_on(10) == (0, 1)
        assert snapshot.users_on(99) == ()

    def test_segment_of(self, snapshot):
        assert snapshot.segment_of(2) == 11
        with pytest.raises(MobilityError):
            snapshot.segment_of(42)

    def test_has_user(self, snapshot):
        assert snapshot.has_user(0)
        assert not snapshot.has_user(42)

    def test_time(self, snapshot):
        assert snapshot.time == 5.0

    def test_users_sorted(self, snapshot):
        assert snapshot.users() == (0, 1, 2, 3)


class TestRegions:
    def test_count_in_region(self, snapshot):
        assert snapshot.count_in_region({10, 11}) == 3
        assert snapshot.count_in_region(set()) == 0

    def test_users_in_region(self, snapshot):
        assert snapshot.users_in_region({11, 12}) == (2, 3)

    def test_occupied_segments(self, snapshot):
        assert snapshot.occupied_segments() == (10, 11, 12)

    def test_counts_dict_is_copy(self, snapshot):
        counts = snapshot.counts()
        counts[10] = 999
        assert snapshot.count_on(10) == 2


class TestFromCounts:
    def test_builds_expected_population(self):
        snapshot = PopulationSnapshot.from_counts({5: 3, 7: 1})
        assert snapshot.user_count == 4
        assert snapshot.count_on(5) == 3
        assert snapshot.count_on(7) == 1

    def test_user_ids_consecutive(self):
        snapshot = PopulationSnapshot.from_counts({5: 2, 7: 2})
        assert snapshot.users() == (0, 1, 2, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(MobilityError):
            PopulationSnapshot.from_counts({5: -1})

    def test_zero_count_segment_vacant(self):
        snapshot = PopulationSnapshot.from_counts({5: 0, 6: 1})
        assert snapshot.count_on(5) == 0
        assert snapshot.occupied_segments() == (6,)
