"""Tests for mobility trace capture and persistence."""

import pytest

from repro.errors import MobilityError
from repro.mobility import MobilityTrace, TraceRecord, TrafficSimulator, record_trace
from repro.roadnet import grid_network


@pytest.fixture(scope="module")
def small_trace():
    simulator = TrafficSimulator(grid_network(6, 6), n_cars=12, seed=3)
    return record_trace(simulator, steps=4)


class TestRecordTrace:
    def test_record_count(self, small_trace):
        # (steps + 1) observations x 12 cars
        assert len(small_trace) == 5 * 12

    def test_times(self, small_trace):
        assert small_trace.times() == (0.0, 1.0, 2.0, 3.0, 4.0)

    def test_snapshot_at_initial(self, small_trace):
        snapshot = small_trace.snapshot_at(0.0)
        assert snapshot.user_count == 12
        assert snapshot.time == 0.0

    def test_snapshot_at_missing_time(self, small_trace):
        with pytest.raises(MobilityError):
            small_trace.snapshot_at(99.0)


class TestTraceMutation:
    def test_append_ordered(self):
        trace = MobilityTrace()
        trace.append(TraceRecord(0.0, 1, 5))
        trace.append(TraceRecord(1.0, 1, 6))
        assert len(trace) == 2

    def test_append_backwards_rejected(self):
        trace = MobilityTrace()
        trace.append(TraceRecord(5.0, 1, 5))
        with pytest.raises(MobilityError):
            trace.append(TraceRecord(1.0, 1, 6))

    def test_constructor_sorts(self):
        trace = MobilityTrace(
            [TraceRecord(1.0, 0, 5), TraceRecord(0.0, 0, 4), TraceRecord(0.0, 1, 9)]
        )
        records = trace.records()
        assert records[0] == TraceRecord(0.0, 0, 4)
        assert records[1] == TraceRecord(0.0, 1, 9)


class TestPersistence:
    def test_csv_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        small_trace.save_csv(path)
        restored = MobilityTrace.load_csv(path)
        assert restored.records() == small_trace.records()

    def test_round_trip_preserves_snapshots(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        small_trace.save_csv(path)
        restored = MobilityTrace.load_csv(path)
        original = small_trace.snapshot_at(2.0)
        loaded = restored.snapshot_at(2.0)
        assert original.counts() == loaded.counts()
