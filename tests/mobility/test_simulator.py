"""Tests for the GTMobiSim-style traffic simulator."""

import pytest

from repro.errors import MobilityError
from repro.mobility import TrafficSimulator, UniformPlacement
from repro.roadnet import grid_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8, spacing=100.0)


class TestConstruction:
    def test_fleet_size(self, grid):
        simulator = TrafficSimulator(grid, n_cars=50, seed=1)
        assert len(simulator.cars) == 50
        assert simulator.snapshot().user_count == 50

    def test_zero_cars(self, grid):
        simulator = TrafficSimulator(grid, n_cars=0, seed=1)
        assert simulator.snapshot().user_count == 0

    def test_negative_cars_rejected(self, grid):
        with pytest.raises(MobilityError):
            TrafficSimulator(grid, n_cars=-1)

    def test_invalid_speed_range(self, grid):
        with pytest.raises(MobilityError):
            TrafficSimulator(grid, n_cars=1, speed_range=(0.0, 10.0))
        with pytest.raises(MobilityError):
            TrafficSimulator(grid, n_cars=1, speed_range=(10.0, 5.0))

    def test_cars_start_on_valid_segments(self, grid):
        simulator = TrafficSimulator(grid, n_cars=30, seed=2)
        for car in simulator.cars:
            assert grid.has_segment(car.segment_id)
            assert 0.0 <= car.offset <= grid.segment_length(car.segment_id)

    def test_deterministic_in_seed(self, grid):
        a = TrafficSimulator(grid, n_cars=20, seed=9)
        b = TrafficSimulator(grid, n_cars=20, seed=9)
        a.run(5)
        b.run(5)
        assert a.snapshot().counts() == b.snapshot().counts()

    def test_different_seeds_differ(self, grid):
        a = TrafficSimulator(grid, n_cars=40, seed=1)
        b = TrafficSimulator(grid, n_cars=40, seed=2)
        assert a.snapshot().counts() != b.snapshot().counts()


class TestMovement:
    def test_time_advances(self, grid):
        simulator = TrafficSimulator(grid, n_cars=5, seed=3)
        simulator.step(2.0)
        assert simulator.time == 2.0
        simulator.run(3, dt=0.5)
        assert simulator.time == pytest.approx(3.5)

    def test_bad_dt_rejected(self, grid):
        simulator = TrafficSimulator(grid, n_cars=1, seed=3)
        with pytest.raises(MobilityError):
            simulator.step(0.0)

    def test_cars_actually_move(self, grid):
        simulator = TrafficSimulator(grid, n_cars=30, seed=4)
        before = simulator.positions()
        simulator.run(10)
        after = simulator.positions()
        moved = sum(
            1 for car_id in before if before[car_id].distance_to(after[car_id]) > 1.0
        )
        assert moved > 25  # nearly everyone moved over 10 s

    def test_positions_stay_on_map(self, grid):
        simulator = TrafficSimulator(grid, n_cars=30, seed=5)
        simulator.run(20)
        bounds = grid.bounding_box()
        for position in simulator.positions().values():
            assert bounds.expanded(1.0).contains(position)

    def test_snapshot_reflects_movement(self, grid):
        simulator = TrafficSimulator(grid, n_cars=50, seed=6)
        first = simulator.snapshot()
        simulator.run(15)
        second = simulator.snapshot()
        assert first.counts() != second.counts()
        assert second.time == pytest.approx(15.0)

    def test_car_lookup(self, grid):
        simulator = TrafficSimulator(grid, n_cars=3, seed=7)
        assert simulator.car(2).car_id == 2
        with pytest.raises(MobilityError):
            simulator.car(99)

    def test_uniform_placement_supported(self, grid):
        simulator = TrafficSimulator(
            grid, n_cars=20, seed=8, placement=UniformPlacement()
        )
        assert simulator.snapshot().user_count == 20

    def test_long_run_is_stable(self, grid):
        # cars re-trip indefinitely without crashing or draining
        simulator = TrafficSimulator(grid, n_cars=10, seed=9, speed_range=(15.0, 25.0))
        simulator.run(200)
        assert simulator.snapshot().user_count == 10
