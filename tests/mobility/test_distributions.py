"""Tests for the placement distributions."""

import numpy as np
import pytest

from repro.errors import MobilityError
from repro.mobility import GaussianPlacement, UniformPlacement
from repro.roadnet import BoundingBox


BOUNDS = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


class TestGaussianPlacement:
    def test_points_inside_bounds(self):
        placement = GaussianPlacement()
        points = placement.sample(500, BOUNDS, np.random.default_rng(1))
        assert len(points) == 500
        assert all(BOUNDS.contains(p) for p in points)

    def test_clusters_near_hotspot(self):
        placement = GaussianPlacement(hotspots=((0.5, 0.5),), sigma_fraction=0.05)
        points = placement.sample(400, BOUNDS, np.random.default_rng(2))
        center_hits = sum(
            1 for p in points if 300 <= p.x <= 700 and 300 <= p.y <= 700
        )
        # with sigma = 5% of the diagonal almost everything lands centrally
        assert center_hits / len(points) > 0.95

    def test_multiple_hotspots_round_robin(self):
        placement = GaussianPlacement(
            hotspots=((0.1, 0.1), (0.9, 0.9)), sigma_fraction=0.03
        )
        points = placement.sample(200, BOUNDS, np.random.default_rng(3))
        near_low = sum(1 for p in points if p.x < 500 and p.y < 500)
        near_high = sum(1 for p in points if p.x >= 500 and p.y >= 500)
        assert near_low == pytest.approx(100, abs=15)
        assert near_high == pytest.approx(100, abs=15)

    def test_deterministic_given_rng_seed(self):
        placement = GaussianPlacement()
        a = placement.sample(50, BOUNDS, np.random.default_rng(7))
        b = placement.sample(50, BOUNDS, np.random.default_rng(7))
        assert a == b

    def test_invalid_configs(self):
        with pytest.raises(MobilityError):
            GaussianPlacement(hotspots=())
        with pytest.raises(MobilityError):
            GaussianPlacement(sigma_fraction=0.0)

    def test_negative_count_rejected(self):
        with pytest.raises(MobilityError):
            GaussianPlacement().sample(-1, BOUNDS, np.random.default_rng(0))


class TestUniformPlacement:
    def test_points_inside_bounds(self):
        points = UniformPlacement().sample(300, BOUNDS, np.random.default_rng(4))
        assert len(points) == 300
        assert all(BOUNDS.contains(p) for p in points)

    def test_spreads_over_quadrants(self):
        points = UniformPlacement().sample(400, BOUNDS, np.random.default_rng(5))
        quadrants = [0, 0, 0, 0]
        for p in points:
            quadrants[(p.x >= 500) * 2 + (p.y >= 500)] += 1
        assert min(quadrants) > 50  # roughly even

    def test_negative_count_rejected(self):
        with pytest.raises(MobilityError):
            UniformPlacement().sample(-5, BOUNDS, np.random.default_rng(0))
