"""Tests for the ASCII map renderer."""

import pytest

from repro.roadnet import grid_network
from repro.toolkit import render_ascii_map


@pytest.fixture(scope="module")
def grid():
    return grid_network(4, 4)


class TestAsciiMap:
    def test_dimensions(self, grid):
        text = render_ascii_map(grid, width=40, height=12)
        lines = text.split("\n")
        assert len(lines) == 12
        assert all(len(line) <= 40 for line in lines)

    def test_roads_drawn_as_dots(self, grid):
        text = render_ascii_map(grid, width=40, height=12)
        assert "." in text

    def test_levels_drawn_as_digits(self, grid):
        text = render_ascii_map(grid, {0: [5], 2: [5, 6, 9]}, width=40, height=12)
        assert "0" in text
        assert "2" in text

    def test_finer_level_wins_overlap(self, grid):
        # level 0 and level 2 both cover segment 5; the cell must show 0
        with_both = render_ascii_map(grid, {0: [5], 2: [5]}, width=40, height=12)
        only_two = render_ascii_map(grid, {2: [5]}, width=40, height=12)
        assert "0" in with_both
        assert "0" not in only_two

    def test_level_above_nine_clamped(self, grid):
        text = render_ascii_map(grid, {11: [5]}, width=40, height=12)
        assert "9" in text

    def test_too_small_raster_rejected(self, grid):
        with pytest.raises(ValueError):
            render_ascii_map(grid, width=4, height=2)
