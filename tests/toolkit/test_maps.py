"""Tests for the shared map-spec resolver."""

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet import grid_network, save_network_json
from repro.toolkit import resolve_map


class TestResolveMap:
    def test_grid_spec(self):
        network = resolve_map("grid:5x7")
        assert network.junction_count == 35

    def test_grid_spec_with_spacing(self):
        network = resolve_map("grid:3x3:250")
        assert network.segment_length(0) == pytest.approx(250.0)

    def test_radial_spec(self):
        network = resolve_map("radial:3x6")
        assert network.junction_count == 19

    def test_atlanta_spec_scaled(self):
        network = resolve_map("atlanta:0.05")
        assert 300 < network.junction_count < 400

    def test_atlanta_spec_with_seed(self):
        a = resolve_map("atlanta:0.05:7")
        b = resolve_map("atlanta:0.05:7")
        assert a.segment_ids() == b.segment_ids()

    def test_figure_fixtures(self):
        assert resolve_map("fig1").segment_count == 24
        assert resolve_map("fig2").has_segment(14)
        assert resolve_map("fig3").has_segment(8)

    def test_json_file_path(self, tmp_path):
        path = tmp_path / "m.json"
        save_network_json(grid_network(3, 3), path)
        assert resolve_map(str(path)).junction_count == 9

    def test_bad_specs_rejected(self):
        for spec in ("", "grid:axb", "radial:2", "atlanta:x", "no-such-file.json"):
            with pytest.raises(RoadNetworkError):
                resolve_map(spec)
