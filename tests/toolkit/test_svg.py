"""Tests for the SVG renderer."""

import pytest

from repro.roadnet import Point, grid_network
from repro.toolkit import LEVEL_PALETTE, SvgMapRenderer


@pytest.fixture(scope="module")
def grid():
    return grid_network(5, 5)


class TestRenderer:
    def test_document_structure(self, grid):
        svg = SvgMapRenderer(grid).render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<line") == grid.segment_count

    def test_regions_add_colored_lines(self, grid):
        base = SvgMapRenderer(grid).render()
        overlaid = SvgMapRenderer(grid).render({0: [12], 1: [12, 13]})
        assert overlaid.count("<line") == base.count("<line") + 3
        assert LEVEL_PALETTE[0] in overlaid
        assert LEVEL_PALETTE[1] in overlaid

    def test_levels_painted_coarse_to_fine(self, grid):
        svg = SvgMapRenderer(grid).render({0: [12], 2: [12, 13, 14]})
        # level 0 (the user) must be painted after (on top of) level 2
        assert svg.rfind(LEVEL_PALETTE[0]) > svg.find(LEVEL_PALETTE[2])

    def test_cars_rendered_as_circles(self, grid):
        svg = SvgMapRenderer(grid).render(
            car_positions=[Point(10, 10), Point(50, 50)]
        )
        assert svg.count("<circle") == 2

    def test_title_and_legend(self, grid):
        svg = SvgMapRenderer(grid).render({0: [12]}, title="hello-title")
        assert "hello-title" in svg
        assert "actual user" in svg

    def test_render_to_file(self, grid, tmp_path):
        path = SvgMapRenderer(grid).render_to_file(tmp_path / "map.svg", {1: [3]})
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_width_validated(self, grid):
        with pytest.raises(ValueError):
            SvgMapRenderer(grid, width=10)

    def test_aspect_ratio_square_grid(self, grid):
        renderer = SvgMapRenderer(grid, width=500, margin=10)
        svg = renderer.render()
        assert 'width="500"' in svg
        assert 'height="500"' in svg  # square map -> square canvas
