"""End-to-end tests of the Anonymizer / De-anonymizer CLI apps."""

import json

import pytest

from repro.core import CloakEnvelope
from repro.toolkit import anonymizer_app, deanonymizer_app


MAP_SPEC = "grid:8x8"


@pytest.fixture()
def cloaked(tmp_path):
    """Run the anonymizer once; returns (envelope path, keys path)."""
    envelope_path = tmp_path / "envelope.json"
    keys_path = tmp_path / "keys.json"
    code = anonymizer_app.main(
        [
            "--map", MAP_SPEC,
            "--cars", "200",
            "--seed", "5",
            "--levels", "3",
            "--base-k", "3",
            "--k-step", "3",
            "--out", str(envelope_path),
            "--keys-out", str(keys_path),
        ]
    )
    assert code == 0
    return envelope_path, keys_path


class TestAnonymizerApp:
    def test_writes_envelope_and_keys(self, cloaked):
        envelope_path, keys_path = cloaked
        envelope = CloakEnvelope.from_json(envelope_path.read_text())
        assert envelope.top_level == 3
        keys = json.loads(keys_path.read_text())
        assert len(keys["levels"]) == 3

    def test_svg_and_ascii_outputs(self, tmp_path, capsys):
        svg_path = tmp_path / "cloak.svg"
        code = anonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--cars", "150",
                "--levels", "2",
                "--base-k", "3",
                "--out", str(tmp_path / "e.json"),
                "--keys-out", str(tmp_path / "k.json"),
                "--svg", str(svg_path),
                "--ascii",
            ]
        )
        assert code == 0
        assert svg_path.read_text().startswith("<svg")
        output = capsys.readouterr().out
        assert "cloaked:" in output

    def test_rple_algorithm(self, tmp_path):
        code = anonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--cars", "150",
                "--levels", "2",
                "--base-k", "3",
                "--algorithm", "rple",
                "--out", str(tmp_path / "e.json"),
                "--keys-out", str(tmp_path / "k.json"),
            ]
        )
        assert code == 0
        envelope = CloakEnvelope.from_json((tmp_path / "e.json").read_text())
        assert envelope.algorithm == "rple"

    def test_explicit_user_segment(self, tmp_path):
        code = anonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--cars", "150",
                "--levels", "2",
                "--base-k", "3",
                "--user-segment", "40",
                "--out", str(tmp_path / "e.json"),
                "--keys-out", str(tmp_path / "k.json"),
            ]
        )
        assert code == 0
        envelope = CloakEnvelope.from_json((tmp_path / "e.json").read_text())
        assert 40 in envelope.region

    def test_error_reported_as_exit_code(self, tmp_path, capsys):
        code = anonymizer_app.main(
            [
                "--map", "grid:2x2",
                "--cars", "2",
                "--levels", "1",
                "--base-k", "500",  # impossible demand
                "--max-segments", "3",
                "--out", str(tmp_path / "e.json"),
                "--keys-out", str(tmp_path / "k.json"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestDeanonymizerApp:
    def test_full_grant_recovers_level_zero(self, cloaked, capsys):
        envelope_path, keys_path = cloaked
        code = deanonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--envelope", str(envelope_path),
                "--keys", str(keys_path),
                "--target-level", "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "L0: 1 segments" in output

    def test_partial_grant_stops_at_level(self, cloaked, capsys):
        envelope_path, keys_path = cloaked
        code = deanonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--envelope", str(envelope_path),
                "--keys", str(keys_path),
                "--grant-from-level", "3",
                "--target-level", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "L2:" in output
        assert "L0:" not in output

    def test_unreachable_target_refused(self, cloaked, capsys):
        envelope_path, keys_path = cloaked
        code = deanonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--envelope", str(envelope_path),
                "--keys", str(keys_path),
                "--grant-from-level", "3",
                "--target-level", "0",
            ]
        )
        assert code == 2

    def test_wrong_map_rejected(self, cloaked, capsys):
        envelope_path, keys_path = cloaked
        code = deanonymizer_app.main(
            [
                "--map", "grid:9x9",
                "--envelope", str(envelope_path),
                "--keys", str(keys_path),
                "--target-level", "0",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_svg_output(self, cloaked, tmp_path):
        envelope_path, keys_path = cloaked
        svg_path = tmp_path / "reduced.svg"
        code = deanonymizer_app.main(
            [
                "--map", MAP_SPEC,
                "--envelope", str(envelope_path),
                "--keys", str(keys_path),
                "--target-level", "1",
                "--svg", str(svg_path),
            ]
        )
        assert code == 0
        assert svg_path.read_text().startswith("<svg")
