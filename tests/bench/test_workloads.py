"""Tests for the shared experiment workloads."""

import pytest

from repro.bench import (
    pick_user_segments,
    standard_network,
    standard_snapshot,
    standard_workload,
    sweep_profile,
)


class TestStandardNetwork:
    def test_grid(self):
        network = standard_network("grid", 8)
        assert network.junction_count == 64

    def test_memoised(self):
        assert standard_network("grid", 8) is standard_network("grid", 8)

    def test_radial(self):
        network = standard_network("radial", 4)
        assert network.junction_count == 4 * 8 + 1

    def test_atlanta_percent(self):
        network = standard_network("atlanta", 5)
        assert 300 < network.junction_count < 400

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            standard_network("mars", 5)


class TestStandardSnapshot:
    def test_population_size(self):
        snapshot = standard_snapshot("grid", 8, n_cars=100)
        assert snapshot.user_count == 100

    def test_memoised(self):
        assert standard_snapshot("grid", 8, 100) is standard_snapshot(
            "grid", 8, 100
        )


class TestUserSampling:
    def test_sample_size_and_occupancy(self):
        snapshot = standard_snapshot("grid", 8, n_cars=100)
        users = pick_user_segments(snapshot, 5)
        assert len(users) == 5
        assert all(snapshot.count_on(segment) > 0 for segment in users)

    def test_deterministic(self):
        snapshot = standard_snapshot("grid", 8, n_cars=100)
        assert pick_user_segments(snapshot, 5) == pick_user_segments(snapshot, 5)

    def test_capped_by_occupied(self):
        snapshot = standard_snapshot("grid", 8, n_cars=3)
        users = pick_user_segments(snapshot, 50)
        assert len(users) <= 3


class TestSweepProfile:
    def test_level1_gets_requested_k(self):
        profile = sweep_profile(levels=3, k=10, l=4)
        assert profile.requirement(1).k == 10
        assert profile.requirement(1).l == 4
        assert profile.requirement(2).k == 15  # +k//2

    def test_single_level(self):
        profile = sweep_profile(levels=1, k=5)
        assert profile.level_count == 1


class TestStandardWorkload:
    def test_consistent_bundle(self):
        workload = standard_workload(kind="grid", size=8, n_cars=100, users=4)
        assert workload.network.junction_count == 64
        assert workload.snapshot.user_count == 100
        assert len(workload.user_segments) == 4
        assert workload.name == "grid-8-100cars"
