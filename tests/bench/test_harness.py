"""Tests for the experiment result tables."""

import pytest

from repro.bench import ResultTable, results_dir


class TestResultTable:
    def test_add_row_validates_columns(self):
        table = ResultTable("EX", "demo", ["a", "b"])
        table.add_row(a=1, b=2)
        with pytest.raises(ValueError):
            table.add_row(a=1)
        with pytest.raises(ValueError):
            table.add_row(a=1, b=2, c=3)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            ResultTable("EX", "demo", [])

    def test_to_text_aligned(self):
        table = ResultTable("EX", "demo title", ["k", "time_ms"])
        table.add_row(k=5, time_ms=1.234)
        table.add_row(k=40, time_ms=19.9)
        text = table.to_text()
        lines = text.split("\n")
        assert lines[0] == "EX: demo title"
        assert "k" in lines[1] and "time_ms" in lines[1]
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_float_formatting(self):
        table = ResultTable("EX", "demo", ["v"])
        table.add_row(v=0.000123)
        table.add_row(v=123456.0)
        text = table.to_text()
        assert "0.000123" in text
        assert "123,456" in text

    def test_save_writes_txt_and_csv(self, tmp_path):
        table = ResultTable("E99", "demo", ["x"])
        table.add_row(x=1)
        path = table.save(tmp_path)
        assert path.read_text().startswith("E99: demo")
        assert (tmp_path / "e99.csv").read_text().startswith("x")

    def test_column_accessor(self):
        table = ResultTable("EX", "demo", ["x", "y"])
        table.add_row(x=1, y=2)
        table.add_row(x=3, y=4)
        assert table.column("x") == [1, 3]
        with pytest.raises(KeyError):
            table.column("z")

    def test_results_dir_created(self, tmp_path):
        directory = results_dir(tmp_path / "nested" / "results")
        assert directory.exists()
