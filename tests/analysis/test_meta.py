"""Meta-tests: the linter's standing relationship with the real tree.

These are the tests that make reprolint a *gate* rather than a demo: the
real ``src/`` must scan clean modulo the committed baseline, the
committed baseline must not be stale, and the golden positive fixtures
must keep failing the CLI (if they ever pass, the rules have gone blind).
"""

import json
from pathlib import Path

from repro.analysis import Baseline, run_analysis, split_findings
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_real_src_is_clean_modulo_baseline(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    exit_code = main(["--format=json", "src"])
    report = json.loads(capsys.readouterr().out)
    assert exit_code == 0, f"new findings in src/: {report['findings']}"
    assert report["findings"] == []


def test_committed_baseline_is_not_stale():
    baseline_path = REPO_ROOT / ".reprolint-baseline.json"
    assert baseline_path.exists(), "commit .reprolint-baseline.json"
    baseline = Baseline.load(baseline_path)
    findings = run_analysis([REPO_ROOT / "src"], root=REPO_ROOT)
    _, stale = split_findings(findings, baseline)
    assert stale == [], (
        "baseline entries no longer occur; regenerate with "
        "`python -m repro.analysis --write-baseline src`"
    )


def test_positive_fixtures_fail_the_cli(monkeypatch, capsys):
    # The ISSUE's acceptance criterion: scanning the golden positive
    # fixtures exits non-zero even with the repo baseline in place.
    monkeypatch.chdir(REPO_ROOT)
    exit_code = main(
        [
            str(FIXTURES / "lock_pos.py"),
            str(FIXTURES / "cache_pos.py"),
            str(FIXTURES / "wire_pos.py"),
            str(FIXTURES / "core" / "determinism_pos.py"),
            str(FIXTURES / "spawn_pos.py"),
            str(FIXTURES / "async_pos.py"),
            str(FIXTURES / "errreg_pos"),
        ]
    )
    capsys.readouterr()
    assert exit_code == 1


def test_every_rule_has_positive_and_negative_coverage():
    from repro.analysis import all_rules

    covered = {
        "lock-discipline",
        "bounded-cache",
        "wire-roundtrip",
        "determinism",
        "spawn-safety",
        "error-registry",
        "async-cancellation",
    }
    assert {rule.id for rule in all_rules()} == covered
