"""Meta-tests: the linter's standing relationship with the real tree.

These are the tests that make reprolint a *gate* rather than a demo: the
real source tree (``src/`` plus the ``benchmarks/``/``examples/`` sweep)
must scan clean modulo the committed baseline, the committed baseline
must not be stale, the golden positive fixtures must keep failing the
CLI (if they ever pass, the rules have gone blind), and every registered
rule must carry a positive fixture, a negative fixture, and a row in the
README rule table.
"""

import json
import re
from pathlib import Path

from repro.analysis import Baseline, all_rules, run_analysis, split_findings
from repro.analysis.cli import main

from test_rules import NEGATIVE_FIXTURES, POSITIVE_FIXTURES

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

#: Rules whose golden coverage lives outside the flat pos/neg pairs.
_PACKAGE_FIXTURES = {"error-registry": ("errreg_pos", "errreg_neg")}


def test_real_src_is_clean_modulo_baseline(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    exit_code = main(["--format=json", "src"])
    report = json.loads(capsys.readouterr().out)
    assert exit_code == 0, f"new findings in src/: {report['findings']}"
    assert report["findings"] == []


def test_swept_side_trees_are_clean(monkeypatch, capsys):
    # The CI gate sweeps benchmarks/ and examples/ too (tests keep their
    # fixture carve-out); they must stay clean without any baseline debt.
    monkeypatch.chdir(REPO_ROOT)
    exit_code = main(["--format=json", "benchmarks", "examples"])
    report = json.loads(capsys.readouterr().out)
    assert exit_code == 0, f"findings in swept trees: {report['findings']}"
    assert report["findings"] == []


def test_committed_baseline_is_not_stale():
    baseline_path = REPO_ROOT / ".reprolint-baseline.json"
    assert baseline_path.exists(), "commit .reprolint-baseline.json"
    baseline = Baseline.load(baseline_path)
    findings = run_analysis([REPO_ROOT / "src"], root=REPO_ROOT)
    _, stale = split_findings(findings, baseline)
    assert stale == [], (
        "baseline entries no longer occur; regenerate with "
        "`python -m repro.analysis --write-baseline src`"
    )


def test_positive_fixtures_fail_the_cli(monkeypatch, capsys):
    # The acceptance criterion: scanning the golden positive fixtures
    # exits non-zero even with the repo baseline in place.
    monkeypatch.chdir(REPO_ROOT)
    positives = [str(FIXTURES / fixture) for fixture, _rule in POSITIVE_FIXTURES]
    positives.append(str(FIXTURES / "errreg_pos"))
    exit_code = main(positives)
    capsys.readouterr()
    assert exit_code == 1


def test_every_rule_has_positive_and_negative_coverage():
    registered = {rule.id for rule in all_rules()}
    positive_by_rule = {rule for _fixture, rule in POSITIVE_FIXTURES}
    positive_by_rule |= set(_PACKAGE_FIXTURES)
    assert registered == positive_by_rule, (
        "every registered rule needs a positive golden fixture wired "
        "into POSITIVE_FIXTURES (and vice versa)"
    )
    # Each positive pairs with a negative of the same stem.
    negatives = set(NEGATIVE_FIXTURES)
    for fixture, rule in POSITIVE_FIXTURES:
        expected = fixture.replace("_pos", "_neg")
        assert expected in negatives, (
            f"rule {rule}: positive fixture {fixture} has no negative "
            f"twin {expected}"
        )
    for rule, (pos, neg) in _PACKAGE_FIXTURES.items():
        assert (FIXTURES / pos).is_dir(), f"{rule}: missing {pos}/"
        assert (FIXTURES / neg).is_dir(), f"{rule}: missing {neg}/"


def test_every_rule_has_a_readme_table_row():
    readme = (REPO_ROOT / "README.md").read_text()
    documented = set(re.findall(r"^\|\s*`([a-z-]+)`\s*\|", readme, re.M))
    registered = {rule.id for rule in all_rules()}
    missing = registered - documented
    assert not missing, (
        f"rules without a README table row: {sorted(missing)}"
    )
