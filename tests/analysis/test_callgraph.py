"""Unit tests of the interprocedural core (``repro.analysis.callgraph``):
indexing, the three-way call-site classification, alias and relative-import
resolution, inheritance method lookup, fact propagation with witnesses,
and the deliberate conservatisms (lambdas opaque, dynamic dispatch
unresolved)."""

import ast

from repro.analysis.callgraph import CallGraph, module_dotted_name
from repro.analysis.core import collect_modules, parse_module


def build_graph(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    project = collect_modules([tmp_path], tmp_path)
    return project.call_graph()


def sites_of(graph, qname):
    return graph.sites[qname]


# ----------------------------------------------------------------------
# naming
# ----------------------------------------------------------------------
def test_module_dotted_name_strips_src_and_init(tmp_path):
    (tmp_path / "src" / "pkg").mkdir(parents=True)
    (tmp_path / "src" / "pkg" / "__init__.py").write_text("")
    (tmp_path / "src" / "pkg" / "mod.py").write_text("")
    init = parse_module(tmp_path / "src" / "pkg" / "__init__.py", tmp_path)
    mod = parse_module(tmp_path / "src" / "pkg" / "mod.py", tmp_path)
    assert module_dotted_name(init) == ("pkg", "pkg")
    assert module_dotted_name(mod) == ("pkg.mod", "pkg")


# ----------------------------------------------------------------------
# indexing
# ----------------------------------------------------------------------
def test_functions_methods_and_nested_defs_are_indexed(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "mod.py": (
                "def top():\n"
                "    def inner():\n"
                "        pass\n"
                "    return inner\n"
                "\n"
                "\n"
                "class Box:\n"
                "    async def get(self):\n"
                "        pass\n"
            )
        },
    )
    assert set(graph.functions) == {
        "mod:top",
        "mod:top.inner",
        "mod:Box.get",
    }
    assert graph.functions["mod:Box.get"].is_async
    assert graph.functions["mod:Box.get"].class_name == "Box"


def test_function_at_resolves_frames_and_lambdas_are_opaque(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "mod.py": (
                "def outer():\n"
                "    x = 1\n"
                "    f = lambda: x + 1\n"
                "    return f\n"
            )
        },
    )
    module = graph.functions["mod:outer"].module
    lam = next(
        node for node in ast.walk(module.tree) if isinstance(node, ast.Lambda)
    )
    owner = graph.function_at(lam)
    assert owner is not None and owner.qname == "mod:outer"
    # Nodes *inside* the lambda belong to no indexed frame.
    assert graph.function_at(lam.body) is None


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def test_local_call_import_alias_and_external_classify_distinctly(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "util.py": "def helper():\n    pass\n",
            "mod.py": (
                "import time\n"
                "from util import helper as h\n"
                "\n"
                "\n"
                "def local():\n"
                "    pass\n"
                "\n"
                "\n"
                "def caller(conn):\n"
                "    local()\n"
                "    h()\n"
                "    time.sleep(1)\n"
                "    conn.recv()\n"
            ),
        },
    )
    by_kind = {
        (site.callee, site.external, site.method)
        for site in sites_of(graph, "mod:caller")
    }
    assert ("mod:local", None, None) in by_kind
    assert ("util:helper", None, None) in by_kind
    assert (None, "time.sleep", "sleep") in by_kind
    assert (None, None, "recv") in by_kind  # dynamic dispatch: method only


def test_relative_imports_resolve_inside_src_packages(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/__init__.py": "",
            "src/pkg/a.py": "def target():\n    pass\n",
            "src/pkg/b.py": (
                "from .a import target\n"
                "\n"
                "\n"
                "def caller():\n"
                "    target()\n"
            ),
        },
    )
    (site,) = sites_of(graph, "pkg.b:caller")
    assert site.callee == "pkg.a:target"


def test_self_calls_resolve_through_inherited_base_methods(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "base.py": (
                "class Base:\n"
                "    def shared(self):\n"
                "        pass\n"
            ),
            "sub.py": (
                "from base import Base\n"
                "\n"
                "\n"
                "class Sub(Base):\n"
                "    def use(self):\n"
                "        self.shared()\n"
                "        self.conn.recv()\n"
            ),
        },
    )
    sites = sites_of(graph, "sub:Sub.use")
    resolved = {site.callee for site in sites}
    assert "base:Base.shared" in resolved
    # ``self.conn.recv()`` is dynamic dispatch: unresolved, method kept.
    dynamic = next(site for site in sites if site.callee is None)
    assert dynamic.external is None and dynamic.method == "recv"


def test_awaited_flag_and_lambda_bodies_excluded(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "mod.py": (
                "import asyncio\n"
                "import time\n"
                "\n"
                "\n"
                "async def caller(loop):\n"
                "    await asyncio.sleep(0)\n"
                "    loop.call_later(1, lambda: time.sleep(1))\n"
            )
        },
    )
    sites = sites_of(graph, "mod:caller")
    externals = {site.external for site in sites}
    # The lambda's time.sleep is deferred work, not this frame's call.
    assert "time.sleep" not in externals
    awaited = next(s for s in sites if s.external == "asyncio.sleep")
    assert awaited.awaited


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
_CHAIN = {
    "mod.py": (
        "import time\n"
        "\n"
        "\n"
        "def low():\n"
        "    time.sleep(1)\n"
        "\n"
        "\n"
        "async def alow():\n"
        "    pass\n"
        "\n"
        "\n"
        "def mid():\n"
        "    low()\n"
        "\n"
        "\n"
        "def top():\n"
        "    mid()\n"
        "\n"
        "\n"
        "def calls_async():\n"
        "    alow()\n"
    )
}


def test_propagate_reaches_transitive_callers_with_witnesses(tmp_path):
    graph = build_graph(tmp_path, _CHAIN)
    facts = graph.propagate({"mod:low": "blocking time.sleep"})
    assert set(facts) == {"mod:low", "mod:mid", "mod:top"}
    assert facts["mod:low"].reason == "blocking time.sleep"
    assert facts["mod:top"].via is not None
    assert facts["mod:top"].via.callee == "mod:mid"
    chain = graph.chain(facts["mod:top"], facts)
    assert "low()" in chain and "blocking time.sleep" in chain


def test_propagate_through_predicate_stops_conduction(tmp_path):
    graph = build_graph(tmp_path, _CHAIN)
    facts = graph.propagate(
        {"mod:alow": "async seed"},
        through=lambda info: not info.is_async,
    )
    # The async holder keeps its fact but does not conduct it upward.
    assert set(facts) == {"mod:alow"}


def test_callers_of_lists_resolved_call_sites(tmp_path):
    graph = build_graph(tmp_path, _CHAIN)
    callers = graph.callers_of("mod:low")
    assert [site.caller for site in callers] == ["mod:mid"]
    assert graph.callers_of("mod:absent") == []
