"""The CI-gate speed contract: content-hash parse caching and the
``--jobs`` parallel parse path.

The cache test asserts *identity*, not just speed — a warm run must hand
back the very same ``ModuleInfo`` objects (and therefore the same parsed
ASTs), because that is what makes repeated in-process runs (the test
suite calls ``run_analysis`` dozens of times) cheap. The wall-clock
budget on a warm full-tree run is deliberately generous: it catches a
cache that silently stopped working (a full re-parse costs multiples of
the budget), not scheduler noise.
"""

import time

from repro.analysis import run_analysis
from repro.analysis.core import (
    collect_modules,
    parse_module,
    purge_parse_cache,
)
from test_meta import REPO_ROOT

#: Warm full-tree budget, seconds. A cold parse+analyze of src/ takes
#: ~1.5 s here; a working cache brings the re-parse share to ~0. Only a
#: broken cache (full re-parse every run) can push a warm run past this.
_WARM_BUDGET_S = 10.0


def test_unchanged_file_is_served_from_cache(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    purge_parse_cache()
    first = parse_module(target, tmp_path)
    second = parse_module(target, tmp_path)
    assert second is first


def test_edited_file_reparses_and_replaces_the_entry(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    purge_parse_cache()
    first = parse_module(target, tmp_path)
    target.write_text("def f():\n    return 2\n")
    second = parse_module(target, tmp_path)
    assert second is not first
    assert "return 2" in second.source
    # The edited parse becomes the new cached entry.
    assert parse_module(target, tmp_path) is second


def test_warm_full_tree_run_reuses_modules_and_meets_budget():
    src = REPO_ROOT / "src"
    purge_parse_cache()
    cold = collect_modules([src], REPO_ROOT)
    started = time.monotonic()
    warm_findings = run_analysis([src], root=REPO_ROOT)
    elapsed = time.monotonic() - started
    warm = collect_modules([src], REPO_ROOT)
    cold_by_path = {module.rel_path: module for module in cold.modules}
    assert warm.modules, "src/ scan found no modules"
    for module in warm.modules:
        assert module is cold_by_path[module.rel_path]
    assert elapsed < _WARM_BUDGET_S, (
        f"warm full-tree run took {elapsed:.1f}s — the parse cache has "
        "likely stopped working"
    )
    assert isinstance(warm_findings, list)


def test_parallel_jobs_matches_serial_results(tmp_path):
    # Enough files to clear the serial-fallback floor, including one
    # with findings and one that fails to parse.
    for index in range(10):
        (tmp_path / f"ok_{index}.py").write_text(
            f"def f_{index}():\n    return {index}\n"
        )
    (tmp_path / "leak.py").write_text(
        "import socket\n"
        "\n"
        "\n"
        "def leak(addr):\n"
        "    sock = socket.create_connection(addr)\n"
        "    sock.sendall(b'x')\n"
    )
    (tmp_path / "broken.py").write_text("def broken(:\n")
    purge_parse_cache()
    serial = run_analysis([tmp_path], root=tmp_path)
    purge_parse_cache()
    parallel = run_analysis([tmp_path], root=tmp_path, jobs=2)
    assert [f.to_dict() for f in parallel] == [f.to_dict() for f in serial]
    assert {f.rule for f in parallel} == {"resource-lifecycle", "parse-error"}
