"""Golden-fixture tests for every reprolint rule.

Each rule has a positive fixture (the historical bug shape it exists to
catch, marked with ``EXPECT`` comments) and a negative fixture (the
repo's sanctioned idioms, which must stay quiet). The tests pin both the
rule ids and the flagged lines, so a rule that drifts — stops firing, or
starts over-firing — fails here before it rots the CI gate.
"""

from pathlib import Path

import pytest

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "fixtures"


def scan(*names):
    return run_analysis([FIXTURES / name for name in names], root=FIXTURES)


def expected_lines(path):
    """Line numbers carrying an ``EXPECT`` marker in a fixture."""
    lines = (FIXTURES / path).read_text().splitlines()
    return sorted(
        index for index, text in enumerate(lines, start=1) if "EXPECT" in text
    )


POSITIVE_FIXTURES = [
    ("lock_pos.py", "lock-discipline"),
    ("cache_pos.py", "bounded-cache"),
    ("wire_pos.py", "wire-roundtrip"),
    ("core/determinism_pos.py", "determinism"),
    ("spawn_pos.py", "spawn-safety"),
    ("async_pos.py", "async-cancellation"),
    ("loopblock_pos.py", "loop-blocking-call"),
    ("taskleak_pos.py", "task-leak"),
    ("awaitlock_pos.py", "await-under-lock"),
    ("resource_pos.py", "resource-lifecycle"),
    ("loopmut_pos.py", "threadsafe-loop-mutation"),
]

NEGATIVE_FIXTURES = [
    "lock_neg.py",
    "cache_neg.py",
    "wire_neg.py",
    "core/determinism_neg.py",
    "spawn_neg.py",
    "async_neg.py",
    "loopblock_neg.py",
    "taskleak_neg.py",
    "awaitlock_neg.py",
    "resource_neg.py",
    "loopmut_neg.py",
]


@pytest.mark.parametrize("fixture, rule", POSITIVE_FIXTURES)
def test_positive_fixture_fires_on_every_marked_line(fixture, rule):
    findings = scan(fixture)
    assert findings, f"{fixture}: expected findings, got none"
    assert {f.rule for f in findings} == {rule}
    assert sorted({f.line for f in findings}) == expected_lines(fixture)


@pytest.mark.parametrize("fixture", NEGATIVE_FIXTURES)
def test_negative_fixture_is_clean(fixture):
    assert scan(fixture) == []


def test_error_registry_positive_package():
    findings = scan("errreg_pos")
    assert {f.rule for f in findings} == {"error-registry"}
    by_path = {}
    for finding in findings:
        by_path.setdefault(Path(finding.path).name, []).append(finding)
    # Registry side: one duplicate declaration + two base-above-derived
    # ordering violations.
    registry = [f.message for f in by_path["errors.py"]]
    assert sum("more than once" in m for m in registry) == 1
    assert sum("order most-derived-first" in m for m in registry) == 2
    # Use side: a literal table outside errors.py + an undeclared code.
    uses = [f.message for f in by_path["wire.py"]]
    assert sum("outside" in m for m in uses) == 1
    assert sum("bogus_code" in m for m in uses) == 1


def test_error_registry_negative_package():
    assert scan("errreg_neg") == []


def test_determinism_rule_scoped_to_oracle_packages(tmp_path):
    # The same forbidden call outside core/keys/roadnet is not governed.
    source = "import time\n\n\ndef stamp():\n    return time.time()\n"
    governed = tmp_path / "core"
    governed.mkdir()
    (governed / "mod.py").write_text(source)
    ungoverned = tmp_path / "lbs"
    ungoverned.mkdir()
    (ungoverned / "mod.py").write_text(source)
    findings = run_analysis([tmp_path], root=tmp_path)
    assert [f.path for f in findings] == ["core/mod.py"]


def test_lock_discipline_catches_historical_counter_shape(tmp_path):
    # The PR 2 TrustedAnonymizer bug, distilled: one guarded increment,
    # one bare one.
    (tmp_path / "svc.py").write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._requests_served = 0\n"
        "\n"
        "    def handle(self):\n"
        "        with self._lock:\n"
        "            self._requests_served += 1\n"
        "\n"
        "    def handle_fast(self):\n"
        "        self._requests_served += 1\n"
    )
    findings = run_analysis([tmp_path], root=tmp_path)
    assert [(f.rule, f.line) for f in findings] == [("lock-discipline", 14)]


def test_resource_lifecycle_catches_pr9_fd_inheritance_shape(tmp_path):
    # The PR 9 spawn bug, distilled: the parent's duplicate of the
    # child's pipe end was closed only when the spawn succeeded, so a
    # failed spawn leaked an FD into every later-forked worker and EOF
    # never reached the reader.
    (tmp_path / "pool.py").write_text(
        "import multiprocessing\n"
        "\n"
        "\n"
        "def spawn_worker(worker_main, make_handle):\n"
        "    context = multiprocessing.get_context('spawn')\n"
        "    parent_end, child_end = context.Pipe()\n"
        "    process = context.Process(\n"
        "        target=worker_main, args=(child_end,)\n"
        "    )\n"
        "    process.start()\n"
        "    if process.is_alive():\n"
        "        child_end.close()\n"
        "    return make_handle(parent_end, process)\n"
    )
    findings = run_analysis([tmp_path], root=tmp_path)
    assert [(f.rule, f.line) for f in findings] == [("resource-lifecycle", 6)]
    message = findings[0].message
    assert "child_end" in message
    assert "some paths" in message
    assert "child Process" in message


def test_loop_blocking_finding_names_the_witness_chain(tmp_path):
    # The interprocedural rules must explain *how* the loop blocks, not
    # just that it does — the chain is the actionable part.
    (tmp_path / "srv.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def low():\n"
        "    time.sleep(1.0)\n"
        "\n"
        "\n"
        "def mid():\n"
        "    low()\n"
        "\n"
        "\n"
        "async def top():\n"
        "    mid()\n"
    )
    findings = run_analysis([tmp_path], root=tmp_path)
    assert [f.rule for f in findings] == ["loop-blocking-call"]
    message = findings[0].message
    assert "mid()" in message and "low()" in message
    assert "time.sleep" in message


def test_parse_error_is_reported_not_raised(tmp_path):
    (tmp_path / "bad.py").write_text("def broken(:\n")
    findings = run_analysis([tmp_path], root=tmp_path)
    assert [f.rule for f in findings] == ["parse-error"]
