"""SARIF output contract: a valid minimal 2.1.0 log that GitHub code
scanning can ingest — every registered rule in the driver catalogue,
repo-relative URIs, 1-based lines, and line-number-free fingerprints
that stay stable across unrelated edits (the same identity the committed
baseline uses)."""

import json

from repro.analysis import all_rules
from repro.analysis.cli import main
from repro.analysis.core import Finding
from repro.analysis.sarif import render_sarif


def make_finding(line=7, context="sock = socket.socket()"):
    return Finding(
        rule="resource-lifecycle",
        path="src/repro/lbs/frontend.py",
        line=line,
        message="socket is never closed",
        context=context,
    )


def test_log_shape_and_driver_catalogue():
    log = render_sarif([make_finding()], all_rules())
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    catalogued = {rule["id"] for rule in driver["rules"]}
    assert {rule.id for rule in all_rules()} <= catalogued
    assert "parse-error" in catalogued
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]


def test_result_location_and_rule_index():
    log = render_sarif([make_finding()], all_rules())
    run = log["runs"][0]
    (result,) = run["results"]
    assert result["ruleId"] == "resource-lifecycle"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/lbs/frontend.py"
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert location["region"]["startLine"] == 7
    # ruleIndex must point back into the driver catalogue.
    index = result["ruleIndex"]
    assert run["tool"]["driver"]["rules"][index]["id"] == "resource-lifecycle"


def test_fingerprint_survives_line_drift_but_not_context_change():
    base = render_sarif([make_finding(line=7)], all_rules())
    moved = render_sarif([make_finding(line=99)], all_rules())
    edited = render_sarif(
        [make_finding(line=7, context="sock = other()")], all_rules()
    )

    def fp(log):
        return log["runs"][0]["results"][0]["partialFingerprints"][
            "reprolintFingerprint/v1"
        ]

    assert fp(base) == fp(moved)  # alert identity tracks the baseline's
    assert fp(base) != fp(edited)


def test_cli_sarif_format_emits_parseable_log(tmp_path, monkeypatch, capsys):
    (tmp_path / "mod.py").write_text(
        "import socket\n"
        "\n"
        "\n"
        "def leak(addr):\n"
        "    sock = socket.create_connection(addr)\n"
        "    sock.sendall(b'x')\n"
    )
    monkeypatch.chdir(tmp_path)
    exit_code = main(["--format=sarif", "--no-baseline", "mod.py"])
    log = json.loads(capsys.readouterr().out)
    assert exit_code == 1  # exit contract unchanged by the format
    results = log["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["resource-lifecycle"]
    assert results[0]["locations"][0]["physicalLocation"]["region"][
        "startLine"
    ] == 5


def test_cli_sarif_clean_tree_is_empty_results_exit_zero(
    tmp_path, monkeypatch, capsys
):
    (tmp_path / "ok.py").write_text("def fine():\n    return 1\n")
    monkeypatch.chdir(tmp_path)
    exit_code = main(["--format=sarif", "--no-baseline", "ok.py"])
    log = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert log["runs"][0]["results"] == []
