"""CLI contract tests: exit codes, formats, suppressions, baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

RACY = (
    "import threading\n"
    "\n"
    "\n"
    "class Counter:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._n = 0\n"
    "\n"
    "    def locked(self):\n"
    "        with self._lock:\n"
    "            self._n += 1\n"
    "\n"
    "    def racy(self):\n"
    "        self._n += 1\n"
)


@pytest.fixture
def racy_tree(tmp_path, monkeypatch):
    (tmp_path / "mod.py").write_text(RACY)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    (tmp_path / "mod.py").write_text("VALUE = 1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["."]) == 0
    assert capsys.readouterr().out == ""


def test_finding_exits_one_text_format(racy_tree, capsys):
    assert main(["."]) == 1
    out = capsys.readouterr().out
    assert "mod.py:14: [lock-discipline]" in out


def test_json_format_reports_findings(racy_tree, capsys):
    assert main(["--format=json", "."]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["baselined"] == 0
    (finding,) = report["findings"]
    assert finding["rule"] == "lock-discipline"
    assert finding["path"] == "mod.py"
    assert finding["line"] == 14
    assert finding["context"] == "self._n += 1"


def test_missing_path_exits_two(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["no/such/dir"]) == 2


def test_same_line_suppression(racy_tree):
    source = RACY.replace(
        "    def racy(self):\n        self._n += 1\n",
        "    def racy(self):\n"
        "        self._n += 1  # reprolint: disable=lock-discipline\n",
    )
    (racy_tree / "mod.py").write_text(source)
    assert main(["."]) == 0


def test_standalone_comment_governs_next_code_line(racy_tree):
    source = RACY.replace(
        "    def racy(self):\n        self._n += 1\n",
        "    def racy(self):\n"
        "        # Justification for the exception goes here.\n"
        "        # reprolint: disable=lock-discipline\n"
        "        self._n += 1\n",
    )
    (racy_tree / "mod.py").write_text(source)
    assert main(["."]) == 0


def test_file_level_suppression(racy_tree):
    (racy_tree / "mod.py").write_text(
        "# reprolint: disable-file=lock-discipline\n" + RACY
    )
    assert main(["."]) == 0


def test_suppression_is_per_rule(racy_tree):
    (racy_tree / "mod.py").write_text(
        "# reprolint: disable-file=bounded-cache\n" + RACY
    )
    assert main(["."]) == 1


def test_baseline_roundtrip(racy_tree, capsys):
    assert main(["."]) == 1
    # Accept the current findings, then the same tree passes.
    assert main(["--write-baseline", "."]) == 0
    assert Path(".reprolint-baseline.json").exists()
    assert main(["."]) == 0
    report_exit = main(["--format=json", "."])
    capsys.readouterr()  # drain
    assert report_exit == 0

    # A *second* occurrence of the same accepted pattern still fails:
    # fingerprints are count-aware.
    (racy_tree / "mod.py").write_text(
        RACY + "\n    def racy_again(self):\n        self._n += 1\n"
    )
    assert main(["."]) == 1


def test_baseline_staleness_reported(racy_tree, capsys):
    assert main(["--write-baseline", "."]) == 0
    # Fix the finding: the stale entry is reported but only fails the
    # run under --strict-baseline.
    fixed = RACY.replace(
        "    def racy(self):\n        self._n += 1\n",
        "    def racy(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n",
    )
    (racy_tree / "mod.py").write_text(fixed)
    assert main(["."]) == 0
    err = capsys.readouterr().err
    assert "stale baseline" in err
    assert main(["--strict-baseline", "."]) == 1


def test_no_baseline_flag_ignores_file(racy_tree):
    assert main(["--write-baseline", "."]) == 0
    assert main(["."]) == 0
    assert main(["--no-baseline", "."]) == 1


def test_list_rules_names_all_six(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "bounded-cache",
        "determinism",
        "error-registry",
        "lock-discipline",
        "spawn-safety",
        "wire-roundtrip",
    ):
        assert rule_id in out
