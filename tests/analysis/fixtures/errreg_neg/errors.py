"""Golden negative for ``error-registry`` (registry side): unique codes,
most-derived-first order."""


class AppError(Exception):
    pass


class CloakError(AppError):
    pass


ERROR_CODES = (
    (CloakError, "cloak_failed"),
    (AppError, "internal_error"),
)
