"""Golden negative for ``error-registry`` (use side): the table is
aliased (not re-declared), the fallback dict and the comparison only name
declared codes."""

from .errors import ERROR_CODES, AppError, CloakError

TABLE = ERROR_CODES

_FALLBACK = {"cloak_failed": CloakError}


def classify(code):
    if code == "internal_error":
        return AppError
    return None
