"""Golden negative for ``lock-discipline``.

``DisciplinedCounter`` holds the lock at every mutation site;
``CallerHeldHelper`` mutates only inside helpers whose callers hold the
lock (the ProcessPoolBackend ``_respawn`` convention) — its attributes
never enter the guarded set, so the rule stays quiet.
"""

import threading


class DisciplinedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._served = 0

    def record_batch(self, n):
        with self._lock:
            self._served += n

    def record_single(self):
        with self._lock:
            self._served += 1


class CallerHeldHelper:
    def __init__(self):
        self._lock = threading.Lock()
        self._workers = []

    def dispatch(self):
        with self._lock:
            self._respawn()

    def _respawn(self):
        # Lock held by the caller: no syntactic `with`, never guarded.
        self._workers.append(object())
