"""Golden negative for ``await-under-lock``: the sanctioned shapes —
``async with`` on an asyncio lock, threading locks released *before*
awaiting, sync-only critical sections, and a nested ``async def`` whose
awaits belong to its own frame, not the lock-holding one."""

import asyncio
import threading

_STATE_LOCK = threading.Lock()


async def uses_asyncio_lock(alock):
    async with alock:
        await asyncio.sleep(0)


async def releases_before_awaiting(compute):
    with _STATE_LOCK:
        value = compute()
    await asyncio.sleep(0)
    return value


def sync_critical_section(values):
    with _STATE_LOCK:
        values.append(1)


class QuietHolder:
    def __init__(self):
        self._lock = threading.Lock()

    async def lock_scopes_a_factory(self):
        with self._lock:
            async def deferred():
                await asyncio.sleep(0)
        return deferred
