"""Golden positive for ``loop-blocking-call``: async functions reaching
blocking calls — directly, through a sync helper chain, and through
dynamic-dispatch method seeds — with no executor hop. Every flagged line
is a call site *inside an async def*; the sync helpers themselves stay
unflagged (they are legal off the loop)."""

import subprocess
import time


def nap():
    time.sleep(0.5)


def relay():
    nap()


async def sleeps_directly():
    time.sleep(0.1)  # EXPECT: loop-blocking-call


async def sleeps_through_chain():
    relay()  # EXPECT: loop-blocking-call


async def drains_pipe(connection):
    return connection.recv()  # EXPECT: loop-blocking-call


async def shells_out(argv):
    return subprocess.check_output(argv)  # EXPECT: loop-blocking-call
