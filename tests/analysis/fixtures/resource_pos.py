"""Golden positive for ``resource-lifecycle``: frames that create OS
resources and lose them — never closed, closed only on the success path,
and the PR 9 spawn shape where a pipe end is duplicated into a child
``Process`` and the parent's copy leaks. Includes the internal-constructor
fixpoint: a wrapper that *returns* a socket makes its callers owners."""

import multiprocessing
import socket
import subprocess


def leaks_outright(address):
    sock = socket.create_connection(address)  # EXPECT: resource-lifecycle
    sock.sendall(b"ping")


def closes_only_on_success(path):
    handle = open(path, "rb")  # EXPECT: resource-lifecycle
    data = handle.read()
    if data:
        handle.close()
    return data


def forgets_the_child_end(worker):
    parent_end, child_end = multiprocessing.Pipe()  # EXPECT: resource-lifecycle
    process = multiprocessing.Process(target=worker, args=(child_end,))
    process.start()
    process.join()
    return parent_end


def _dial(address):
    sock = socket.create_connection(address)
    return sock


def leaks_through_a_wrapper(address):
    conn = _dial(address)  # EXPECT: resource-lifecycle
    conn.sendall(b"ping")


def reaps_only_inside_except(command):
    proc = subprocess.Popen(command)  # EXPECT: resource-lifecycle
    try:
        proc.wait(timeout=1.0)
    except Exception:
        proc.kill()
