"""Golden positive for ``task-leak``: spawned tasks whose handles are
dropped — bare expression statements and the ``_ =`` discard idiom. The
loop keeps tasks weakly, so each of these can vanish mid-flight and no
drain path can ever await them."""

import asyncio


async def worker():
    await asyncio.sleep(0)


async def fire_and_forget():
    asyncio.create_task(worker())  # EXPECT: task-leak


async def ensure_and_forget(coro):
    asyncio.ensure_future(coro)  # EXPECT: task-leak


async def discard_into_underscore():
    _ = asyncio.create_task(worker())  # EXPECT: task-leak


async def loop_spawn_and_forget(loop):
    loop.create_task(worker())  # EXPECT: task-leak
