"""Golden negative for ``async-cancellation``: the sanctioned idioms —
re-raising handlers, ``except Exception`` (which cannot catch
``CancelledError`` since 3.8), and ungoverned synchronous code."""

import asyncio
from asyncio import CancelledError


async def reraise_plain(task):
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        raise


async def reraise_conditionally(task):
    task.cancel()
    try:
        await task
    except CancelledError:
        if not task.cancelled():
            raise


async def reraise_bound_name(task):
    try:
        await task
    except BaseException as exc:
        cleanup = True
        if cleanup:
            raise exc


async def except_exception_is_exempt(job):
    # Since 3.8 CancelledError derives from BaseException precisely so
    # this handler cannot swallow it.
    try:
        return await job()
    except Exception:
        return None


def sync_functions_are_not_governed(queue):
    # No await points: cancellation is never delivered into this frame.
    try:
        return queue.get_nowait()
    except:
        return None
