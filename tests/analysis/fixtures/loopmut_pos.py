"""Golden positive for ``threadsafe-loop-mutation``: attributes owned by
the event-loop thread (mutated lock-free in ``async def`` methods) also
mutated from methods that run on an executor — both the directly shipped
callback and a sync helper it calls (off-loop-ness propagates along
resolved call edges)."""


class Pipeline:
    def __init__(self, loop):
        self._loop = loop
        self._inflight = 0
        self._completed = 0

    async def submit(self, job):
        self._inflight += 1
        await self._loop.run_in_executor(None, self._work, job)

    async def reconcile(self):
        self._completed += 1

    def _work(self, job):
        job.run()
        self._inflight -= 1  # EXPECT: threadsafe-loop-mutation
        self._finish()

    def _finish(self):
        self._completed += 1  # EXPECT: threadsafe-loop-mutation
