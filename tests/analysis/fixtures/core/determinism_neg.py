"""Golden negative for ``determinism``: seeded constructions and stable
orderings are exactly what the oracle packages should use."""

import hashlib
import random

import numpy as np


def seeded_generator(seed):
    return np.random.default_rng(seed)


def seeded_stream(seed):
    return random.Random(seed)


def stable_digest(payload):
    return hashlib.sha256(payload).hexdigest()


def stable_order(items):
    return sorted(items, key=lambda item: item[0])
