"""Golden positive for ``determinism`` (lives under a ``core/`` path
component, so the rule governs it)."""

import os
import random
import time

import numpy as np


def stamp():
    return time.time()  # EXPECT: determinism (wall clock)


def jitter():
    return random.random()  # EXPECT: determinism (global RNG)


def salt():
    return os.urandom(8)  # EXPECT: determinism (entropy)


def fresh_generator():
    return np.random.default_rng()  # EXPECT: determinism (unseeded)


def address_order(items):
    return sorted(items, key=id)  # EXPECT: determinism (id ordering)


def address_index(store, item):
    store[id(item)] = item  # EXPECT: determinism (id-keyed storage)
