"""Golden negative for ``wire-roundtrip``: the PR 6 ``deadline_ms``
discipline done right — complete round trip, optional field omitted when
unset."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class GoodDoc:
    name: str
    hint: Optional[str] = None

    def to_dict(self):
        document = {"name": self.name}
        if self.hint is not None:
            document["hint"] = self.hint
        return document

    @classmethod
    def from_dict(cls, document):
        return cls(name=document["name"], hint=document.get("hint"))
