"""Golden negative for ``spawn-safety``: module-level functions pickle by
qualified name under every start method."""


def double(value):
    return value * 2


class Task:
    def __init__(self):
        self.transform = double

    def configure(self, fn):
        self.callback = fn
