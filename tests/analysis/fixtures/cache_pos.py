"""Golden positive for ``bounded-cache``: the PR 4/5 unbounded-memo shape.

Both containers grow under request-derived keys and neither has an
eviction path or a ``len()`` bound anywhere in its owning scope.
"""

_PROFILE_MEMO = {}


def remember_profile(profile_key, parsed):
    _PROFILE_MEMO[profile_key] = parsed  # EXPECT: bounded-cache
    return parsed


class EngineCache:
    def __init__(self):
        self._engines = {}

    def lookup(self, spec):
        if spec not in self._engines:
            self._engines[spec] = self._build(spec)  # EXPECT: bounded-cache
        return self._engines[spec]

    def _build(self, spec):
        return (spec, spec)
