"""Golden positive for ``wire-roundtrip``.

``BrokenDoc.hint`` is dropped by ``from_dict`` (the PR 6 ``deadline_ms``
review catch) and emitted unconditionally despite its ``None`` default;
``HalfDoc`` has no ``from_dict`` at all.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass
class BrokenDoc:
    name: str
    hint: Optional[str] = None

    def to_dict(self):
        return {
            "name": self.name,
            "hint": self.hint,  # EXPECT: wire-roundtrip (unconditional)
        }

    @classmethod
    def from_dict(cls, document):  # EXPECT: wire-roundtrip (hint dropped)
        return cls(name=document["name"])


@dataclass
class HalfDoc:  # EXPECT: wire-roundtrip (no from_dict)
    name: str

    def to_dict(self):
        return {"name": self.name}
