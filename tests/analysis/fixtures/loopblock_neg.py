"""Golden negative for ``loop-blocking-call``: the sanctioned shapes —
awaited async primitives, executor hops (the blocking function travels
as a *reference*, never called on the loop), blocking work confined to
sync functions, async helpers that await instead of block, and deferred
lambdas (their bodies are not the caller's frame)."""

import asyncio
import time


def blocking_helper():
    time.sleep(0.5)  # legal: sync function, runs off the loop


async def awaits_sleep():
    await asyncio.sleep(0.1)


async def hops_through_executor(loop):
    return await loop.run_in_executor(None, blocking_helper)


async def hops_through_to_thread():
    return await asyncio.to_thread(blocking_helper)


async def async_helper():
    await asyncio.sleep(0)


async def awaits_async_callee():
    await async_helper()


async def defers_a_lambda(loop):
    loop.call_later(0.1, lambda: time.sleep(0))
