"""Golden positive for ``error-registry`` (registry side): a duplicate
code and two base-before-derived orderings."""


class AppError(Exception):
    pass


class CloakError(AppError):
    pass


class DeepError(CloakError):
    pass


ERROR_CODES = (
    (AppError, "internal_error"),
    (CloakError, "cloak_failed"),  # EXPECT: error-registry (base above)
    (DeepError, "cloak_failed"),  # EXPECT: error-registry (dup + order)
)
