"""Golden positive for ``error-registry`` (use side): a dispatch table
declared outside ``errors.py`` and a comparison against an undeclared
code."""

from .errors import AppError, CloakError

LOCAL_TABLE = (  # EXPECT: error-registry (table outside errors.py)
    (CloakError, "cloak_failed"),
    (AppError, "internal_error"),
)


def classify(code):
    if code == "bogus_code":  # EXPECT: error-registry (undeclared code)
        return None
    return AppError
