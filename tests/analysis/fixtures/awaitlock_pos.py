"""Golden positive for ``await-under-lock``: awaiting while a
*threading* lock is held via ``with`` — on a module-level lock and on a
class's lock attribute. The coroutine suspends with the lock held; the
first other acquirer (coroutine or executor thread) then wedges the
event loop."""

import asyncio
import threading

_REGISTRY_LOCK = threading.Lock()


async def refresh_registry(fetch):
    with _REGISTRY_LOCK:
        await fetch()  # EXPECT: await-under-lock


class SharedCounter:
    def __init__(self):
        self._lock = threading.Lock()

    async def flush(self, sink):
        with self._lock:
            await sink.drain()  # EXPECT: await-under-lock

    async def deep_block(self, sink):
        with self._lock:
            for _ in range(3):
                await asyncio.sleep(0)  # EXPECT: await-under-lock
