"""Golden negative for ``threadsafe-loop-mutation``: the sanctioned
shapes — executor callbacks that bounce mutations back to the loop via
``call_soon_threadsafe`` (a reference, so the target never becomes an
off-loop method), state guarded by a lock on *both* sides (the
lock-discipline rule's territory, not this one's), and executor methods
that only touch their own executor-side state."""

import threading


class Pipeline:
    def __init__(self, loop):
        self._loop = loop
        self._inflight = 0
        self._lock = threading.Lock()
        self._shared = 0
        self._scratch = 0

    async def submit(self, job):
        self._inflight += 1
        with self._lock:
            self._shared += 1
        await self._loop.run_in_executor(None, self._work, job)

    def _work(self, job):
        job.run()
        with self._lock:
            self._shared -= 1
        self._scratch += 1
        self._loop.call_soon_threadsafe(self._settle)

    def _settle(self):
        self._inflight -= 1
