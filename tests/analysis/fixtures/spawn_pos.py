"""Golden positive for ``spawn-safety``: callables that pickle under
``fork`` and explode under ``spawn``."""


class Task:
    def __init__(self):
        self.transform = lambda value: value + 1  # EXPECT: spawn-safety

    def configure(self):
        def helper(value):
            return value * 2

        self.callback = helper  # EXPECT: spawn-safety
