"""Golden negative for ``bounded-cache``.

``BoundedLru`` uses the repo's standard ``while len(...) > cap:
popitem()`` idiom; ``ClearedRegistry`` has an eviction path (``clear``);
``FixedSlots`` only ever writes constant keys (configuration, not
growth); ``RebuildIndex`` grows under keys derived from construction
state, not request parameters.
"""

from collections import OrderedDict

_CAP = 64


class BoundedLru:
    def __init__(self):
        self._cache = OrderedDict()

    def lookup(self, key):
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        value = key * 2
        self._cache[key] = value
        while len(self._cache) > _CAP:
            self._cache.popitem(last=False)
        return value


class ClearedRegistry:
    def __init__(self):
        self._by_width = {}

    def lookup(self, width):
        if width not in self._by_width:
            self._by_width[width] = object()
        return self._by_width[width]

    def close(self):
        self._by_width.clear()


class FixedSlots:
    def __init__(self):
        self._state = {}

    def bind(self, engine):
        self._state["engine"] = engine


class RebuildIndex:
    def __init__(self):
        self._index = {}
        self._rebuild()

    def _rebuild(self):
        for position in range(8):
            self._index[position * 3] = position
