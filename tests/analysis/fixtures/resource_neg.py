"""Golden negative for ``resource-lifecycle``: every sanctioned shape —
``with`` management, ``finally`` release, alias-chained close, ownership
transfer (returned, stored, passed into a handle), and the corrected
PR 9 spawn sequence where the parent closes its duplicate of the child's
pipe end unconditionally right after ``start()``."""

import multiprocessing
import socket


def with_managed(path):
    with open(path, "rb") as handle:
        return handle.read()


def closed_in_finally(address):
    sock = socket.create_connection(address)
    try:
        sock.sendall(b"ping")
    finally:
        sock.close()


def closed_through_an_alias(address):
    sock = socket.create_connection(address)
    conn = sock
    conn.sendall(b"ping")
    conn.close()


def ownership_returned(address):
    sock = socket.create_connection(address)
    return sock


def ownership_stored(registry, key, address):
    sock = socket.create_connection(address)
    registry[key] = sock


def ownership_handed_to_a_handle(make_handle, address):
    sock = socket.create_connection(address)
    return make_handle(sock)


def spawns_and_closes_the_duplicate(worker):
    parent_end, child_end = multiprocessing.Pipe()
    process = multiprocessing.Process(target=worker, args=(child_end,))
    process.start()
    child_end.close()
    return parent_end, process


def accepts_and_returns(server):
    conn, _peer = server.accept()
    return conn
