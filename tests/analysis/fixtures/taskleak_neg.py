"""Golden negative for ``task-leak``: every sanctioned way of keeping a
spawned task alive — binding the handle, awaiting it, returning it,
chaining a done-callback directly, and the front-end's tracked-set
discipline."""

import asyncio


async def worker():
    await asyncio.sleep(0)


async def bind_and_await():
    task = asyncio.create_task(worker())
    await task


async def return_the_handle():
    return asyncio.create_task(worker())


async def chain_a_done_callback(on_done):
    asyncio.create_task(worker()).add_done_callback(on_done)


async def tracked_set_discipline(loop):
    tasks = set()
    task = loop.create_task(worker())
    tasks.add(task)
    task.add_done_callback(tasks.discard)
    await asyncio.gather(*tasks)
