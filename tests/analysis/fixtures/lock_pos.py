"""Golden positive for ``lock-discipline``: the PR 2 racy-counter shape.

One mutation of ``_served`` holds the lock, one does not — the
half-disciplined state the rule exists to refuse.
"""

import threading


class RacyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._served = 0

    def record_batch(self, n):
        with self._lock:
            self._served += n

    def record_single(self):
        self._served += 1  # EXPECT: lock-discipline
