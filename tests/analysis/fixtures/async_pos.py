"""Golden positive for ``async-cancellation``: handlers inside async
functions that swallow a task's cancellation, so the task reports done
and wait_for bounds / drain escalation silently stop working."""

import asyncio


async def swallow_everything(queue):
    try:
        return await queue.get()
    except:  # EXPECT: async-cancellation
        return None


async def swallow_base_exception(task):
    try:
        await task
    except BaseException:  # EXPECT: async-cancellation
        return None


async def swallow_explicit_cancel(task):
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:  # EXPECT: async-cancellation
        pass


async def swallow_in_tuple(task):
    try:
        await task
    except (ValueError, asyncio.CancelledError):  # EXPECT: async-cancellation
        return None


async def raise_hidden_in_nested_function(task):
    try:
        await task
    except asyncio.CancelledError:  # EXPECT: async-cancellation
        def rethrow():
            raise

        rethrow()
