"""The public API surface: everything advertised in ``repro.__all__`` works.

Downstream users import from ``repro`` directly; this module pins the
re-export surface and exercises the README quickstart verbatim.
"""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing public name: {name}"

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_subpackages_importable(self):
        for module in (
            "repro.roadnet",
            "repro.keys",
            "repro.mobility",
            "repro.core",
            "repro.baselines",
            "repro.lbs",
            "repro.attacks",
            "repro.metrics",
            "repro.toolkit",
            "repro.bench",
        ):
            importlib.import_module(module)

    def test_errors_form_one_hierarchy(self):
        from repro import errors

        leaf_errors = [
            errors.RoadNetworkError,
            errors.ProfileError,
            errors.CloakingError,
            errors.ToleranceExceededError,
            errors.DeanonymizationError,
            errors.CollisionError,
            errors.KeyMismatchError,
            errors.EnvelopeError,
            errors.MobilityError,
            errors.QueryError,
        ]
        for error in leaf_errors:
            assert issubclass(error, errors.ReverseCloakError)


class TestReadmeQuickstart:
    def test_quickstart_runs_verbatim(self):
        from repro import (
            KeyChain,
            PrivacyProfile,
            ReverseCloakEngine,
            TrafficSimulator,
            grid_network,
        )

        network = grid_network(12, 12)
        simulator = TrafficSimulator(network, n_cars=500, seed=7)
        snapshot = simulator.snapshot()
        profile = PrivacyProfile.uniform(
            levels=3, base_k=5, k_step=5, base_l=3, l_step=2, max_segments=60
        )
        chain = KeyChain.generate(profile.level_count)

        engine = ReverseCloakEngine(network)
        envelope = engine.anonymize(
            user_segment=100, snapshot=snapshot, profile=profile, chain=chain
        )
        result = engine.deanonymize(envelope, chain, target_level=0)
        assert result.region_at(0) == (100,)
