"""Unit and property tests for :mod:`repro.roadnet.geometry`."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.roadnet.geometry import (
    BoundingBox,
    Point,
    distance,
    midpoint,
    point_along,
    point_segment_distance,
    polyline_length,
)

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        assert Point(2.5, -1.0).distance_to(Point(2.5, -1.0)) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -2) == Point(4, 0)

    def test_unpacking(self):
        x, y = Point(7.0, 8.0)
        assert (x, y) == (7.0, 8.0)

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestHelpers:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(10, 4)) == Point(5, 2)

    def test_distance_function_matches_method(self):
        assert distance(Point(0, 0), Point(1, 1)) == Point(0, 0).distance_to(
            Point(1, 1)
        )

    def test_polyline_length_empty_and_single(self):
        assert polyline_length([]) == 0.0
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_polyline_length_chain(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 10)]
        assert polyline_length(pts) == pytest.approx(11.0)

    def test_point_along_midway(self):
        assert point_along(Point(0, 0), Point(10, 0), 0.5) == Point(5, 0)

    def test_point_along_clamps(self):
        assert point_along(Point(0, 0), Point(10, 0), -0.5) == Point(0, 0)
        assert point_along(Point(0, 0), Point(10, 0), 1.5) == Point(10, 0)

    def test_point_segment_distance_perpendicular(self):
        assert point_segment_distance(
            Point(5, 3), Point(0, 0), Point(10, 0)
        ) == pytest.approx(3.0)

    def test_point_segment_distance_beyond_endpoint(self):
        assert point_segment_distance(
            Point(13, 4), Point(0, 0), Point(10, 0)
        ) == pytest.approx(5.0)

    def test_point_segment_distance_degenerate_segment(self):
        assert point_segment_distance(
            Point(3, 4), Point(0, 0), Point(0, 0)
        ) == pytest.approx(5.0)

    @given(points, points, points)
    def test_point_segment_distance_bounded_by_endpoints(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= p.distance_to(a) + 1e-6
        assert d <= p.distance_to(b) + 1e-6


class TestBoundingBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_around(self):
        box = BoundingBox.around([Point(1, 5), Point(-2, 0), Point(4, 3)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 0, 4, 5)

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])

    def test_measures(self):
        box = BoundingBox(0, 0, 3, 4)
        assert box.width == 3
        assert box.height == 4
        assert box.area == 12
        assert box.diagonal == 5.0
        assert box.center == Point(1.5, 2.0)

    def test_contains_boundary_inclusive(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(2, 2))
        assert not box.contains(Point(2.01, 1))

    def test_expanded(self):
        box = BoundingBox(0, 0, 1, 1).expanded(2)
        assert (box.min_x, box.max_y) == (-2, 3)

    def test_union(self):
        u = BoundingBox(0, 0, 1, 1).union(BoundingBox(5, -1, 6, 0.5))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, -1, 6, 1)

    def test_intersects_touching_counts(self):
        assert BoundingBox(0, 0, 1, 1).intersects(BoundingBox(1, 1, 2, 2))
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(1.1, 0, 2, 1))

    def test_corners_ccw(self):
        corners = BoundingBox(0, 0, 1, 2).corners()
        assert corners == (Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2))

    @given(st.lists(points, min_size=1, max_size=20))
    def test_around_contains_all(self, pts):
        box = BoundingBox.around(pts)
        assert all(box.contains(p) for p in pts)
