"""Tests for network clipping / neighbourhood extraction."""

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet import (
    BoundingBox,
    clip_network,
    grid_network,
    neighborhood_of,
)


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8, spacing=100.0)


class TestClipNetwork:
    def test_ids_preserved(self, grid):
        clipped = clip_network(grid, BoundingBox(0, 0, 250, 250))
        for segment_id in clipped.segment_ids():
            original = grid.segment(segment_id)
            copy = clipped.segment(segment_id)
            assert original.endpoints() == copy.endpoints()
            assert original.length == copy.length

    def test_keeps_only_touching_segments(self, grid):
        clipped = clip_network(grid, BoundingBox(0, 0, 150, 150))
        for segment_id in clipped.segment_ids():
            a, b = grid.segment_endpoints(segment_id)
            box = BoundingBox(0, 0, 150, 150)
            assert box.contains(a) or box.contains(b)

    def test_smaller_than_original(self, grid):
        clipped = clip_network(grid, BoundingBox(0, 0, 250, 250))
        assert 0 < clipped.segment_count < grid.segment_count

    def test_whole_map_box_keeps_everything(self, grid):
        clipped = clip_network(grid, grid.bounding_box())
        assert clipped.segment_count == grid.segment_count

    def test_missing_box_raises(self, grid):
        with pytest.raises(RoadNetworkError):
            clip_network(grid, BoundingBox(10_000, 10_000, 10_100, 10_100))

    def test_custom_name(self, grid):
        clipped = clip_network(grid, BoundingBox(0, 0, 300, 300), name="zoomed")
        assert clipped.name == "zoomed"


class TestNeighborhoodOf:
    def test_contains_the_region(self, grid):
        region = {0, 1, 2}
        zoom = neighborhood_of(grid, region, margin=50.0)
        for segment_id in region:
            assert zoom.has_segment(segment_id)

    def test_margin_grows_result(self, grid):
        tight = neighborhood_of(grid, {27}, margin=1.0)
        wide = neighborhood_of(grid, {27}, margin=300.0)
        assert wide.segment_count > tight.segment_count

    def test_region_stays_connected_in_zoom(self, grid):
        region = {0, 1, 2}  # three consecutive segments of row 0
        zoom = neighborhood_of(grid, region, margin=150.0)
        assert zoom.is_connected_region(region & set(zoom.segment_ids()))

    def test_validation(self, grid):
        with pytest.raises(RoadNetworkError):
            neighborhood_of(grid, set())
        with pytest.raises(RoadNetworkError):
            neighborhood_of(grid, {0}, margin=-1.0)

    def test_renderable(self, grid):
        """The zoomed network feeds straight into the SVG renderer with the
        original region ids."""
        from repro.toolkit import SvgMapRenderer

        region = {0, 1, 2}
        zoom = neighborhood_of(grid, region, margin=120.0)
        svg = SvgMapRenderer(zoom).render({1: sorted(region)})
        assert svg.count("<line") == zoom.segment_count + len(region)
