"""Tests for network statistics."""

import pytest

from repro.roadnet import (
    degree_histogram,
    grid_network,
    network_stats,
    path_network,
    radial_network,
)


class TestDegreeHistogram:
    def test_grid_degrees(self):
        histogram = degree_histogram(grid_network(4, 4))
        # corners: 4 of degree 2; edges: 8 of degree 3; interior: 4 of degree 4
        assert histogram == {2: 4, 3: 8, 4: 4}

    def test_path_degrees(self):
        histogram = degree_histogram(path_network(3))
        assert histogram == {1: 2, 2: 2}


class TestNetworkStats:
    def test_grid_stats(self):
        stats = network_stats(grid_network(5, 5, spacing=100.0))
        assert stats.junctions == 25
        assert stats.segments == 40
        assert stats.segments_per_junction == pytest.approx(40 / 25)
        assert stats.mean_segment_length == pytest.approx(100.0)
        assert stats.median_segment_length == pytest.approx(100.0)
        assert stats.components == 1

    def test_mean_degree_is_twice_edge_ratio(self):
        stats = network_stats(radial_network(3, 8))
        assert stats.mean_degree == pytest.approx(
            2 * stats.segments_per_junction
        )

    def test_mean_linked_segments_path(self):
        stats = network_stats(path_network(5))
        # interior segments have 2 linked, ends have 1: (1+2+2+2+1)/5
        assert stats.mean_linked_segments == pytest.approx(8 / 5)

    def test_describe_mentions_name_and_counts(self):
        stats = network_stats(grid_network(3, 3))
        text = stats.describe()
        assert "grid-3x3" in text
        assert "9 junctions" in text
        assert "12 segments" in text
