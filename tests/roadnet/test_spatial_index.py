"""Tests for the uniform-grid spatial index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoadNetworkError
from repro.roadnet import (
    BoundingBox,
    Point,
    SegmentIndex,
    grid_network,
    point_segment_distance,
    random_delaunay_network,
)
from repro.roadnet.graph import RoadNetworkBuilder


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6, spacing=100.0)


@pytest.fixture(scope="module")
def index(grid):
    return SegmentIndex(grid)


def brute_force_nearest(network, point):
    best, best_d = None, float("inf")
    for segment_id in network.segment_ids():
        a, b = network.segment_endpoints(segment_id)
        d = point_segment_distance(point, a, b)
        if d < best_d or (d == best_d and segment_id < best):
            best, best_d = segment_id, d
    return best, best_d


class TestConstruction:
    def test_empty_network_rejected(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        with pytest.raises(RoadNetworkError):
            SegmentIndex(builder.build())

    def test_bad_cell_size_rejected(self, grid):
        with pytest.raises(RoadNetworkError):
            SegmentIndex(grid, cell_size=0)

    def test_default_cell_size_positive(self, index):
        assert index.cell_size > 0
        assert index.cell_count > 0


class TestNearest:
    def test_on_segment_point(self, grid, index):
        mid = grid.segment_midpoint(0)
        nearest = index.nearest_segment(mid)
        __, d = brute_force_nearest(grid, mid)
        a, b = grid.segment_endpoints(nearest)
        assert point_segment_distance(mid, a, b) == pytest.approx(d)

    def test_far_outside_map(self, grid, index):
        nearest = index.nearest_segment(Point(-5000.0, -5000.0))
        __, d = brute_force_nearest(grid, Point(-5000.0, -5000.0))
        a, b = grid.segment_endpoints(nearest)
        assert point_segment_distance(Point(-5000.0, -5000.0), a, b) == pytest.approx(d)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=-100, max_value=600),
        st.floats(min_value=-100, max_value=600),
    )
    def test_matches_brute_force_distance(self, x, y):
        network = grid_network(6, 6, spacing=100.0)
        idx = SegmentIndex(network)
        point = Point(x, y)
        nearest = idx.nearest_segment(point)
        __, best_d = brute_force_nearest(network, point)
        a, b = network.segment_endpoints(nearest)
        assert point_segment_distance(point, a, b) == pytest.approx(best_d, abs=1e-9)

    def test_irregular_network(self):
        network = random_delaunay_network(60, 80, seed=9, extent=1000.0)
        idx = SegmentIndex(network)
        point = Point(431.0, 212.0)
        nearest = idx.nearest_segment(point)
        __, best_d = brute_force_nearest(network, point)
        a, b = network.segment_endpoints(nearest)
        assert point_segment_distance(point, a, b) == pytest.approx(best_d, abs=1e-9)


class TestRangeQueries:
    def test_segments_in_box_covers_region(self, grid, index):
        box = BoundingBox(0, 0, 150, 150)
        hits = index.segments_in_box(box)
        assert len(hits) > 0
        for segment_id in hits:
            a, b = grid.segment_endpoints(segment_id)
            assert box.intersects(BoundingBox.around((a, b)))

    def test_segments_in_box_misses_far(self, grid, index):
        box = BoundingBox(10_000, 10_000, 10_100, 10_100)
        assert index.segments_in_box(box) == ()

    def test_segments_near_radius_filter(self, grid, index):
        center = Point(250.0, 250.0)
        hits = index.segments_near(center, radius=60.0)
        for segment_id in hits:
            a, b = grid.segment_endpoints(segment_id)
            assert point_segment_distance(center, a, b) <= 60.0
        # completeness against brute force
        for segment_id in grid.segment_ids():
            a, b = grid.segment_endpoints(segment_id)
            if point_segment_distance(center, a, b) <= 60.0:
                assert segment_id in hits

    def test_negative_radius_rejected(self, index):
        with pytest.raises(RoadNetworkError):
            index.segments_near(Point(0, 0), radius=-1.0)
