"""Tests for the road-network graph model."""

import pytest

from repro.errors import (
    DisconnectedRegionError,
    RoadNetworkError,
    UnknownJunctionError,
    UnknownSegmentError,
)
from repro.roadnet import RoadNetworkBuilder, grid_network, path_network


@pytest.fixture()
def tiny():
    """A 'T' network: 0-1-2 in a line plus 3 hanging off junction 1."""
    builder = RoadNetworkBuilder(name="tiny-T")
    builder.add_junction(0, 0, 0)
    builder.add_junction(1, 100, 0)
    builder.add_junction(2, 200, 0)
    builder.add_junction(3, 100, 100)
    builder.add_segment(0, 0, 1)
    builder.add_segment(1, 1, 2)
    builder.add_segment(2, 1, 3)
    return builder.build()


class TestBuilder:
    def test_duplicate_junction_rejected(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        with pytest.raises(RoadNetworkError):
            builder.add_junction(0, 1, 1)

    def test_duplicate_segment_id_rejected(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 1, 0)
        builder.add_segment(0, 0, 1)
        with pytest.raises(RoadNetworkError):
            builder.add_segment(0, 1, 0)

    def test_segment_requires_existing_junctions(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        with pytest.raises(UnknownJunctionError):
            builder.add_segment(0, 0, 99)

    def test_self_loop_rejected_at_build(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 1, 0)
        builder.add_segment(0, 0, 1)
        # force a self-loop through the raw constructor path
        with pytest.raises(RoadNetworkError):
            from repro.roadnet.graph import RoadNetwork, Segment

            RoadNetwork(
                {0: builder._junctions[0]},
                {0: Segment(0, 0, 0, 1.0)},
            )

    def test_duplicate_junction_pair_rejected(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 1, 0)
        builder.add_segment(0, 0, 1)
        builder.add_segment(1, 1, 0)
        with pytest.raises(RoadNetworkError):
            builder.build()

    def test_default_length_is_euclidean(self, tiny):
        assert tiny.segment_length(0) == pytest.approx(100.0)

    def test_explicit_length_survives(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 100, 0)
        builder.add_segment(0, 0, 1, length=160.0)  # curved road
        assert builder.build().segment_length(0) == 160.0

    def test_nonpositive_length_rejected(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 100, 0)
        builder.add_segment(0, 0, 1, length=0.0)
        with pytest.raises(RoadNetworkError):
            builder.build()

    def test_next_ids(self):
        builder = RoadNetworkBuilder()
        assert builder.next_junction_id() == 0
        builder.add_junction(5, 0, 0)
        assert builder.next_junction_id() == 6
        assert builder.next_segment_id() == 0


class TestLookups:
    def test_unknown_segment(self, tiny):
        with pytest.raises(UnknownSegmentError):
            tiny.segment(99)

    def test_unknown_junction(self, tiny):
        with pytest.raises(UnknownJunctionError):
            tiny.junction(99)

    def test_counts(self, tiny):
        assert tiny.junction_count == 4
        assert tiny.segment_count == 3

    def test_segments_at_junction(self, tiny):
        assert tiny.segments_at_junction(1) == (0, 1, 2)
        assert tiny.segments_at_junction(3) == (2,)

    def test_neighbors_via_shared_junction(self, tiny):
        assert tiny.neighbors(0) == (1, 2)
        assert tiny.neighbors(2) == (0, 1)

    def test_other_end(self, tiny):
        segment = tiny.segment(0)
        assert segment.other_end(0) == 1
        assert segment.other_end(1) == 0
        with pytest.raises(RoadNetworkError):
            segment.other_end(3)

    def test_has_segment(self, tiny):
        assert tiny.has_segment(0)
        assert not tiny.has_segment(42)

    def test_segment_midpoint(self, tiny):
        mid = tiny.segment_midpoint(0)
        assert (mid.x, mid.y) == (50.0, 0.0)


class TestRegions:
    def test_frontier_of_single_segment(self, tiny):
        assert tiny.frontier({0}) == (1, 2)

    def test_frontier_excludes_region(self, tiny):
        assert tiny.frontier({0, 1}) == (2,)

    def test_frontier_of_everything_empty(self, tiny):
        assert tiny.frontier({0, 1, 2}) == ()

    def test_empty_region_connected(self, tiny):
        assert tiny.is_connected_region(set())

    def test_connected_region(self, tiny):
        assert tiny.is_connected_region({0, 1, 2})

    def test_disconnected_region(self):
        network = path_network(5)
        assert not network.is_connected_region({0, 4})

    def test_require_connected_raises(self):
        network = path_network(5)
        with pytest.raises(DisconnectedRegionError):
            network.require_connected_region({0, 4})

    def test_articulation_free_removals_path(self):
        network = path_network(4)
        # only the path's end segments can be removed without disconnection
        assert network.articulation_free_removals({0, 1, 2, 3}) == (0, 3)

    def test_articulation_free_removals_star(self, tiny):
        # every leaf of the T can go; removing segment 1 or 2 still leaves
        # the other two sharing junction 1 -> all removable
        assert tiny.articulation_free_removals({0, 1, 2}) == (0, 1, 2)

    def test_connected_components(self):
        builder = RoadNetworkBuilder()
        for junction_id, (x, y) in enumerate([(0, 0), (1, 0), (5, 5), (6, 5)]):
            builder.add_junction(junction_id, x, y)
        builder.add_segment(0, 0, 1)
        builder.add_segment(1, 2, 3)
        components = builder.build().connected_components()
        assert len(components) == 2
        assert {frozenset({0}), frozenset({1})} == set(components)

    def test_grid_is_single_component(self):
        assert len(grid_network(5, 5).connected_components()) == 1

    def test_bounding_box_of_region(self, tiny):
        box = tiny.bounding_box({0})
        assert (box.min_x, box.max_x) == (0.0, 100.0)

    def test_total_length(self, tiny):
        assert tiny.total_length({0, 1, 2}) == pytest.approx(300.0)

    def test_ordering_deterministic(self, tiny):
        assert tiny.segment_ids() == (0, 1, 2)
        assert tiny.junction_ids() == (0, 1, 2, 3)
