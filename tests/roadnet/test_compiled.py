"""CompiledNetwork: the flat hot-path tables must mirror the dict model."""

import random

import pytest

from repro.roadnet import (
    CompiledNetwork,
    compiled_network,
    geometry_digest,
    grid_network,
    random_delaunay_network,
)
from repro.roadnet.graph import RoadNetworkBuilder, removable_segments

GRID = grid_network(9, 9)
DELAUNAY = random_delaunay_network(n_junctions=60, target_segments=120, seed=7)


@pytest.mark.parametrize("network", [GRID, DELAUNAY], ids=["grid", "delaunay"])
class TestTables:
    def test_dense_reindex_is_id_ordered(self, network):
        plane = network.compiled()
        assert plane.segment_list == network.segment_ids()
        assert all(
            plane.segment_list[plane.index_of[s]] == s for s in plane.segment_list
        )

    def test_csr_matches_neighbor_map(self, network):
        plane = network.compiled()
        for sid in network.segment_ids():
            dense = plane.index_of[sid]
            row = plane.csr_neighbors[
                plane.offsets[dense] : plane.offsets[dense + 1]
            ]
            assert tuple(plane.segment_list[d] for d in row) == network.neighbors(sid)

    def test_length_rank_is_global_length_order(self, network):
        plane = network.compiled()
        expected = sorted(
            network.segment_ids(), key=lambda s: (network.segment_length(s), s)
        )
        assert list(plane.rank_to_id) == expected
        assert all(plane.rank_of[s] == i for i, s in enumerate(expected))
        assert all(
            plane.length_rank[plane.index_of[s]] == plane.rank_of[s]
            for s in network.segment_ids()
        )

    def test_flat_geometry_tables(self, network):
        plane = network.compiled()
        bounds = network.segment_bounds()
        for sid in network.segment_ids():
            dense = plane.index_of[sid]
            assert plane.lengths[dense] == network.segment_length(sid)
            assert (
                plane.min_x[dense],
                plane.min_y[dense],
                plane.max_x[dense],
                plane.max_y[dense],
            ) == bounds[sid]

    def test_side_neighbors_partition_the_neighbor_list(self, network):
        plane = network.compiled()
        for sid in network.segment_ids():
            at_a, at_b = plane.side_neighbors[sid]
            assert not at_a & at_b  # a neighbour shares exactly one junction
            segment = network.segment(sid)
            incident = (
                set(network.segments_at_junction(segment.junction_a))
                | set(network.segments_at_junction(segment.junction_b))
            ) - {sid}
            assert at_a | at_b == incident

    def test_removability_and_connectivity_match_reference(self, network):
        plane = network.compiled()
        rng = random.Random(23)
        ids = list(network.segment_ids())
        neighbors = network.compiled().neighbor_map.__getitem__
        for _ in range(200):
            region = set(rng.sample(ids, rng.randrange(0, 24)))
            assert plane.removable_members(region) == removable_segments(
                neighbors, set(region)
            )
            assert plane.is_connected(region) == network.is_connected_region(region)
        # Grown (connected) regions exercise the single-component Tarjan arm.
        region = {ids[0]}
        for _ in range(60):
            frontier = network.frontier(region)
            if not frontier:
                break
            region.add(rng.choice(frontier))
            assert plane.removable_members(region) == removable_segments(
                neighbors, set(region)
            )


class TestSharing:
    def test_plane_cached_on_instance(self):
        assert GRID.compiled() is GRID.compiled()

    def test_equal_maps_share_one_plane(self):
        assert grid_network(5, 5).compiled() is grid_network(5, 5).compiled()
        assert compiled_network(grid_network(5, 5)) is grid_network(5, 5).compiled()

    def test_geometry_digest_separates_coordinates(self):
        """Same topology and lengths, different junction coordinates: the
        wire network digest collides by design, the geometry digest (and
        therefore the compiled bbox tables) must not."""

        def build(y):
            builder = RoadNetworkBuilder(name="twin")
            builder.add_junction(0, 0.0, 0.0)
            builder.add_junction(1, 100.0, y)
            builder.add_junction(2, 200.0, 0.0)
            builder.add_segment(0, 0, 1, length=150.0)
            builder.add_segment(1, 1, 2, length=150.0)
            return builder.build()

        flat, bent = build(0.0), build(90.0)
        from repro.core.envelope import network_digest

        assert network_digest(flat) == network_digest(bent)
        assert geometry_digest(flat) != geometry_digest(bent)
        assert flat.compiled() is not bent.compiled()
        assert isinstance(flat.compiled(), CompiledNetwork)
