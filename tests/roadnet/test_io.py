"""Round-trip tests for road-network serialization."""

import json

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet import (
    grid_network,
    load_network_csv,
    load_network_json,
    network_from_dict,
    network_to_dict,
    random_delaunay_network,
    save_network_csv,
    save_network_json,
)
from repro.core.envelope import network_digest


def assert_networks_equal(a, b):
    assert a.name == b.name
    assert a.junction_ids() == b.junction_ids()
    assert a.segment_ids() == b.segment_ids()
    for junction_id in a.junction_ids():
        assert a.junction(junction_id).location == b.junction(junction_id).location
    for segment_id in a.segment_ids():
        sa, sb = a.segment(segment_id), b.segment(segment_id)
        assert (sa.junction_a, sa.junction_b, sa.length) == (
            sb.junction_a,
            sb.junction_b,
            sb.length,
        )


class TestDictRoundTrip:
    def test_grid(self):
        network = grid_network(4, 4)
        assert_networks_equal(network, network_from_dict(network_to_dict(network)))

    def test_irregular_lengths_survive_exactly(self):
        network = random_delaunay_network(40, 50, seed=2)
        restored = network_from_dict(network_to_dict(network))
        assert network_digest(network) == network_digest(restored)

    def test_wrong_format_rejected(self):
        with pytest.raises(RoadNetworkError):
            network_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        document = network_to_dict(grid_network(2, 2))
        document["version"] = 999
        with pytest.raises(RoadNetworkError):
            network_from_dict(document)


class TestJsonFiles:
    def test_round_trip(self, tmp_path):
        network = grid_network(3, 5)
        path = tmp_path / "map.json"
        save_network_json(network, path)
        assert_networks_equal(network, load_network_json(path))

    def test_json_is_valid(self, tmp_path):
        path = tmp_path / "map.json"
        save_network_json(grid_network(2, 2), path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro.roadnet"


class TestCsvFiles:
    def test_round_trip(self, tmp_path):
        network = random_delaunay_network(30, 40, seed=5)
        save_network_csv(network, tmp_path / "mapdir")
        restored = load_network_csv(tmp_path / "mapdir")
        assert_networks_equal(network, restored)
        assert network_digest(network) == network_digest(restored)

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(RoadNetworkError):
            load_network_csv(tmp_path)

    def test_files_created(self, tmp_path):
        save_network_csv(grid_network(2, 3), tmp_path / "out")
        assert (tmp_path / "out" / "junctions.csv").exists()
        assert (tmp_path / "out" / "segments.csv").exists()
        assert (tmp_path / "out" / "network.meta.json").exists()
