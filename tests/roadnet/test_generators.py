"""Tests for the synthetic map generators."""

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet import (
    ATLANTA_JUNCTIONS,
    ATLANTA_SEGMENTS,
    atlanta_like,
    fig1_network,
    fig2_network,
    fig3_network,
    grid_network,
    network_stats,
    path_network,
    radial_network,
    random_delaunay_network,
)


class TestGrid:
    def test_counts(self):
        network = grid_network(4, 5)
        assert network.junction_count == 20
        assert network.segment_count == 4 * 4 + 3 * 5  # horizontals + verticals

    def test_single_junction(self):
        network = grid_network(1, 1)
        assert network.junction_count == 1
        assert network.segment_count == 0

    def test_invalid_dimensions(self):
        with pytest.raises(RoadNetworkError):
            grid_network(0, 5)

    def test_spacing_sets_lengths(self):
        network = grid_network(2, 2, spacing=250.0)
        assert all(
            network.segment_length(sid) == pytest.approx(250.0)
            for sid in network.segment_ids()
        )

    def test_connected(self):
        assert len(grid_network(7, 3).connected_components()) == 1


class TestPath:
    def test_counts(self):
        network = path_network(6)
        assert network.segment_count == 6
        assert network.junction_count == 7

    def test_invalid(self):
        with pytest.raises(RoadNetworkError):
            path_network(0)


class TestRadial:
    def test_counts(self):
        network = radial_network(3, 6)
        assert network.junction_count == 3 * 6 + 1
        assert network.segment_count == 2 * 3 * 6

    def test_invalid(self):
        with pytest.raises(RoadNetworkError):
            radial_network(2, 2)

    def test_connected(self):
        assert len(radial_network(4, 8).connected_components()) == 1


class TestDelaunay:
    def test_exact_target_counts(self):
        network = random_delaunay_network(200, 290, seed=1)
        assert network.junction_count == 200
        assert network.segment_count == 290

    def test_connected_by_construction(self):
        network = random_delaunay_network(150, 160, seed=3)
        assert len(network.connected_components()) == 1

    def test_deterministic_in_seed(self):
        a = random_delaunay_network(80, 100, seed=42)
        b = random_delaunay_network(80, 100, seed=42)
        assert a.segment_ids() == b.segment_ids()
        assert all(
            a.segment(sid).endpoints() == b.segment(sid).endpoints()
            for sid in a.segment_ids()
        )

    def test_different_seeds_differ(self):
        a = random_delaunay_network(80, 100, seed=1)
        b = random_delaunay_network(80, 100, seed=2)
        endpoints_a = [a.segment(s).endpoints() for s in a.segment_ids()]
        endpoints_b = [b.segment(s).endpoints() for s in b.segment_ids()]
        assert endpoints_a != endpoints_b

    def test_too_few_targets_rejected(self):
        with pytest.raises(RoadNetworkError):
            random_delaunay_network(100, 50, seed=1)

    def test_too_many_targets_rejected(self):
        with pytest.raises(RoadNetworkError):
            random_delaunay_network(10, 1000, seed=1)


class TestAtlantaLike:
    def test_paper_scale_counts(self):
        # Full scale matches the published map size exactly.
        network = atlanta_like(scale=0.1)
        assert network.junction_count == round(ATLANTA_JUNCTIONS * 0.1)
        assert network.segment_count == round(ATLANTA_SEGMENTS * 0.1)

    def test_edge_ratio_matches_paper(self):
        network = atlanta_like(scale=0.15)
        stats = network_stats(network)
        paper_ratio = ATLANTA_SEGMENTS / ATLANTA_JUNCTIONS  # ~1.316
        assert stats.segments_per_junction == pytest.approx(paper_ratio, rel=0.02)

    def test_invalid_scale(self):
        with pytest.raises(RoadNetworkError):
            atlanta_like(scale=0.0)
        with pytest.raises(RoadNetworkError):
            atlanta_like(scale=1.5)


class TestFigureFixtures:
    def test_fig1_has_segment_18_interior(self):
        network = fig1_network()
        assert network.segment_count == 24
        assert network.has_segment(18)
        # interior segment: several linked segments, as in the figure
        assert len(network.neighbors(18)) >= 4

    def test_fig2_region_and_frontier_match_paper(self):
        network = fig2_network()
        assert network.frontier({8, 9, 11}) == (6, 10, 14)
        assert network.is_connected_region({8, 9, 11})

    def test_fig2_length_order_matches_paper(self):
        network = fig2_network()
        # rows: s9 shortest, s8 second (the figure's row 2), s11 longest
        rows = sorted({8, 9, 11}, key=lambda s: network.segment_length(s))
        assert rows == [9, 8, 11]
        cols = sorted({6, 10, 14}, key=lambda s: network.segment_length(s))
        assert cols == [6, 14, 10]

    def test_fig3_s8_has_six_neighbors(self):
        network = fig3_network()
        assert len(network.neighbors(8)) == 6
