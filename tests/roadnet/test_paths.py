"""Tests for shortest-path routing and segment hop distances."""

import pytest

from repro.errors import RoadNetworkError
from repro.roadnet import (
    RoadNetworkBuilder,
    grid_network,
    path_network,
    segment_hop_distances,
    shortest_junction_path,
    shortest_route,
)


@pytest.fixture(scope="module")
def grid():
    return grid_network(5, 5, spacing=100.0)


class TestShortestPath:
    def test_trivial_same_junction(self, grid):
        route = shortest_junction_path(grid, 7, 7)
        assert route.junctions == (7,)
        assert route.segments == ()
        assert route.length == 0.0

    def test_adjacent(self, grid):
        route = shortest_junction_path(grid, 0, 1)
        assert route.length == pytest.approx(100.0)
        assert route.hops == 1

    def test_manhattan_distance_on_grid(self, grid):
        # (0,0) -> (4,4): 8 hops of 100 m
        route = shortest_junction_path(grid, 0, 24)
        assert route.length == pytest.approx(800.0)
        assert route.hops == 8

    def test_route_is_contiguous(self, grid):
        route = shortest_junction_path(grid, 3, 21)
        for junction, segment_id in zip(route.junctions, route.segments):
            segment = grid.segment(segment_id)
            assert junction in segment.endpoints()
        assert route.junctions[0] == 3
        assert route.junctions[-1] == 21

    def test_prefers_shorter_road(self):
        builder = RoadNetworkBuilder()
        builder.add_junction(0, 0, 0)
        builder.add_junction(1, 100, 0)
        builder.add_junction(2, 50, 80)
        builder.add_segment(0, 0, 1, length=500.0)  # slow direct road
        builder.add_segment(1, 0, 2)
        builder.add_segment(2, 2, 1)
        network = builder.build()
        route = shortest_junction_path(network, 0, 1)
        assert route.segments == (1, 2)

    def test_no_path_raises(self):
        builder = RoadNetworkBuilder()
        for junction_id, (x, y) in enumerate([(0, 0), (1, 0), (9, 9), (10, 9)]):
            builder.add_junction(junction_id, x, y)
        builder.add_segment(0, 0, 1)
        builder.add_segment(1, 2, 3)
        with pytest.raises(RoadNetworkError):
            shortest_junction_path(builder.build(), 0, 3)

    def test_alias(self, grid):
        assert shortest_route(grid, 0, 5).length == shortest_junction_path(
            grid, 0, 5
        ).length


class TestHopDistances:
    def test_origin_is_zero(self, grid):
        assert segment_hop_distances(grid, 0)[0] == 0

    def test_neighbors_are_one(self, grid):
        hops = segment_hop_distances(grid, 0)
        for neighbor in grid.neighbors(0):
            assert hops[neighbor] == 1

    def test_path_network_distances(self):
        network = path_network(6)
        hops = segment_hop_distances(network, 0)
        assert [hops[i] for i in range(7) if i in hops] == [0, 1, 2, 3, 4, 5]

    def test_max_hops_truncates(self):
        network = path_network(6)
        hops = segment_hop_distances(network, 0, max_hops=2)
        assert set(hops) == {0, 1, 2}

    def test_covers_component(self, grid):
        hops = segment_hop_distances(grid, 0)
        assert len(hops) == grid.segment_count
