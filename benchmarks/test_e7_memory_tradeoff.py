"""E7 — The stated RGE/RPLE time-memory trade-off, quantified.

Demo paper, Section III: "RGE has larger anonymization runtime to build
collision-free links on the fly but smaller memory requirement while RPLE
has smaller anonymization runtime but requires larger memory space to store
the collision-free links." This experiment measures both sides across map
sizes, plus the mapping-store baseline whose memory grows per *request*
rather than per map.
"""

import pytest

from repro import PrivacyProfile, PopulationSnapshot
from repro.baselines import MappingStoreCloaking
from repro.bench import ResultTable
from repro.core import Preassignment
from repro.metrics import Timer
from repro.roadnet import grid_network


GRID_SIZES = (8, 12, 16, 24)  # 112 .. 1104 segments


def test_e7_memory_and_preassignment_cost(benchmark):
    table = ResultTable(
        "E7",
        "RGE vs RPLE memory / pre-assignment cost vs map size "
        "(RPLE T=8; RGE keeps no persistent state)",
        [
            "segments",
            "rple_preassign_ms",
            "rple_table_bytes",
            "rple_bytes_per_segment",
            "rge_persistent_bytes",
        ],
    )
    sizes, bytes_series = [], []
    for size in GRID_SIZES:
        network = grid_network(size, size)
        with Timer() as timer:
            pre = Preassignment(network, list_length=8)
        table.add_row(
            segments=network.segment_count,
            rple_preassign_ms=round(timer.elapsed * 1000.0, 2),
            rple_table_bytes=pre.memory_bytes(),
            rple_bytes_per_segment=round(
                pre.memory_bytes() / network.segment_count, 1
            ),
            rge_persistent_bytes=0,
        )
        sizes.append(network.segment_count)
        bytes_series.append(pre.memory_bytes())
    table.print_and_save()

    # Mapping-store baseline: memory per *request* instead of per map.
    network = grid_network(12, 12)
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in network.segment_ids()}
    )
    profile = PrivacyProfile.uniform(
        levels=3, base_k=5, k_step=5, base_l=3, l_step=1, max_segments=80
    )
    store = MappingStoreCloaking(network, seed=1)
    store_table = ResultTable(
        "E7b",
        "Mapping-store baseline: server-side state grows with requests "
        "(ReverseCloak stores nothing per request)",
        ["requests", "stored_bytes", "bytes_per_request"],
    )
    for count in (1, 10, 50, 100):
        while store.stored_requests < count:
            store.anonymize(30, snapshot, profile)
        store_table.add_row(
            requests=count,
            stored_bytes=store.storage_bytes(),
            bytes_per_request=round(store.storage_bytes() / count, 1),
        )
    store_table.print_and_save()

    benchmark(lambda: Preassignment(grid_network(12, 12), list_length=8))

    # Paper shape: RPLE memory is linear in map size; RGE persistent is 0.
    ratio_small = bytes_series[0] / sizes[0]
    ratio_large = bytes_series[-1] / sizes[-1]
    assert ratio_small == pytest.approx(ratio_large, rel=0.01)
    # Mapping-store grows linearly with request volume.
    stored = store_table.column("stored_bytes")
    assert stored[-1] > stored[0] * 50
