"""E8 — Success rate vs spatial tolerance.

The tolerance sigma_s bounds the cloaking region; a tolerance too tight for
the requested (k, l) makes anonymization fail ("cloaking failure"). This
sweep measures the success rate over many users as the tolerance tightens —
the classic cliff the full paper's evaluation reports.
"""

import pytest

from repro import KeyChain, PrivacyProfile
from repro.bench import ResultTable, pick_user_segments
from repro.errors import CloakingError


TOLERANCES = (8, 12, 16, 24, 48, 96)
K, LEVELS = 12, 2
USERS = 20


def _success_rate(engine, snapshot, users, tolerance, chain):
    profile = PrivacyProfile.uniform(
        levels=LEVELS,
        base_k=K,
        k_step=K // 2,
        base_l=3,
        l_step=1,
        max_segments=tolerance,
    )
    successes = 0
    for user_segment in users:
        try:
            engine.anonymize(user_segment, snapshot, profile, chain)
        except CloakingError:
            continue
        successes += 1
    return successes / len(users)


def test_e8_success_rate_vs_tolerance(
    network, snapshot, rge_engine, rple_engine, benchmark
):
    users = pick_user_segments(snapshot, USERS, seed=8)
    chain = KeyChain.from_passphrases(["e8-1", "e8-2"])

    table = ResultTable(
        "E8",
        f"Cloaking success rate vs spatial tolerance (k={K}, "
        f"{USERS} users, {network.name})",
        ["max_segments", "rge_success", "rple_success"],
    )
    rge_series, rple_series = [], []
    for tolerance in TOLERANCES:
        rge_rate = _success_rate(rge_engine, snapshot, users, tolerance, chain)
        rple_rate = _success_rate(rple_engine, snapshot, users, tolerance, chain)
        rge_series.append(rge_rate)
        rple_series.append(rple_rate)
        table.add_row(
            max_segments=tolerance,
            rge_success=round(rge_rate, 2),
            rple_success=round(rple_rate, 2),
        )
    table.print_and_save()

    benchmark(
        lambda: _success_rate(rge_engine, snapshot, users[:5], TOLERANCES[-1], chain)
    )

    # Shape: loose tolerance succeeds (near) always; the loosest setting
    # must dominate the tightest for both algorithms.
    assert rge_series[-1] == 1.0
    assert rge_series[-1] >= rge_series[0]
    assert rple_series[-1] >= rple_series[0]
    # And the tightest tolerance visibly hurts at least one algorithm.
    assert min(rge_series[0], rple_series[0]) < 1.0
