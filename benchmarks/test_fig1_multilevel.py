"""E1 — Figure 1: multi-level reversible anonymization walkthrough.

The paper's Figure 1 shows a small sub-graph where the user's segment (s18,
level L0) is grown by three keyed levels — Key1 adds {s17, s22}, Key2 adds
{s14, s15, s19}, Key3 adds {s9, s21, s24} — and each key selectively removes
exactly its own additions. The exact topology is not recoverable from the
figure, so this experiment reproduces the *walkthrough semantics* on the
fig1 fixture: per-level added sets of the same scale, peeled in reverse
exactly, with every intermediate region recovered.
"""

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    fig1_network,
)
from repro.bench import ResultTable


@pytest.fixture(scope="module")
def setup():
    network = fig1_network()
    # Figure 1's walkthrough: ~2 users per segment makes the level sizes
    # (1, +2, +3, +3) reachable with small k values.
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in network.segment_ids()}
    )
    profile = PrivacyProfile.uniform(
        levels=3, base_k=5, k_step=5, base_l=3, l_step=3, max_segments=20
    )
    chain = KeyChain.from_passphrases(["fig1-k1", "fig1-k2", "fig1-k3"])
    engine = ReverseCloakEngine(network)
    return network, snapshot, profile, chain, engine


def test_fig1_multilevel_walkthrough(setup, benchmark):
    network, snapshot, profile, chain, engine = setup
    user_segment = 18  # "The segment s18 contains the actual user"

    envelope = benchmark(
        lambda: engine.anonymize(user_segment, snapshot, profile, chain)
    )
    result = engine.deanonymize(envelope, chain, target_level=0)

    table = ResultTable(
        "E1",
        "Figure 1 walkthrough: per-level additions and reverse removal "
        "(fig1 fixture, user on s18)",
        ["level", "region_segments", "added_by_level", "removed_on_peel"],
    )
    table.add_row(
        level="L0", region_segments=1, added_by_level="-", removed_on_peel="-"
    )
    for level in (1, 2, 3):
        added = sorted(
            set(result.regions[level]) - set(result.regions[level - 1])
        )
        table.add_row(
            level=f"L{level}",
            region_segments=len(result.regions[level]),
            added_by_level="{" + ", ".join(f"s{s}" for s in added) + "}",
            removed_on_peel="{" + ", ".join(f"s{s}" for s in result.removed[level]) + "}",
        )
    table.print_and_save()

    # The walkthrough's invariants:
    assert result.region_at(0) == (user_segment,)
    for level in (1, 2, 3):
        # each key removes exactly its own additions, nothing else
        added = set(result.regions[level]) - set(result.regions[level - 1])
        assert added == set(result.removed[level])
        assert envelope.level_record(level).steps == len(added)
    # multi-level growth matches the figure's scale (a handful per level)
    assert 5 <= len(envelope.region) <= 20
