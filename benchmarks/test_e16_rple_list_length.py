"""E16 (ablation) — RPLE transition-list length T.

T is RPLE's central constant (Figure 3 uses T=6). Longer lists cost
linearly more memory and pre-assignment time but give each anchor more
escape routes — fewer dead-anchor global fallbacks (decision D12) and
fewer redraws. This ablation sweeps T and reports every side of that
trade-off.
"""

import statistics

import pytest

from repro import (
    KeyChain,
    Preassignment,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
)
from repro.bench import ResultTable, pick_user_segments, standard_network, standard_snapshot
from repro.errors import CloakingError
from repro.metrics import Timer, measure

from conftest import profile_for_k


T_SWEEP = (4, 6, 8, 12, 16)
K = 20


def test_e16_rple_list_length_ablation(benchmark):
    network = standard_network("grid", 16)
    snapshot = standard_snapshot("grid", 16, 1200)
    users = pick_user_segments(snapshot, 6)
    chain = KeyChain.from_passphrases(["e16-1", "e16-2", "e16-3"])
    profile = profile_for_k(K)

    table = ResultTable(
        "E16",
        f"RPLE ablation: transition-list length T (k={K}, "
        f"{network.name})",
        [
            "T",
            "preassign_ms",
            "table_kb",
            "fallback_steps_pct",
            "cloak_ms",
            "peel_ms",
        ],
    )
    fallback_rates = []
    for list_length in T_SWEEP:
        with Timer() as preassign_timer:
            algorithm = ReversiblePreassignmentExpansion.for_network(
                network, list_length=list_length
            )
        engine = ReverseCloakEngine(network, algorithm)

        # Count global-fallback steps by instrumenting the fallback hook.
        counters = {"fallback": 0, "steps": 0}
        original_fallback = algorithm._global_fallback_forward
        original_forward = algorithm.forward_step

        def counting_fallback(*args, **kwargs):
            counters["fallback"] += 1
            return original_fallback(*args, **kwargs)

        def counting_forward(*args, **kwargs):
            counters["steps"] += 1
            return original_forward(*args, **kwargs)

        # Instrumentation monkeypatch on a single-process benchmark:
        # the patched object never crosses a spawn boundary here.
        # reprolint: disable=spawn-safety
        algorithm._global_fallback_forward = counting_fallback
        # reprolint: disable=spawn-safety
        algorithm.forward_step = counting_forward
        envelopes = []
        cloak_summary = measure(
            lambda: envelopes.append(
                engine.anonymize(users[0], snapshot, profile, chain)
            ),
            repeats=3,
        )
        for user_segment in users[1:]:
            try:
                envelopes.append(
                    engine.anonymize(user_segment, snapshot, profile, chain)
                )
            except CloakingError:
                continue
        algorithm._global_fallback_forward = original_fallback
        algorithm.forward_step = original_forward

        peel_summary = measure(
            lambda: engine.deanonymize(envelopes[0], chain, target_level=0),
            repeats=3,
        )
        fallback_pct = 100.0 * counters["fallback"] / max(1, counters["steps"])
        fallback_rates.append(fallback_pct)
        table.add_row(
            T=list_length,
            preassign_ms=round(preassign_timer.elapsed * 1000.0, 1),
            table_kb=round(
                algorithm.preassignment.memory_bytes() / 1024.0, 1
            ),
            fallback_steps_pct=round(fallback_pct, 2),
            cloak_ms=round(cloak_summary.mean_s * 1000.0, 3),
            peel_ms=round(peel_summary.mean_s * 1000.0, 3),
        )
    table.print_and_save()

    benchmark(
        lambda: ReversiblePreassignmentExpansion.for_network(
            network, list_length=8
        )
    )

    # Shapes: memory strictly grows with T; the dead-anchor fallback rate
    # at the largest T does not exceed the smallest T's.
    kbs = table.column("table_kb")
    assert kbs == sorted(kbs)
    assert fallback_rates[-1] <= fallback_rates[0]
