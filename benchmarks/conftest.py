"""Shared fixtures for the experiment benchmarks.

Every file here regenerates one paper figure or evaluation claim (the
experiment index lives in DESIGN.md section 4). Alongside pytest-benchmark
timings, each experiment writes a paper-style result table to
``benchmarks/results/`` — EXPERIMENTS.md quotes those artifacts.
"""

from __future__ import annotations

import pytest

from repro import (
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
)
from repro.bench import standard_network, standard_snapshot, pick_user_segments


#: The main sweep workload: a 16x16 grid (480 segments) with 1,200 cars.
GRID_KIND, GRID_SIZE, GRID_CARS = "grid", 16, 1200


@pytest.fixture(scope="session")
def network():
    return standard_network(GRID_KIND, GRID_SIZE)


@pytest.fixture(scope="session")
def snapshot():
    return standard_snapshot(GRID_KIND, GRID_SIZE, GRID_CARS)


@pytest.fixture(scope="session")
def user_segments(snapshot):
    return pick_user_segments(snapshot, 8)


@pytest.fixture(scope="session")
def rge_engine(network):
    return ReverseCloakEngine(network)


@pytest.fixture(scope="session")
def rple_engine(network):
    algorithm = ReversiblePreassignmentExpansion.for_network(network)
    return ReverseCloakEngine(network, algorithm)


@pytest.fixture(scope="session")
def chain3():
    return KeyChain.from_passphrases(["bench-1", "bench-2", "bench-3"])


def profile_for_k(k: int, levels: int = 3) -> PrivacyProfile:
    """The sweep profile family used across E5/E6/E9."""
    return PrivacyProfile.uniform(
        levels=levels,
        base_k=k,
        k_step=max(1, k // 2),
        base_l=3,
        l_step=1,
        max_segments=240,
    )
