"""PRF-plane and batch-serving benchmark (PR 2 trajectory).

Three measurements:

1. **Draw microbench** — per-call ``keyed_draw`` vs the batched plane
   (``LevelDraws`` sequential serving and raw ``prf_block``), plus the
   stdlib ``hmac.new`` construction the seed used, in ns/draw.
2. **Anonymize** — RGE and RPLE at the trajectory workload (10k-segment
   map, ~500-segment regions; small map with ``--quick``), batched
   (``ReverseCloakEngine`` default) vs per-call (``batched_prf=False``) vs
   seed-legacy (``batched_prf=False, incremental=False``), asserting
   byte-identical envelopes across all three.
3. **Batch throughput** — ``TrustedAnonymizer.cloak_batch`` requests/sec
   across thread-pool widths, vs sequential single-request serving.

Writes ``BENCH_prf.json`` at the repo root (``BENCH_prf.quick.json`` for
``--quick`` CI smoke runs, which never clobber the committed full-sweep
baseline) and the usual ``benchmarks/results/`` table artifacts.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_prf.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_prf.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import hashlib
import hmac
import json
import time
from pathlib import Path

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.bench import ResultTable
from repro.core.algorithm import LevelDraws, keyed_draw
from repro.keys import AccessKey, prf_block
from repro.lbs import CloakRequest, TrustedAnonymizer

REPO_ROOT = Path(__file__).resolve().parents[1]

FULL_MAP_SIDE, FULL_MAP_SEGMENTS = 71, 9940
QUICK_MAP_SIDE, QUICK_MAP_SEGMENTS = 16, 480
FULL_REGION = 500
QUICK_REGION = 40
FULL_DRAWS = 4096
QUICK_DRAWS = 512
FULL_BATCH = 64
QUICK_BATCH = 12
WORKER_WIDTHS = (1, 2, 4, 8)


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def profile_for_region(target: int) -> PrivacyProfile:
    return PrivacyProfile.uniform(
        levels=2,
        base_k=max(4, target // 2),
        k_step=target - max(4, target // 2),
        base_l=3,
        l_step=1,
        max_segments=2 * target,
    )


def bench_draws(count: int, repeats: int) -> dict:
    """ns/draw for every PRF call plane (identical output values)."""
    key = AccessKey.from_passphrase(1, "bench-prf-draws")
    domain = b"reversecloak|level=1|transitions"
    indices = [step << 24 for step in range(1, count + 1)]

    def stdlib_hmac() -> None:
        for index in indices:
            hmac.new(
                key.material, domain + index.to_bytes(8, "big"), hashlib.sha256
            ).digest()

    def per_call() -> None:
        for step in range(1, count + 1):
            keyed_draw(key, step)

    def level_draws() -> None:
        draws = LevelDraws(key)
        for step in range(1, count + 1):
            draws.draw(step)

    def raw_block() -> None:
        prf_block(key.material, domain, indices)

    reference = [keyed_draw(key, step) for step in range(1, count + 1)]
    assert list(prf_block(key.material, domain, indices)) == reference
    draws = LevelDraws(key)
    assert [draws.draw(step) for step in range(1, count + 1)] == reference

    out = {}
    for name, fn in (
        ("stdlib_hmac_ns", stdlib_hmac),
        ("per_call_ns", per_call),
        ("level_draws_ns", level_draws),
        ("prf_block_ns", raw_block),
    ):
        out[name] = round(_best(fn, repeats) * 1e6 / count, 1)
    out["draws"] = count
    out["batched_vs_per_call"] = round(out["per_call_ns"] / out["prf_block_ns"], 2)
    out["batched_vs_stdlib"] = round(out["stdlib_hmac_ns"] / out["prf_block_ns"], 2)
    return out


def bench_anonymize(quick: bool, repeats: int) -> list:
    side = QUICK_MAP_SIDE if quick else FULL_MAP_SIDE
    segments = QUICK_MAP_SEGMENTS if quick else FULL_MAP_SEGMENTS
    target = QUICK_REGION if quick else FULL_REGION
    network = grid_network(side, side)
    snapshot = PopulationSnapshot.from_counts(
        {sid: 1 for sid in network.segment_ids()}
    )
    user = network.segment_ids()[len(network.segment_ids()) // 2]
    chain = KeyChain.from_passphrases(["bench-prf-1", "bench-prf-2"])
    profile = profile_for_region(target)
    rows = []
    for algo_name, algorithm in (
        ("rge", None),
        ("rple", ReversiblePreassignmentExpansion.for_network(network)),
    ):
        batched = ReverseCloakEngine(network, algorithm)
        per_call = ReverseCloakEngine(network, algorithm, batched_prf=False)
        legacy = ReverseCloakEngine(
            network, algorithm, batched_prf=False, incremental=False
        )
        envelope = batched.anonymize(user, snapshot, profile, chain)
        assert envelope == per_call.anonymize(user, snapshot, profile, chain)
        assert envelope == legacy.anonymize(user, snapshot, profile, chain)
        batched_ms = _best(
            lambda: batched.anonymize(user, snapshot, profile, chain), repeats
        )
        per_call_ms = _best(
            lambda: per_call.anonymize(user, snapshot, profile, chain), repeats
        )
        legacy_ms = _best(
            lambda: legacy.anonymize(user, snapshot, profile, chain),
            max(1, repeats - 1),
        )
        rows.append(
            {
                "map_segments": segments,
                "region_segments": len(envelope.region),
                "algorithm": algo_name,
                "anon_batched_ms": round(batched_ms, 3),
                "anon_percall_ms": round(per_call_ms, 3),
                "anon_seed_legacy_ms": round(legacy_ms, 3),
                "batched_vs_percall": round(per_call_ms / batched_ms, 2),
                "improvement_vs_seed": round(legacy_ms / batched_ms, 2),
            }
        )
        print(
            f"anonymize map={segments} region={len(envelope.region)} "
            f"algo={algo_name}: batched {batched_ms:.2f} ms, per-call "
            f"{per_call_ms:.2f} ms, seed-legacy {legacy_ms:.2f} ms"
        )
    return rows


def bench_batch_serving(quick: bool, repeats: int) -> list:
    side = QUICK_MAP_SIDE if quick else FULL_MAP_SIDE
    segments = QUICK_MAP_SEGMENTS if quick else FULL_MAP_SEGMENTS
    network = grid_network(side, side)
    snapshot = PopulationSnapshot.from_counts(
        {sid: 2 for sid in network.segment_ids()}
    )
    batch_size = QUICK_BATCH if quick else FULL_BATCH
    # Modest per-request regions: batch throughput should measure serving
    # overheads and parallel scaling, not one giant expansion.
    profile = PrivacyProfile.uniform(
        levels=2, base_k=20, k_step=20, base_l=3, l_step=1, max_segments=80
    )
    server = TrustedAnonymizer(network)
    server.update_snapshot(snapshot)
    requests = [
        CloakRequest(
            user_id=user_id,
            profile=profile,
            chain=KeyChain.from_passphrases([f"b{user_id}-1", f"b{user_id}-2"]),
        )
        for user_id in snapshot.users()[:batch_size]
    ]
    sequential = [server.cloak(request) for request in requests]
    rows = []
    sequential_ms = _best(
        lambda: [server.cloak(request) for request in requests], repeats
    )
    for width in WORKER_WIDTHS:
        outcomes = server.cloak_batch(requests, max_workers=width)
        assert [o.envelope for o in outcomes] == sequential
        batch_ms = _best(
            lambda: server.cloak_batch(requests, max_workers=width), repeats
        )
        rows.append(
            {
                "map_segments": segments,
                "batch_size": batch_size,
                "workers": width,
                "sequential_ms": round(sequential_ms, 3),
                "batch_ms": round(batch_ms, 3),
                "throughput_rps": round(batch_size / (batch_ms / 1000.0), 1),
                "speedup_vs_sequential": round(sequential_ms / batch_ms, 2),
            }
        )
        print(
            f"batch map={segments} size={batch_size} workers={width}: "
            f"{batch_ms:.2f} ms ({batch_size / (batch_ms / 1000.0):.0f} req/s, "
            f"{sequential_ms / batch_ms:.2f}x vs sequential)"
        )
    return rows


def run(quick: bool, repeats: int) -> dict:
    draw_stats = bench_draws(QUICK_DRAWS if quick else FULL_DRAWS, repeats)
    print(
        "draws: stdlib %(stdlib_hmac_ns)s ns, per-call %(per_call_ns)s ns, "
        "LevelDraws %(level_draws_ns)s ns, prf_block %(prf_block_ns)s ns"
        % draw_stats
    )
    anon_rows = bench_anonymize(quick, repeats)
    batch_rows = bench_batch_serving(quick, repeats)

    table = ResultTable(
        "BENCH_PRF",
        "Batched PRF plane and concurrent batch serving (best-of-%d, ms)"
        % repeats,
        [
            "map_segments",
            "region_segments",
            "algorithm",
            "anon_batched_ms",
            "anon_percall_ms",
            "anon_seed_legacy_ms",
            "batched_vs_percall",
            "improvement_vs_seed",
        ],
    )
    for row in anon_rows:
        table.add_row(**row)
    table.print_and_save()

    batch_table = ResultTable(
        "BENCH_PRF_BATCH",
        "cloak_batch throughput across thread-pool widths (best-of-%d)"
        % repeats,
        [
            "map_segments",
            "batch_size",
            "workers",
            "sequential_ms",
            "batch_ms",
            "throughput_rps",
            "speedup_vs_sequential",
        ],
    )
    for row in batch_rows:
        batch_table.add_row(**row)
    batch_table.print_and_save()

    rple = next(r for r in anon_rows if r["algorithm"] == "rple")
    best_batch = max(batch_rows, key=lambda r: r["throughput_rps"])
    return {
        "benchmark": "bench_prf",
        "quick": quick,
        "repeats": repeats,
        "draws": draw_stats,
        "anonymize": anon_rows,
        "batch_serving": batch_rows,
        "summary": {
            "rple_anonymize_improvement_vs_seed_legacy": rple[
                "improvement_vs_seed"
            ],
            "rple_anonymize_batched_vs_percall": rple["batched_vs_percall"],
            "draw_batched_vs_percall": draw_stats["batched_vs_per_call"],
            "best_batch_throughput_rps": best_batch["throughput_rps"],
            "best_batch_workers": best_batch["workers"],
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small map / small batch CI smoke"
    )
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()
    document = run(quick=args.quick, repeats=args.repeats)
    name = "BENCH_prf.quick.json" if args.quick else "BENCH_prf.json"
    out = REPO_ROOT / name
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
