"""E3 — Figure 3: RPLE pre-assigned transition lists.

Reproduces the Figure 3 semantics: segment s8 carries a forward transition
list of length T = 6; the keyed draw R_i selects slot ``R_i mod 6``; the
selected segment's backward list returns s8 at the same slot ("once the
backward transition sequence moves back to s14, with the same key, it can
select s8 from the backward transition list of s14").
"""

import pytest

from repro import Preassignment, fig3_network
from repro.bench import ResultTable
from repro.core import ReversiblePreassignmentExpansion, ToleranceSpec
from repro.core.algorithm import keyed_draw
from repro.keys import AccessKey


@pytest.fixture(scope="module")
def fig3():
    return fig3_network()


def test_fig3_preassigned_lists(fig3, benchmark):
    pre = benchmark(lambda: Preassignment(fig3, list_length=6))

    table = ResultTable(
        "E3",
        "Figure 3 RPLE transition lists (T=6) around segment s8",
        ["segment", "forward_list", "backward_list"],
    )
    for segment_id in sorted(fig3.segment_ids()):
        table.add_row(
            segment=f"s{segment_id}",
            forward_list=str(
                ["-" if t is None else f"s{t}" for t in pre.forward_list(segment_id)]
            ),
            backward_list=str(
                ["-" if t is None else f"s{t}" for t in pre.backward_list(segment_id)]
            ),
        )
    table.print_and_save()

    # Figure 3 claims:
    forward = pre.forward_list(8)
    assert sorted(t for t in forward if t is not None) == [10, 11, 12, 13, 14, 15]
    assert pre.verify_symmetry()  # FT[s][q] = sp <=> BT[sp][q] = s

    # "The index of s14 is calculated by Ri mod 6": the keyed step selects
    # exactly slot (R mod 6), and the backward list at that slot returns s8.
    key = AccessKey.from_passphrase(1, "fig3")
    rple = ReversiblePreassignmentExpansion(pre)
    wide = ToleranceSpec(max_segments=10)
    slot = keyed_draw(key, 1, 0) % 6
    selected = rple.forward_step(fig3, {8}, 8, key, 1, wide)
    assert selected == forward[slot]
    assert pre.backward_list(selected)[slot] == 8
    assert rple.backward_anchors(fig3, {8}, selected, key, 1, wide) == (8,)
