"""E12 — Anonymous query processing cost vs privacy level.

The paper bounds region size precisely because it drives "the performance
of the anonymous query processing technique": an LBS must return candidate
results valid for the whole region. This experiment measures candidate-set
size and precision as a key-holding requester queries at each level —
the concrete payoff of selective de-anonymization.
"""

import statistics

import pytest

from repro.bench import ResultTable
from repro.lbs import LBSProvider, PoiDirectory

from conftest import profile_for_k


RADIUS = 250.0
POIS = 600


def test_e12_query_cost_by_level(
    network, snapshot, user_segments, rge_engine, chain3, benchmark
):
    directory = PoiDirectory(network, count=POIS, seed=12)
    provider = LBSProvider(directory)
    profile = profile_for_k(10)

    per_level_counts = {level: [] for level in range(4)}
    per_level_precision = {level: [] for level in range(4)}
    for index, user_segment in enumerate(user_segments):
        pseudonym = f"user-{index}"
        envelope = rge_engine.anonymize(user_segment, snapshot, profile, chain3)
        provider.upload(pseudonym, envelope)
        truth = rge_engine.deanonymize(envelope, chain3, target_level=0)
        for level in range(4):
            result = provider.serve_range_query(
                pseudonym,
                radius=RADIUS,
                region_override=truth.regions[level],
            )
            per_level_counts[level].append(result.candidate_count)
            per_level_precision[level].append(result.precision_for(user_segment))

    table = ResultTable(
        "E12",
        f"Anonymous range-query cost by exposed level (radius {RADIUS:.0f} m, "
        f"{POIS} POIs, mean over {len(user_segments)} users)",
        ["exposed_level", "region_segments", "candidate_pois", "precision"],
    )
    region_sizes = {}
    envelope = rge_engine.anonymize(user_segments[0], snapshot, profile, chain3)
    truth = rge_engine.deanonymize(envelope, chain3, target_level=0)
    for level in range(4):
        region_sizes[level] = len(truth.regions[level])
        table.add_row(
            exposed_level=f"L{level}",
            region_segments=region_sizes[level],
            candidate_pois=round(statistics.mean(per_level_counts[level]), 1),
            precision=round(statistics.mean(per_level_precision[level]), 3),
        )
    table.print_and_save()

    provider.upload("bench", envelope)
    benchmark(lambda: provider.serve_range_query("bench", radius=RADIUS))

    # Shapes: finer levels -> no more candidates, no less precision.
    means = [statistics.mean(per_level_counts[level]) for level in range(4)]
    assert means == sorted(means)  # candidates grow with level
    precisions = [
        statistics.mean(per_level_precision[level]) for level in range(4)
    ]
    assert precisions[0] >= precisions[-1]  # L0 is the most precise
    assert precisions[0] == pytest.approx(1.0)  # exact at L0
