"""E18 (ablation) — robustness across road-network topologies.

The sweeps use grids (controlled, regular); the paper's map is irregular.
This ablation reruns the core pipeline — cloak, reverse, measure quality —
on three topologies (Manhattan grid, ring-and-spoke, Delaunay
"Atlanta-like") and checks the system's behaviour is topology-robust:
exact reversal everywhere, requirements met everywhere, and timings within
the same order of magnitude.
"""

import statistics

import pytest

from repro import KeyChain, ReverseCloakEngine
from repro.bench import (
    ResultTable,
    pick_user_segments,
    standard_network,
    standard_snapshot,
    sweep_profile,
)
from repro.errors import CloakingError
from repro.metrics import measure, region_quality
from repro.roadnet import network_stats


TOPOLOGIES = (("grid", 16), ("radial", 8), ("atlanta", 20))
K = 10
USERS = 6


def test_e18_topology_ablation(benchmark):
    table = ResultTable(
        "E18",
        f"Topology ablation (RGE, k={K}): cloak/reverse across map families",
        [
            "map",
            "segments",
            "mean_linked",
            "cloak_ms",
            "peel_ms",
            "region_segments",
            "exact_reversals",
        ],
    )
    chain = KeyChain.from_passphrases(["e18-1", "e18-2"])
    profile = sweep_profile(levels=2, k=K, max_segments=120)
    cloak_times = {}
    for kind, size in TOPOLOGIES:
        network = standard_network(kind, size)
        snapshot = standard_snapshot(kind, size, n_cars=900)
        users = pick_user_segments(snapshot, USERS, seed=18)
        engine = ReverseCloakEngine(network)
        stats = network_stats(network)

        envelopes = []
        exact = 0
        for user_segment in users:
            try:
                envelope = engine.anonymize(user_segment, snapshot, profile, chain)
            except CloakingError:
                continue
            envelopes.append((user_segment, envelope))
            result = engine.deanonymize(envelope, chain, target_level=0)
            if result.region_at(0) == (user_segment,):
                exact += 1
        assert envelopes, f"no cloakable users on {kind}"

        cloak_summary = measure(
            lambda: engine.anonymize(envelopes[0][0], snapshot, profile, chain),
            repeats=5,
        )
        peel_summary = measure(
            lambda: engine.deanonymize(envelopes[0][1], chain, target_level=0),
            repeats=5,
        )
        cloak_times[kind] = cloak_summary.mean_s
        table.add_row(
            map=f"{kind}-{size}",
            segments=network.segment_count,
            mean_linked=round(stats.mean_linked_segments, 2),
            cloak_ms=round(cloak_summary.mean_s * 1000.0, 3),
            peel_ms=round(peel_summary.mean_s * 1000.0, 3),
            region_segments=round(
                statistics.mean(len(env.region) for __, env in envelopes), 1
            ),
            exact_reversals=f"{exact}/{len(envelopes)}",
        )
    table.print_and_save()

    network = standard_network("atlanta", 20)
    snapshot = standard_snapshot("atlanta", 20, n_cars=900)
    engine = ReverseCloakEngine(network)
    user_segment = pick_user_segments(snapshot, 1, seed=18)[0]
    benchmark(lambda: engine.anonymize(user_segment, snapshot, profile, chain))

    # Robustness: exact reversal on every topology; timings within 20x of
    # each other (same order of magnitude).
    for row in table.rows:
        recovered, total = row["exact_reversals"].split("/")
        assert recovered == total
    slowest, fastest = max(cloak_times.values()), min(cloak_times.values())
    assert slowest / fastest < 20.0
