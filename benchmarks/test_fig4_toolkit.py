"""E4 — Figure 4: the Anonymizer visualisation on the Atlanta-scale map.

The paper's screenshot shows the northwest-Atlanta road map (6,979
junctions / 9,187 segments), 10,000 Gaussian-placed cars, and the coloured
multi-level cloaking regions. This experiment regenerates that artifact as
``benchmarks/results/fig4_anonymizer.svg`` on a quarter-scale map (the
full-scale rendering is examples/toolkit_render.py; the benchmark keeps the
suite fast while preserving the pipeline).
"""

import pytest

from repro import (
    GaussianPlacement,
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    atlanta_like,
)
from repro.bench import ResultTable, results_dir
from repro.roadnet import network_stats
from repro.toolkit import SvgMapRenderer


SCALE = 0.25
CARS = 2500  # 10,000 x scale


@pytest.fixture(scope="module")
def setup():
    network = atlanta_like(scale=SCALE)
    simulator = TrafficSimulator(
        network,
        n_cars=CARS,
        seed=2017,
        placement=GaussianPlacement(hotspots=((0.4, 0.6), (0.65, 0.35))),
    )
    simulator.run(3)
    return network, simulator


def test_fig4_anonymizer_rendering(setup, benchmark):
    network, simulator = setup
    snapshot = simulator.snapshot()
    stats = network_stats(network)

    profile = PrivacyProfile.uniform(
        levels=3, base_k=10, k_step=10, base_l=4, l_step=2, max_segments=80
    )
    chain = KeyChain.from_passphrases(["fig4-1", "fig4-2", "fig4-3"])
    engine = ReverseCloakEngine(network)
    user_segment = max(
        snapshot.occupied_segments(), key=lambda sid: (snapshot.count_on(sid), -sid)
    )
    envelope = engine.anonymize(user_segment, snapshot, profile, chain)
    result = engine.deanonymize(envelope, chain, target_level=0)

    renderer = SvgMapRenderer(network, width=1100)
    svg = benchmark(
        lambda: renderer.render(
            regions_by_level=result.regions,
            car_positions=simulator.positions().values(),
            title=f"ReverseCloak Anonymizer — {network.name}",
        )
    )
    output = results_dir() / "fig4_anonymizer.svg"
    output.write_text(svg)

    table = ResultTable(
        "E4",
        "Figure 4 toolkit rendering (Atlanta-like map, Gaussian fleet)",
        ["quantity", "paper", "this_run"],
    )
    table.add_row(quantity="junctions", paper=6979, this_run=network.junction_count)
    table.add_row(quantity="segments", paper=9187, this_run=network.segment_count)
    table.add_row(quantity="cars", paper=10000, this_run=snapshot.user_count)
    table.add_row(
        quantity="segments/junction",
        paper=round(9187 / 6979, 3),
        this_run=round(stats.segments_per_junction, 3),
    )
    table.add_row(
        quantity="cloak levels rendered",
        paper=3,
        this_run=len(result.regions) - 1,
    )
    table.print_and_save()

    assert svg.startswith("<svg")
    assert svg.count("<circle") == CARS
    # all four region levels (L0..L3) drawn over the base map
    assert svg.count("<line") == network.segment_count + sum(
        len(region) for region in result.regions.values()
    )
    # the map preserves the paper's edge/junction regime
    assert stats.segments_per_junction == pytest.approx(9187 / 6979, rel=0.02)
