"""De-anonymization scaling benchmark: the reversal plane's trajectory.

Dedicated reversal rows (PR 4): hint-mode and search-mode peeling across
map and region sizes, for both algorithms, at three points of the
implementation trajectory:

* **undo** — the default engine: one checkpoint/rollback region state per
  peel, cross-budget hypothesis/interval memos, compiled CSR network
  (``ReverseCloakEngine()``);
* **clone** — the PR 1-3 search discipline: incremental states derived by
  clone-per-region (``undo_log=False``), the equivalence oracle;
* **legacy** — the seed-era configuration: from-scratch recomputes and
  per-call PRF draws (``incremental=False, batched_prf=False``).

Writes ``BENCH_reversal.json`` at the repo root (the machine-readable
trajectory future PRs diff against) plus the usual ``ResultTable``
artifacts. Search mode is measured at the capped region size only — it is
hypothesis-enumeration over blind envelopes and grows sharply with region
size (see ``bench_expansion.SEARCH_REGION_CAP``).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_reversal.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_reversal.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro import (
    KeyChain,
    PopulationSnapshot,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.bench import ResultTable

from bench_expansion import (
    FULL_MAPS,
    FULL_REGIONS,
    QUICK_MAPS,
    QUICK_REGIONS,
    SEARCH_REGION_CAP,
    _time,
    profile_for_region,
    search_profile_for_region,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(quick: bool, repeats: int) -> dict:
    maps = QUICK_MAPS if quick else FULL_MAPS
    regions = QUICK_REGIONS if quick else FULL_REGIONS
    table = ResultTable(
        "BENCH_REVERSAL",
        "De-anonymize scaling: undo-log search vs clone-derived vs legacy "
        "(best-of-%d, ms)" % repeats,
        [
            "map_segments",
            "region_segments",
            "algorithm",
            "hint_ms",
            "hint_clone_ms",
            "hint_legacy_ms",
            "search_ms",
            "search_clone_ms",
            "search_legacy_ms",
            "search_speedup_vs_clone",
        ],
    )
    rows = []
    # Same keyed workload as bench_expansion, so the search sweep point
    # here is directly comparable with the BENCH_expansion.json history
    # (the PR 4 acceptance numbers reference that trajectory).
    chain = KeyChain.from_passphrases(["bench-x-1", "bench-x-2"])
    for side, segment_count in maps:
        network = grid_network(side, side)
        snapshot = PopulationSnapshot.from_counts(
            {sid: 1 for sid in network.segment_ids()}
        )
        user = network.segment_ids()[len(network.segment_ids()) // 2]
        algorithms = {
            "rge": None,
            "rple": ReversiblePreassignmentExpansion.for_network(network),
        }
        for target in regions:
            profile = profile_for_region(target)
            for algo_name, algorithm in algorithms.items():
                undo = ReverseCloakEngine(network, algorithm)
                clone = ReverseCloakEngine(network, algorithm, undo_log=False)
                legacy = ReverseCloakEngine(
                    network, algorithm, incremental=False, batched_prf=False
                )
                envelope = undo.anonymize(user, snapshot, profile, chain)
                region_segments = len(envelope.region)

                reference = undo.deanonymize(envelope, chain, 0, mode="hint")
                assert reference == clone.deanonymize(envelope, chain, 0, mode="hint")
                assert reference == legacy.deanonymize(envelope, chain, 0, mode="hint")
                hint_ms = _time(
                    lambda: undo.deanonymize(envelope, chain, 0, mode="hint"),
                    repeats,
                )
                hint_clone_ms = _time(
                    lambda: clone.deanonymize(envelope, chain, 0, mode="hint"),
                    repeats,
                )
                hint_legacy_ms = _time(
                    lambda: legacy.deanonymize(envelope, chain, 0, mode="hint"),
                    repeats,
                )
                search_ms = search_clone_ms = search_legacy_ms = None
                if target <= SEARCH_REGION_CAP:
                    search_chain = KeyChain.from_passphrases(["bench-x-s"])
                    blind = undo.anonymize(
                        user,
                        snapshot,
                        search_profile_for_region(target),
                        search_chain,
                        include_hints=False,
                    )
                    truth = undo.deanonymize(blind, search_chain, 0, mode="search")
                    assert truth == clone.deanonymize(
                        blind, search_chain, 0, mode="search"
                    )
                    assert truth == legacy.deanonymize(
                        blind, search_chain, 0, mode="search"
                    )
                    search_ms = _time(
                        lambda: undo.deanonymize(
                            blind, search_chain, 0, mode="search"
                        ),
                        repeats,
                    )
                    search_clone_ms = _time(
                        lambda: clone.deanonymize(
                            blind, search_chain, 0, mode="search"
                        ),
                        repeats,
                    )
                    search_legacy_ms = _time(
                        lambda: legacy.deanonymize(
                            blind, search_chain, 0, mode="search"
                        ),
                        repeats,
                    )
                row = {
                    "map_segments": segment_count,
                    "region_segments": region_segments,
                    "algorithm": algo_name,
                    "hint_ms": round(hint_ms, 3),
                    "hint_clone_ms": round(hint_clone_ms, 3),
                    "hint_legacy_ms": round(hint_legacy_ms, 3),
                    "search_ms": None if search_ms is None else round(search_ms, 3),
                    "search_clone_ms": (
                        None if search_clone_ms is None else round(search_clone_ms, 3)
                    ),
                    "search_legacy_ms": (
                        None
                        if search_legacy_ms is None
                        else round(search_legacy_ms, 3)
                    ),
                    "search_speedup_vs_clone": (
                        None
                        if search_ms is None
                        else round(search_clone_ms / search_ms, 2)
                    ),
                }
                rows.append(row)
                table.add_row(**row)
                label = (
                    f"map={segment_count} region={region_segments} algo={algo_name}:"
                    f" hint {hint_legacy_ms:.1f} -> {hint_ms:.1f} ms"
                )
                if search_ms is not None:
                    label += f", search {search_legacy_ms:.1f} -> {search_ms:.1f} ms"
                print(label)
    table.print_and_save()
    smallest = min(m for _, m in maps)
    sweep = {
        row["algorithm"]: row
        for row in rows
        if row["map_segments"] == smallest and row["search_ms"] is not None
    }
    return {
        "benchmark": "bench_reversal",
        "quick": quick,
        "repeats": repeats,
        "rows": rows,
        "summary": {
            # The PR 4 acceptance point: search-mode reversal at the
            # smallest sweep map, capped region size (historically the
            # 1k-segment grid, 40-segment regions).
            "search_sweep_map_segments": smallest,
            "search_ms": {
                name: row["search_ms"] for name, row in sweep.items()
            },
            "search_speedup_vs_clone": {
                name: row["search_speedup_vs_clone"] for name, row in sweep.items()
            },
            "search_speedup_vs_legacy": {
                name: round(row["search_legacy_ms"] / row["search_ms"], 2)
                for name, row in sweep.items()
            },
            "hint_never_slower_than_clone": all(
                row["hint_ms"] <= row["hint_clone_ms"] * 1.25 for row in rows
            ),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small map / small regions CI smoke"
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    document = run(quick=args.quick, repeats=args.repeats)
    # Quick (CI-smoke) runs must not clobber the committed full-sweep
    # baseline that future PRs diff against.
    name = "BENCH_reversal.quick.json" if args.quick else "BENCH_reversal.json"
    out = REPO_ROOT / name
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
