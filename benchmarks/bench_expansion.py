"""Expansion/peel scaling benchmark: incremental RegionState vs recompute.

Times anonymize and de-anonymize across map sizes (~1k/5k/10k segments)
and region sizes, for both algorithms, with the incremental region state
on (`ReverseCloakEngine(incremental=True)`, the default) and off (the
seed-era from-scratch recomputes). Writes:

* ``BENCH_expansion.json`` at the repo root — machine-readable trajectory
  for future PRs to diff against;
* ``benchmarks/results/bench_expansion.{txt,csv}`` — the usual
  :class:`ResultTable` artifacts.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_expansion.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_expansion.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.bench import ResultTable

REPO_ROOT = Path(__file__).resolve().parents[1]

#: (grid side, segment count) — grids of n*n junctions have 2n(n-1) segments.
FULL_MAPS = ((23, 1012), (51, 5100), (71, 9940))
QUICK_MAPS = ((16, 480),)

#: Target region sizes (the profile's k with one user per segment).
FULL_REGIONS = (40, 120, 250, 500)
QUICK_REGIONS = (20, 40)

#: Search-mode reversal is exponential-ish in the worst case; cap the
#: region size it is measured at so the benchmark stays bounded.
SEARCH_REGION_CAP = 40


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def profile_for_region(target: int) -> PrivacyProfile:
    """Two keyed levels whose k forces the region to ~``target`` segments
    (the snapshot holds one user per segment)."""
    return PrivacyProfile.uniform(
        levels=2,
        base_k=max(4, target // 2),
        k_step=target - max(4, target // 2),
        base_l=3,
        l_step=1,
        max_segments=2 * target,
    )


def search_profile_for_region(target: int) -> PrivacyProfile:
    """One keyed level for the search-mode reversal measurement — search
    over stacked blind levels is ambiguity-dominated (it can hit the branch
    cap on unlucky keys, see E17), which would measure collision handling
    rather than peel scaling."""
    return PrivacyProfile.uniform(
        levels=1, base_k=target, k_step=1, base_l=3, l_step=1,
        max_segments=2 * target,
    )


def run(quick: bool, repeats: int) -> dict:
    maps = QUICK_MAPS if quick else FULL_MAPS
    regions = QUICK_REGIONS if quick else FULL_REGIONS
    table = ResultTable(
        "BENCH_EXPANSION",
        "Anonymize/de-anonymize scaling: incremental RegionState vs recompute "
        "(best-of-%d, ms)" % repeats,
        [
            "map_segments",
            "region_segments",
            "algorithm",
            "anon_ms",
            "anon_legacy_ms",
            "anon_speedup",
            "hint_ms",
            "hint_legacy_ms",
            "search_ms",
            "search_legacy_ms",
        ],
    )
    rows = []
    chain = KeyChain.from_passphrases(["bench-x-1", "bench-x-2"])
    for side, segment_count in maps:
        network = grid_network(side, side)
        snapshot = PopulationSnapshot.from_counts(
            {sid: 1 for sid in network.segment_ids()}
        )
        user = network.segment_ids()[len(network.segment_ids()) // 2]
        algorithms = {
            "rge": None,
            "rple": ReversiblePreassignmentExpansion.for_network(network),
        }
        for target in regions:
            profile = profile_for_region(target)
            for algo_name, algorithm in algorithms.items():
                fast = ReverseCloakEngine(network, algorithm)
                # Legacy = the seed-era configuration: from-scratch region
                # recomputes AND per-call PRF draws.
                slow = ReverseCloakEngine(
                    network, algorithm, incremental=False, batched_prf=False
                )
                envelope = fast.anonymize(user, snapshot, profile, chain)
                assert envelope == slow.anonymize(user, snapshot, profile, chain)
                region_segments = len(envelope.region)

                anon_ms = _time(
                    lambda: fast.anonymize(user, snapshot, profile, chain), repeats
                )
                anon_legacy_ms = _time(
                    lambda: slow.anonymize(user, snapshot, profile, chain), repeats
                )
                hint_ms = _time(
                    lambda: fast.deanonymize(envelope, chain, 0, mode="hint"),
                    repeats,
                )
                hint_legacy_ms = _time(
                    lambda: slow.deanonymize(envelope, chain, 0, mode="hint"),
                    repeats,
                )
                search_ms = search_legacy_ms = None
                if target <= SEARCH_REGION_CAP:
                    search_chain = KeyChain.from_passphrases(["bench-x-s"])
                    blind = fast.anonymize(
                        user,
                        snapshot,
                        search_profile_for_region(target),
                        search_chain,
                        include_hints=False,
                    )
                    search_ms = _time(
                        lambda: fast.deanonymize(
                            blind, search_chain, 0, mode="search"
                        ),
                        repeats,
                    )
                    search_legacy_ms = _time(
                        lambda: slow.deanonymize(
                            blind, search_chain, 0, mode="search"
                        ),
                        repeats,
                    )
                row = {
                    "map_segments": segment_count,
                    "region_segments": region_segments,
                    "algorithm": algo_name,
                    "anon_ms": round(anon_ms, 3),
                    "anon_legacy_ms": round(anon_legacy_ms, 3),
                    "anon_speedup": round(anon_legacy_ms / anon_ms, 2),
                    "hint_ms": round(hint_ms, 3),
                    "hint_legacy_ms": round(hint_legacy_ms, 3),
                    "search_ms": None if search_ms is None else round(search_ms, 3),
                    "search_legacy_ms": (
                        None if search_legacy_ms is None else round(search_legacy_ms, 3)
                    ),
                }
                rows.append(row)
                table.add_row(**row)
                print(
                    f"map={segment_count} region={region_segments} "
                    f"algo={algo_name}: anonymize {anon_legacy_ms:.1f} -> "
                    f"{anon_ms:.1f} ms ({anon_legacy_ms / anon_ms:.1f}x)"
                )
    table.print_and_save()
    largest = max(m for _, m in maps)
    biggest_regions = [
        row
        for row in rows
        if row["map_segments"] == largest
        and row["region_segments"]
        >= max(r["region_segments"] for r in rows if r["map_segments"] == largest)
    ]
    speedups = {row["algorithm"]: row["anon_speedup"] for row in biggest_regions}
    return {
        "benchmark": "bench_expansion",
        "quick": quick,
        "repeats": repeats,
        "rows": rows,
        "summary": {
            "largest_map_segments": largest,
            "anonymize_speedup_at_largest_map_largest_region": speedups,
            # RGE is the engine's default algorithm and the one with the
            # quadratic recompute trap this PR removes; RPLE's legacy path
            # was already local/near-linear by design, so its ratio is
            # smaller (its own quadratic term — per-slot region copies —
            # is removed too, and its speedup grows with region size).
            "anonymize_speedup_default_algorithm": speedups.get("rge"),
            "meets_5x_anonymize_at_10k_large_regions": (
                speedups.get("rge", 0) >= 5.0
            ),
            "search_never_slower": all(
                row["search_ms"] <= row["search_legacy_ms"] * 1.25
                for row in rows
                if row["search_ms"] is not None
            ),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small map / small regions CI smoke"
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    document = run(quick=args.quick, repeats=args.repeats)
    # Quick (CI-smoke) runs must not clobber the committed full-sweep
    # baseline that future PRs diff against.
    name = "BENCH_expansion.quick.json" if args.quick else "BENCH_expansion.json"
    out = REPO_ROOT / name
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
