"""E10 — Attack resilience: what each principal can infer.

Quantifies the paper's security claims as posterior entropies:

* a keyless adversary (LBS provider, eavesdropper) faces the full outer
  region — entropy ~ log2 of its size — even with complete algorithm
  knowledge (structural enumeration cannot do better);
* each granted key cuts the entropy exactly to the next level's region;
* random key probing is always rejected.
"""

import pytest

from repro import KeyChain, PrivacyProfile
from repro.attacks import (
    KeyProbeAdversary,
    StructuralAdversary,
    segment_entropy,
    uniform_entropy,
    user_entropy,
)
from repro.bench import ResultTable

from conftest import profile_for_k


def test_e10_attack_resilience(
    network, snapshot, user_segments, rge_engine, chain3, benchmark
):
    profile = profile_for_k(8)
    user_segment = user_segments[0]
    envelope = rge_engine.anonymize(user_segment, snapshot, profile, chain3)
    truth = rge_engine.deanonymize(envelope, chain3, target_level=0)

    table = ResultTable(
        "E10",
        "Adversary posterior entropy (bits) by keys held "
        f"(k base=8, 3 levels, {network.name})",
        ["keys_held", "exposed_level", "segment_entropy", "user_entropy"],
    )
    for level in range(3, -1, -1):
        region = set(truth.regions[level])
        table.add_row(
            keys_held="none" if level == 3 else f"Key{level + 1}..Key3",
            exposed_level=f"L{level}",
            segment_entropy=round(segment_entropy(region), 2) if region else 0.0,
            user_entropy=round(user_entropy(region, snapshot), 2),
        )
    table.print_and_save()

    # Structural adversary: algorithm knowledge without keys does not
    # pinpoint the user.
    adversary = StructuralAdversary(network, max_sequences=50_000)
    posterior = benchmark(lambda: adversary.attack_envelope(envelope, 0))
    structural = ResultTable(
        "E10b",
        "Keyless structural enumeration of the envelope",
        ["quantity", "value"],
    )
    structural.add_row(
        quantity="outer region segments", value=len(envelope.region)
    )
    structural.add_row(
        quantity="consistent L0 candidates", value=posterior.candidate_count
    )
    structural.add_row(
        quantity="posterior entropy (bits)", value=round(posterior.entropy(), 2)
    )
    structural.add_row(
        quantity="P(true L0)",
        value=round(posterior.probability_of({user_segment}), 3),
    )
    probe = KeyProbeAdversary(network, seed=10).probe(envelope, trials=5)
    structural.add_row(quantity="random-key probes rejected", value=probe["rejected"])
    structural.add_row(quantity="random-key probes accepted", value=probe["accepted"])
    structural.print_and_save()

    # Claims:
    entropies = table.column("segment_entropy")
    assert entropies == sorted(entropies, reverse=True)  # keys shrink entropy
    assert entropies[-1] == 0.0  # full chain -> exact segment
    assert posterior.candidate_count >= 3  # keyless stays ambiguous
    assert frozenset({user_segment}) in set(posterior.candidate_regions)
    assert posterior.probability_of({user_segment}) < 0.6
    assert probe["accepted"] == 0
    # k-anonymity floor: the outer region hides >= k users
    assert user_entropy(set(envelope.region), snapshot) >= uniform_entropy(
        profile.requirement(3).k
    )
