"""Open-loop load benchmark of the TCP front-end (PR 8).

Closed-loop benchmarks (``bench_serving.py``) measure how fast the stack
*can* serve when the client politely waits; an open-loop harness measures
what the paper's deployment would actually see — requests arriving on a
socket at a rate that does not care how the server is doing. Arrivals are
Poisson (seeded, reproducible): the sender schedules each request at its
pre-drawn arrival instant and latency is measured *from that instant*, so
queueing delay under overload is charged to the server, never hidden by a
slow client (no coordinated omission).

For each server configuration (inline backend; coalescing process pools),
the harness first calibrates the closed-loop capacity with saturating
bursts, then sweeps offered load across fractions of that capacity —
below, near, and past saturation — recording achieved throughput and
p50/p99 latency at every point. The *knee* is the first sweep point whose
achieved throughput falls more than :data:`KNEE_TOLERANCE` short of its
offered rate: to the left the server keeps up and latency is flat; at the
knee achieved throughput plateaus at capacity and queueing delay takes
over. That plateau is the number the front-end is accountable for: the
full run asserts the best coalescing process-pool configuration keeps its
knee throughput at or above :data:`FRONTEND_MIN_RATIO` of the committed
``BENCH_serving.json`` inline ``cloak_batch`` rate — the socket, framing,
multiplexing and coalescing layers all together may cost at most that
much versus calling the service directly.

Client and server share one process (loopback, one event loop, serving
off-loop) — on the 1-CPU bench container this charges client-side frame
encoding and demultiplexing against the server, making the asserted
number conservative. The client uses the pre-encoded-request / raw-reply
``on_reply`` streaming mode (no per-request future, no ``json.loads`` of
outcomes) so the measurement is dominated by the protocol, not by the
load generator.

Writes ``BENCH_frontend.json`` at the repo root
(``BENCH_frontend.quick.json`` for ``--quick`` CI smoke runs, which never
clobber the committed full-sweep baseline) and the usual
``benchmarks/results/`` table artifacts.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_frontend.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_frontend.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import random
import time
from pathlib import Path

from repro import (
    AnonymizerService,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    grid_network,
)
from repro.bench import ResultTable
from repro.lbs import (
    CloakRequest,
    CloakRequestDoc,
    FaultAction,
    FaultPlan,
    FaultyConnection,
    FrontendClient,
    FrontendServer,
    InlineBackend,
    NetworkFaultInjector,
    ProcessPoolBackend,
    ResilientClient,
)
from repro.lbs.deferral import TemporalTolerance

REPO_ROOT = Path(__file__).resolve().parents[1]

FULL_MAP_SIDE, FULL_MAP_SEGMENTS = 71, 9940
QUICK_MAP_SIDE, QUICK_MAP_SEGMENTS = 16, 480
#: Distinct pre-encoded requests the sender cycles through.
FULL_REQUEST_POOL = 64
QUICK_REQUEST_POOL = 12
#: Closed-loop calibration: requests per saturating burst, bursts timed.
CALIBRATION_BURST = 256
CALIBRATION_REPEATS = 3
#: Offered load sweep, as fractions of the calibrated capacity — below,
#: near, and past saturation so the knee is bracketed from both sides.
SWEEP_FRACTIONS = (0.4, 0.7, 0.9, 1.05, 1.25, 1.5)
#: Seconds of Poisson arrivals per sweep point.
FULL_POINT_SECONDS = 2.5
QUICK_POINT_SECONDS = 0.4
#: A point is past the knee when achieved < KNEE_TOLERANCE * offered.
KNEE_TOLERANCE = 0.92
#: Full-run assertion: the best coalescing process-pool knee must stay at
#: or above this fraction of the committed closed-loop inline rate.
FRONTEND_MIN_RATIO = 0.8
#: Fallback when BENCH_serving.json is absent (its committed value).
COMMITTED_INLINE_RPS = 2889.4
#: Server tuning under test: the lane window is a small multiple of the
#: per-request service time (latency bound at light load); the flush
#: threshold is four times the bench_serving batch, reached only by the
#: adaptive accumulation at saturation (throughput bound past the knee,
#: amortizing the per-dispatch pipe round-trip further).
BATCH_WINDOW_MS = 4.0
BATCH_MAX = 256
#: Deep enough that saturation surfaces as queueing delay, not shedding —
#: the harness measures the knee, the shed path has its own tests.
MAX_PENDING = 1 << 20

ARRIVAL_SEED = 20170605

#: Faulted-serving contract (the lifecycle-hardening PR): with one
#: scripted mid-stream disconnect and one stalled reader injected per
#: FAULTED_DISRUPTION_UNIT connections, completed throughput must stay at
#: or above this fraction of an identical clean pass — recovery and
#: eviction are bounded costs, not collapses.
FAULTED_MIN_RATIO = 0.8
FAULTED_DISRUPTION_UNIT = 100
FULL_FAULTED_CONNECTIONS = 100
QUICK_FAULTED_CONNECTIONS = 20
FULL_FAULTED_REQUESTS = 8
QUICK_FAULTED_REQUESTS = 4
#: Frames a stalled reader pushes before falling silent (its replies are
#: real serving work wasted on a dead peer — part of the injected cost).
STALLED_READER_FRAMES = 8
#: Faulted-pass server tuning: small write-buffer bound and short drain
#: patience so the stalled reader is detected and evicted *during* the
#: measured window, plus an idle timeout as the backstop.
FAULTED_WRITE_BUFFER = 1 << 14
FAULTED_DRAIN_TIMEOUT_S = 0.25
FAULTED_IDLE_TIMEOUT_S = 0.5


def _encoded_requests(network, snapshot, pool_size: int) -> list:
    profile = PrivacyProfile.uniform(
        levels=2, base_k=20, k_step=20, base_l=3, l_step=1, max_segments=80
    )
    return [
        json.dumps(
            CloakRequestDoc.from_request(
                CloakRequest(
                    user_id=user_id,
                    profile=profile,
                    chain=KeyChain.from_passphrases(
                        [f"b{user_id}-1", f"b{user_id}-2"]
                    ),
                )
            ).to_dict(),
            separators=(",", ":"),
        )
        for user_id in snapshot.users()[:pool_size]
    ]


async def _calibrate(client, encoded) -> float:
    """Closed-loop capacity (req/s): best of a few saturating bursts."""
    best = 0.0
    for _ in range(CALIBRATION_REPEATS):
        start = time.perf_counter()
        futures = [
            client.submit_encoded(encoded[i % len(encoded)], raw=True)
            for i in range(CALIBRATION_BURST)
        ]
        await client.drain()
        await asyncio.gather(*futures)
        best = max(best, CALIBRATION_BURST / (time.perf_counter() - start))
    return best


async def _open_loop_point(client, encoded, rate: float, seconds: float) -> dict:
    """Offer ``rate`` req/s of Poisson arrivals for ``seconds``; measure."""
    rng = random.Random(ARRIVAL_SEED)
    arrivals = []
    clock = 0.0
    while clock < seconds:
        clock += rng.expovariate(rate)
        arrivals.append(clock)
    loop = asyncio.get_running_loop()
    done_at = [0.0] * len(arrivals)
    errors = 0
    remaining = len(arrivals)
    all_done = asyncio.Event()
    start = loop.time()

    def finish(index, payload):
        # Invoked synchronously by the client's reader task (the
        # ``on_reply`` load-generator mode): no future, no per-reply
        # ``call_soon`` — at thousands of requests per second that
        # machinery is measurable CPU charged against the server.
        nonlocal errors, remaining
        done_at[index] = loop.time() - start
        if payload is None or b'"status":"error"' in payload:
            errors += 1
        remaining -= 1
        if not remaining:
            all_done.set()

    # Collector churn (promoted futures, frame buffers) is bench noise,
    # not serving cost: collection is deferred to the gap between points.
    gc.collect()
    gc.disable()
    try:
        for index, arrival in enumerate(arrivals):
            delay = arrival - (loop.time() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            elif index % 32 == 0:
                # Behind schedule (past the knee the sender always is):
                # yield anyway. Client and server share this event loop,
                # and a sender that never suspends would starve the
                # server's frame handling and lane flushes — a loop stall
                # no remote client could ever inflict on a real
                # deployment.
                await asyncio.sleep(0)
            client.submit_encoded(
                encoded[index % len(encoded)],
                raw=True,
                on_reply=lambda payload, index=index: finish(index, payload),
            )
        await client.drain()
        await all_done.wait()
    finally:
        gc.enable()
    elapsed = max(done_at)
    # Latency from the *scheduled* arrival instant — queueing past the
    # knee is the server's problem, not smoothed away by a waiting sender.
    latencies = sorted(
        (done - arrival) * 1000.0
        for done, arrival in zip(done_at, arrivals)
    )
    return {
        "offered_rps": round(rate, 1),
        "achieved_rps": round(len(arrivals) / elapsed, 1),
        "requests": len(arrivals),
        "errors": errors,
        "p50_ms": round(latencies[len(latencies) // 2], 3),
        "p99_ms": round(latencies[int(len(latencies) * 0.99)], 3),
    }


def _find_knee(points: list) -> tuple:
    """(knee point, plateau req/s).

    The knee is the first sweep point that falls more than
    :data:`KNEE_TOLERANCE` short of its offered rate (the last point if
    the sweep never saturated — capacity was understated). The plateau is
    the best achieved throughput at or past the knee: once saturated the
    queue is never empty, so achieved throughput *is* the serving
    capacity under open load, and the best saturated point reads it with
    the least startup transient."""
    for index, point in enumerate(points):
        if point["achieved_rps"] < KNEE_TOLERANCE * point["offered_rps"]:
            break
    else:
        index = len(points) - 1
    plateau = max(p["achieved_rps"] for p in points[index:])
    return points[index], plateau


async def _bench_config(label, service, encoded, point_seconds) -> dict:
    async with FrontendServer(
        service,
        batch_window_ms=BATCH_WINDOW_MS,
        batch_max=BATCH_MAX,
        max_pending=MAX_PENDING,
        max_connection_pending=MAX_PENDING,
    ) as server:
        client = await FrontendClient.connect(server.host, server.port)
        # Warm-up: pool spawn, snapshot ship, engine build are start-up
        # costs, not steady-state serving.
        await asyncio.gather(
            *[client.submit_encoded(doc, raw=True) for doc in encoded]
        )
        capacity = await _calibrate(client, encoded)
        points = []
        for fraction in SWEEP_FRACTIONS:
            point = await _open_loop_point(
                client, encoded, fraction * capacity, point_seconds
            )
            point["load_fraction"] = fraction
            points.append(point)
            print(
                f"{label}: offered {point['offered_rps']:.0f} req/s -> "
                f"achieved {point['achieved_rps']:.0f} req/s "
                f"(p50 {point['p50_ms']:.2f} ms, p99 {point['p99_ms']:.2f} ms)"
            )
        assert all(point["errors"] == 0 for point in points), (
            f"{label}: open-loop serving must not error under load"
        )
        stats = await client.stats()
        await client.close()
    knee, plateau = _find_knee(points)
    print(
        f"{label}: closed-loop capacity {capacity:.0f} req/s, knee at "
        f"{knee['offered_rps']:.0f} req/s offered, saturated plateau "
        f"{plateau:.0f} req/s "
        f"({stats['counters']['batches_coalesced']} coalesced batches)"
    )
    return {
        "config": label,
        "closed_loop_capacity_rps": round(capacity, 1),
        "points": points,
        "knee_offered_rps": knee["offered_rps"],
        "knee_achieved_rps": knee["achieved_rps"],
        "knee_p99_ms": knee["p99_ms"],
        "plateau_rps": plateau,
        "batches_coalesced": stats["counters"]["batches_coalesced"],
        "requests_shed": stats["counters"]["frontend_requests_shed"],
    }


async def _faulted_pass(
    service,
    documents: list,
    n_connections: int,
    requests_per_connection: int,
    faulted: bool,
) -> dict:
    """One closed-loop pass of ``n_connections`` concurrent resilient
    clients, optionally disrupted by one scripted mid-stream disconnect
    and one stalled reader per :data:`FAULTED_DISRUPTION_UNIT`
    connections. Returns completed count, wall-clock rate and the
    recovery counters."""
    n_units = (
        max(1, n_connections // FAULTED_DISRUPTION_UNIT) if faulted else 0
    )
    # Scripted drops: client k*unit+7 loses its connection mid-stream
    # (just before its middle request) and must reconnect and retry.
    drop_frame = requests_per_connection // 2
    drop_targets = {
        (k * FAULTED_DISRUPTION_UNIT + 7) % n_connections
        for k in range(n_units)
    }
    tolerance = TemporalTolerance(
        max_defer_seconds=5.0,
        retry_interval_seconds=0.01,
        backoff_factor=2.0,
        jitter_fraction=0.25,
        jitter_seed=ARRIVAL_SEED,
    )
    async with FrontendServer(
        service,
        batch_window_ms=BATCH_WINDOW_MS,
        batch_max=BATCH_MAX,
        max_pending=MAX_PENDING,
        max_connection_pending=MAX_PENDING,
        idle_timeout_s=FAULTED_IDLE_TIMEOUT_S,
        max_write_buffer_bytes=FAULTED_WRITE_BUFFER,
        drain_timeout_s=FAULTED_DRAIN_TIMEOUT_S,
    ) as server:
        stalled = []
        for k in range(n_units):
            # The stalled reader: a tiny receive buffer, a burst of real
            # requests, and then silence — its replies back up against
            # the write-buffer bound until the server evicts it.
            conn = await FaultyConnection.connect(
                server.host,
                server.port,
                None,
                connection_index=n_connections + k,
                recv_buffer_bytes=2048,
            )
            for j in range(STALLED_READER_FRAMES):
                await conn.send_frame(
                    {"request_id": j, "request": documents[j % len(documents)]}
                )
            stalled.append(conn)

        async def drive(index: int) -> tuple:
            injector = None
            if index in drop_targets:
                injector = NetworkFaultInjector(
                    FaultPlan(
                        actions=(
                            FaultAction(
                                kind="drop_connection",
                                connection=index,
                                frame=drop_frame,
                            ),
                        )
                    )
                )
            client = ResilientClient(
                server.host,
                server.port,
                tolerance=tolerance,
                fault_injector=injector,
                connection_index=index,
            )
            completed = 0
            for j in range(requests_per_connection):
                outcome = await client.request(
                    documents[(index + j) % len(documents)]
                )
                completed += outcome.get("status") == "ok"
            reconnects = client.reconnects
            await client.close()
            return completed, reconnects

        start = time.perf_counter()
        results = await asyncio.gather(
            *[drive(index) for index in range(n_connections)]
        )
        elapsed = time.perf_counter() - start
        for conn in stalled:
            await conn.close()
        counters = server.counters()
    completed = sum(done for done, _ in results)
    return {
        "connections": n_connections,
        "requests_per_connection": requests_per_connection,
        "completed": completed,
        "elapsed_s": round(elapsed, 3),
        "rps": round(completed / elapsed, 1),
        "reconnects": sum(reconnects for _, reconnects in results),
        "connections_evicted": counters["connections_evicted"],
        "requests_shed": counters["frontend_requests_shed"],
    }


def _bench_faulted(network, snapshot, encoded, quick: bool) -> dict:
    """Clean pass vs faulted pass (inline backend): same clients, same
    requests, plus the per-unit scripted disconnect and stalled reader."""
    n_connections = (
        QUICK_FAULTED_CONNECTIONS if quick else FULL_FAULTED_CONNECTIONS
    )
    requests_per_connection = (
        QUICK_FAULTED_REQUESTS if quick else FULL_FAULTED_REQUESTS
    )
    documents = [json.loads(doc) for doc in encoded]
    with InlineBackend() as backend:
        service = AnonymizerService(network, backend=backend)
        service.update_snapshot(snapshot)
        clean = asyncio.run(
            _faulted_pass(
                service, documents, n_connections, requests_per_connection,
                faulted=False,
            )
        )
        faulted = asyncio.run(
            _faulted_pass(
                service, documents, n_connections, requests_per_connection,
                faulted=True,
            )
        )
        service.close()
    expected = n_connections * requests_per_connection
    # No admitted request is lost to the injected faults: every measured
    # request completes in both passes (the stalled reader's burst is
    # extra injected load, not part of the measured population).
    assert clean["completed"] == expected, (
        f"clean pass completed {clean['completed']}/{expected}"
    )
    assert faulted["completed"] == expected, (
        f"faulted pass completed {faulted['completed']}/{expected}"
    )
    ratio = faulted["rps"] / clean["rps"]
    print(
        f"faulted_frontend: clean {clean['rps']:.0f} req/s, faulted "
        f"{faulted['rps']:.0f} req/s ({ratio:.2f}x) with "
        f"{faulted['reconnects']} reconnect(s) and "
        f"{faulted['connections_evicted']} eviction(s) across "
        f"{n_connections} connections"
    )
    if not quick:
        assert ratio >= FAULTED_MIN_RATIO, (
            f"faulted serving fell to {ratio:.2f}x of the clean pass "
            f"(contract: >= {FAULTED_MIN_RATIO:.2f}x)"
        )
    return {
        "clean": clean,
        "faulted": faulted,
        "faulted_vs_clean": round(ratio, 3),
        "min_ratio": FAULTED_MIN_RATIO,
        "disruption_unit": FAULTED_DISRUPTION_UNIT,
    }


def _committed_inline_rps() -> float:
    committed = REPO_ROOT / "BENCH_serving.json"
    if committed.exists():
        return json.loads(committed.read_text())["summary"]["inline_rps"]
    return COMMITTED_INLINE_RPS


def run(quick: bool) -> dict:
    side = QUICK_MAP_SIDE if quick else FULL_MAP_SIDE
    segments = QUICK_MAP_SEGMENTS if quick else FULL_MAP_SEGMENTS
    pool_size = QUICK_REQUEST_POOL if quick else FULL_REQUEST_POOL
    point_seconds = QUICK_POINT_SECONDS if quick else FULL_POINT_SECONDS
    network = grid_network(side, side)
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in network.segment_ids()}
    )
    encoded = _encoded_requests(network, snapshot, pool_size)

    configs = [("inline", lambda: InlineBackend())]
    process_widths = (2,) if quick else (1, 2, 4)
    for width in process_widths:
        configs.append(
            (
                f"process-{width}",
                lambda width=width: ProcessPoolBackend(
                    width, start_method="fork"
                ),
            )
        )

    results = []
    for label, make_backend in configs:
        with make_backend() as backend:
            service = AnonymizerService(network, backend=backend)
            service.update_snapshot(snapshot)
            results.append(
                asyncio.run(
                    _bench_config(label, service, encoded, point_seconds)
                )
            )
            service.close()

    table = ResultTable(
        "BENCH_FRONTEND",
        "open-loop socket serving: offered vs achieved load, Poisson arrivals",
        [
            "config",
            "load_fraction",
            "offered_rps",
            "achieved_rps",
            "p50_ms",
            "p99_ms",
        ],
    )
    for result in results:
        for point in result["points"]:
            table.add_row(
                config=result["config"],
                load_fraction=point["load_fraction"],
                offered_rps=point["offered_rps"],
                achieved_rps=point["achieved_rps"],
                p50_ms=point["p50_ms"],
                p99_ms=point["p99_ms"],
            )
    table.print_and_save()

    faulted_section = _bench_faulted(network, snapshot, encoded, quick)

    inline_rps = _committed_inline_rps()
    best_process = max(
        (r for r in results if r["config"].startswith("process")),
        key=lambda r: r["plateau_rps"],
    )
    ratio = best_process["plateau_rps"] / inline_rps
    print(
        f"socket saturation plateau ({best_process['config']}): "
        f"{best_process['plateau_rps']:.0f} req/s = {ratio:.2f}x the "
        f"committed closed-loop inline rate ({inline_rps:.0f} req/s)"
    )
    if not quick:
        # The full-mode contract: the whole socket stack may cost at most
        # (1 - FRONTEND_MIN_RATIO) of the direct closed-loop inline rate.
        # Quick CI runs measure a toy map on shared runners — their
        # numbers are smoke, not contracts.
        assert ratio >= FRONTEND_MIN_RATIO, (
            f"socket plateau {best_process['plateau_rps']:.0f} req/s fell "
            f"below {FRONTEND_MIN_RATIO:.0%} of the committed inline "
            f"closed-loop rate {inline_rps:.0f} req/s"
        )

    return {
        "benchmark": "bench_frontend",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "map_segments": segments,
        "request_pool": pool_size,
        "batch_window_ms": BATCH_WINDOW_MS,
        "batch_max": BATCH_MAX,
        "point_seconds": point_seconds,
        "arrival_seed": ARRIVAL_SEED,
        "knee_tolerance": KNEE_TOLERANCE,
        "configs": results,
        "faulted_frontend": faulted_section,
        "summary": {
            "committed_inline_rps": inline_rps,
            "best_process_config": best_process["config"],
            "best_process_knee_offered_rps": best_process["knee_offered_rps"],
            "best_process_plateau_rps": best_process["plateau_rps"],
            "plateau_vs_committed_inline": round(ratio, 3),
            "min_ratio": FRONTEND_MIN_RATIO,
        },
    }


def main() -> None:
    global CALIBRATION_REPEATS
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small map / short points CI smoke"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=CALIBRATION_REPEATS,
        help="calibration bursts per config (kept for bench CLI symmetry)",
    )
    args = parser.parse_args()
    CALIBRATION_REPEATS = max(1, args.repeats)
    document = run(quick=args.quick)
    name = "BENCH_frontend.quick.json" if args.quick else "BENCH_frontend.json"
    out = REPO_ROOT / name
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
