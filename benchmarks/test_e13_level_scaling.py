"""E13 — Scaling with the number of privacy levels N.

The multi-level model's own cost: more levels mean more keyed expansions,
larger outer regions and longer peels. Sweeps N with fixed per-level
increments, reporting cloak time, region size and full-peel time.
"""

import pytest

from repro import KeyChain, PrivacyProfile
from repro.bench import ResultTable
from repro.metrics import measure


LEVELS_SWEEP = (1, 2, 4, 6, 8)
REPEATS = 3


def test_e13_level_count_scaling(
    network, snapshot, user_segments, rge_engine, benchmark
):
    table = ResultTable(
        "E13",
        f"Scaling with privacy level count N ({network.name}, base k=4, "
        "+2 per level)",
        ["levels", "cloak_ms", "region_segments", "full_peel_ms"],
    )
    region_sizes, cloak_times = [], []
    user_segment = user_segments[0]
    for levels in LEVELS_SWEEP:
        profile = PrivacyProfile.uniform(
            levels=levels,
            base_k=4,
            k_step=2,
            base_l=2,
            l_step=1,
            max_segments=240,
        )
        chain = KeyChain.from_passphrases(
            [f"e13-{levels}-{index}" for index in range(levels)]
        )
        cloak_summary = measure(
            lambda: rge_engine.anonymize(user_segment, snapshot, profile, chain),
            repeats=REPEATS,
        )
        envelope = rge_engine.anonymize(user_segment, snapshot, profile, chain)
        peel_summary = measure(
            lambda: rge_engine.deanonymize(envelope, chain, target_level=0),
            repeats=REPEATS,
        )
        region_sizes.append(len(envelope.region))
        cloak_times.append(cloak_summary.mean_s)
        table.add_row(
            levels=levels,
            cloak_ms=round(cloak_summary.mean_s * 1000.0, 3),
            region_segments=len(envelope.region),
            full_peel_ms=round(peel_summary.mean_s * 1000.0, 3),
        )
    table.print_and_save()

    profile = PrivacyProfile.uniform(
        levels=4, base_k=4, k_step=2, base_l=2, l_step=1, max_segments=240
    )
    chain = KeyChain.from_passphrases([f"e13-b-{index}" for index in range(4)])
    benchmark(lambda: rge_engine.anonymize(user_segment, snapshot, profile, chain))

    # Shapes: regions grow monotonically with N; so does cloak time overall.
    assert region_sizes == sorted(region_sizes)
    assert cloak_times[-1] > cloak_times[0]
