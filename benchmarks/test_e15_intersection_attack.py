"""E15 — The intersection attack on continuous cloaking.

Snapshot k-anonymity composes badly over time: linking one pseudonym's
cloak stream and intersecting per-tick candidate user sets erodes the
anonymity set far below k. This experiment measures the erosion speed and
how much a larger k delays identification — the standard motivation for
temporal-aware continuous-query defences.
"""

import statistics

import pytest

from repro import (
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.attacks import IntersectionAttack
from repro.bench import ResultTable
from repro.lbs import ContinuousCloaker


K_SWEEP = (5, 10, 20)
TICKS = 8
VICTIMS = 6


def _attack_for_k(k):
    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=600, seed=15)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    profile = PrivacyProfile.uniform(
        levels=1, base_k=k, k_step=0, base_l=3, l_step=0, max_segments=80
    )
    cloaker = ContinuousCloaker(engine, simulator, profile)
    attack = IntersectionAttack()
    traces = []
    for victim in simulator.snapshot().users()[:VICTIMS]:
        timeline = cloaker.run(victim, ticks=TICKS, interval_seconds=6.0)
        trace = attack.user_candidates(timeline)
        assert victim in trace.final_candidates  # the true user never escapes
        traces.append(trace)
    return traces


def test_e15_intersection_attack(benchmark):
    table = ResultTable(
        "E15",
        f"Intersection attack on {TICKS}-tick continuous cloaks "
        f"(mean over {VICTIMS} victims)",
        [
            "k",
            "candidates_tick1",
            "candidates_final",
            "identified_fraction",
            "mean_ticks_to_identify",
        ],
    )
    finals = []
    for k in K_SWEEP:
        traces = _attack_for_k(k)
        identified = [t for t in traces if t.identified]
        finals.append(
            statistics.mean(t.candidate_counts[-1] for t in traces)
        )
        table.add_row(
            k=k,
            candidates_tick1=round(
                statistics.mean(t.candidate_counts[0] for t in traces), 1
            ),
            candidates_final=round(finals[-1], 1),
            identified_fraction=round(len(identified) / len(traces), 2),
            mean_ticks_to_identify=(
                round(
                    statistics.mean(t.ticks_to_identify for t in identified) + 1,
                    1,
                )
                if identified
                else "-"
            ),
        )
    table.print_and_save()

    benchmark(lambda: _attack_for_k(5))

    # Shapes: the first tick honours k; linking erodes it; larger k leaves
    # more residual anonymity after the same number of observations.
    for k, traces in zip(K_SWEEP, map(lambda k: None, K_SWEEP)):
        pass  # per-k assertions done below on fresh traces
    traces_small = _attack_for_k(K_SWEEP[0])
    traces_large = _attack_for_k(K_SWEEP[-1])
    assert statistics.mean(
        t.candidate_counts[0] for t in traces_small
    ) >= K_SWEEP[0]
    assert statistics.mean(
        t.candidate_counts[-1] for t in traces_small
    ) < statistics.mean(t.candidate_counts[0] for t in traces_small)
    assert statistics.mean(
        t.candidate_counts[-1] for t in traces_large
    ) >= statistics.mean(t.candidate_counts[-1] for t in traces_small)
