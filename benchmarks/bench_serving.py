"""Serving-backend benchmark (PR 3 trajectory): inline vs thread pool vs
sharded process pool — cloaking and, since PR 5, batched de-anonymization.

Measures ``AnonymizerService.cloak_batch`` requests/sec on the trajectory
workload (10k-segment map, 64-request batches; small map with ``--quick``)
across the three execution backends at several worker widths, asserting
byte-identical envelopes between every backend and sequential single-request
serving. The thread-pool rows reproduce PR 2's ``cloak_batch`` measurement
(GIL-bound, so widths > 1 measure overhead); the process-pool rows are the
PR 3 cross-process path, where each worker holds its own engine against
a per-batch snapshot shipped as wire documents.

The PR 5 reversal section measures ``AnonymizerService.deanonymize_batch``
peels/sec over the same envelopes, in hint and search modes, across the
same backends — the first time the system's slowest serving operation
rides the execution seam at all. Reversal is snapshot-free pure CPU, so
unlike GIL-bound cloaking threads, process-pool shards genuinely
parallelise it on multi-core hardware (a 1-CPU container measures the
wire overhead floor instead — the number to beat is inline).

The PR 6 faulted section prices supervision: the same cloaking workload
runs through the process pool clean and then under a deterministic fault
plan crashing worker 0 once per 100 batches (``repro.lbs.faults``); the
run asserts faulted throughput stays at or above 0.8x clean, so the
recovery machinery can never silently become the bottleneck.

Timing is steady-state: each backend serves one warm-up batch first (pool
spawn and the one-time snapshot ship are start-up costs, not per-batch
costs) and the recorded number is the best of ``--repeats`` batches.

Writes ``BENCH_serving.json`` at the repo root (``BENCH_serving.quick.json``
for ``--quick`` CI smoke runs, which never clobber the committed full-sweep
baseline) and the usual ``benchmarks/results/`` table artifacts.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import (
    AnonymizerService,
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    grid_network,
)
from repro.bench import ResultTable
from repro.lbs import (
    CloakRequest,
    DeanonymizeRequestDoc,
    FaultAction,
    FaultPlan,
    InlineBackend,
    OutcomeDoc,
    ProcessPoolBackend,
    ThreadPoolBackend,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

FULL_MAP_SIDE, FULL_MAP_SEGMENTS = 71, 9940
QUICK_MAP_SIDE, QUICK_MAP_SEGMENTS = 16, 480
FULL_BATCH = 64
QUICK_BATCH = 12
FULL_WIDTHS = (1, 4, 8)
QUICK_WIDTHS = (1, 2)
#: The PR 6 fault workload: worker 0 crashes once per this many batches
#: (``incarnation: null``, so every respawned incarnation re-arms it).
FAULT_CRASH_EVERY = 100
#: One timed pass covers exactly one crash interval, and the recorded
#: throughput is the best of this many passes over one long-lived pool —
#: the same best-of idiom as the backend sweeps, so one-sided container
#: noise (a slow pass) cannot fail the ratio assertion.
FAULT_REPEATS = 3
#: Supervised recovery must keep faulted throughput at or above this
#: fraction of the clean run — the fault-tolerance overhead budget.
FAULTED_MIN_RATIO = 0.8

#: PR 2's recorded thread-pool serving ceiling on this workload
#: (BENCH_prf.json, 64-request batches): the number the process pool must
#: scale past.
PR2_THREAD_CEILING_RPS = 2611.6


def _best_batch_ms(service, requests, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        service.cloak_batch(requests)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def bench_serving(quick: bool, repeats: int) -> list:
    side = QUICK_MAP_SIDE if quick else FULL_MAP_SIDE
    segments = QUICK_MAP_SEGMENTS if quick else FULL_MAP_SEGMENTS
    batch_size = QUICK_BATCH if quick else FULL_BATCH
    widths = QUICK_WIDTHS if quick else FULL_WIDTHS
    network = grid_network(side, side)
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in network.segment_ids()}
    )
    # The PR 2 batch workload: modest per-request regions, so throughput
    # measures serving overheads and scaling, not one giant expansion.
    profile = PrivacyProfile.uniform(
        levels=2, base_k=20, k_step=20, base_l=3, l_step=1, max_segments=80
    )
    requests = [
        CloakRequest(
            user_id=user_id,
            profile=profile,
            chain=KeyChain.from_passphrases([f"b{user_id}-1", f"b{user_id}-2"]),
        )
        for user_id in snapshot.users()[:batch_size]
    ]

    reference = AnonymizerService(network)
    reference.update_snapshot(snapshot)
    sequential = [reference.cloak(request).to_json() for request in requests]
    sequential_ms = _best_batch_ms(
        reference, requests, repeats
    )  # inline backend == sequential serving

    def backend_rows(label: str, make_backend, widths) -> list:
        rows = []
        for width in widths:
            with make_backend(width) as backend:
                service = AnonymizerService(network, backend=backend)
                service.update_snapshot(snapshot)
                warm = service.cloak_batch(requests)
                produced = [outcome.envelope.to_json() for outcome in warm]
                assert produced == sequential, (
                    f"{label}@{width} diverged from sequential serving"
                )
                batch_ms = _best_batch_ms(service, requests, repeats)
            rows.append(
                {
                    "map_segments": segments,
                    "batch_size": batch_size,
                    "backend": label,
                    "workers": width,
                    "batch_ms": round(batch_ms, 3),
                    "throughput_rps": round(batch_size / (batch_ms / 1000.0), 1),
                    "speedup_vs_sequential": round(sequential_ms / batch_ms, 2),
                }
            )
            print(
                f"{label} workers={width}: {batch_ms:.2f} ms/batch "
                f"({batch_size / (batch_ms / 1000.0):.0f} req/s)"
            )
        return rows

    rows = backend_rows("inline", lambda _w: InlineBackend(), (1,))
    rows += backend_rows("thread", lambda w: ThreadPoolBackend(w), widths)
    rows += backend_rows(
        "process", lambda w: ProcessPoolBackend(w, start_method="fork"), widths
    )
    return rows


def _best_reversal_ms(service, requests, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        service.deanonymize_batch(requests)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def bench_reversal_serving(quick: bool, repeats: int) -> list:
    """The PR 5 section: batched de-anonymization across the backends."""
    side = QUICK_MAP_SIDE if quick else FULL_MAP_SIDE
    segments = QUICK_MAP_SEGMENTS if quick else FULL_MAP_SEGMENTS
    batch_size = QUICK_BATCH if quick else FULL_BATCH
    widths = QUICK_WIDTHS if quick else FULL_WIDTHS
    network = grid_network(side, side)
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in network.segment_ids()}
    )
    profile = PrivacyProfile.uniform(
        levels=2, base_k=20, k_step=20, base_l=3, l_step=1, max_segments=80
    )
    producer = AnonymizerService(network)
    producer.update_snapshot(snapshot)
    batches = {}
    for mode in ("hint", "search"):
        requests = []
        for user_id in snapshot.users()[:batch_size]:
            chain = KeyChain.from_passphrases(
                [f"r{user_id}-1", f"r{user_id}-2"]
            )
            envelope = producer.cloak(
                CloakRequest(user_id=user_id, profile=profile, chain=chain)
            )
            requests.append(
                DeanonymizeRequestDoc(
                    envelope=envelope,
                    keys=tuple(chain),
                    target_level=0,
                    mode=mode,
                )
            )
        batches[mode] = requests

    reference = AnonymizerService(network)
    sequential = {
        mode: [
            OutcomeDoc.from_result(
                reference.deanonymize(
                    r.envelope, r.key_map(), r.target_level, mode=mode
                )
            ).to_json()
            for r in requests
        ]
        for mode, requests in batches.items()
    }

    def backend_rows(label: str, make_backend, widths) -> list:
        rows = []
        for width in widths:
            for mode, requests in batches.items():
                with make_backend(width) as backend:
                    service = AnonymizerService(network, backend=backend)
                    warm = service.deanonymize_batch(requests)
                    produced = [
                        OutcomeDoc.from_result(outcome.result).to_json()
                        for outcome in warm
                    ]
                    assert produced == sequential[mode], (
                        f"reversal {label}@{width}/{mode} diverged from "
                        "sequential serving"
                    )
                    batch_ms = _best_reversal_ms(service, requests, repeats)
                rows.append(
                    {
                        "map_segments": segments,
                        "batch_size": batch_size,
                        "backend": label,
                        "workers": width,
                        "mode": mode,
                        "batch_ms": round(batch_ms, 3),
                        "throughput_rps": round(
                            batch_size / (batch_ms / 1000.0), 1
                        ),
                    }
                )
                print(
                    f"reversal {label} workers={width} mode={mode}: "
                    f"{batch_ms:.2f} ms/batch "
                    f"({batch_size / (batch_ms / 1000.0):.0f} peels/s)"
                )
        return rows

    rows = backend_rows("inline", lambda _w: InlineBackend(), (1,))
    rows += backend_rows("thread", lambda w: ThreadPoolBackend(w), widths)
    rows += backend_rows(
        "process", lambda w: ProcessPoolBackend(w, start_method="fork"), widths
    )
    return rows


def bench_faulted_serving(quick: bool) -> dict:
    """The PR 6 section: serving throughput while workers keep crashing.

    Runs the cloaking workload through a 2-shard process pool twice —
    clean, then under a deterministic fault plan that kills worker 0 once
    per :data:`FAULT_CRASH_EVERY` batches (every incarnation re-arms, so
    the crashes repeat for the whole run) — and asserts that supervised
    recovery keeps faulted throughput at or above
    :data:`FAULTED_MIN_RATIO` of clean. Each recorded number is the best
    of :data:`FAULT_REPEATS` timed passes of one crash interval each, so
    every faulted pass pays exactly one crash-and-recover. Every outcome
    of every faulted batch must still succeed: recovery, not degradation,
    is what is being priced here.
    """
    side = QUICK_MAP_SIDE if quick else FULL_MAP_SIDE
    segments = QUICK_MAP_SEGMENTS if quick else FULL_MAP_SEGMENTS
    batch_size = QUICK_BATCH if quick else FULL_BATCH
    batches = FAULT_CRASH_EVERY
    network = grid_network(side, side)
    snapshot = PopulationSnapshot.from_counts(
        {segment_id: 2 for segment_id in network.segment_ids()}
    )
    profile = PrivacyProfile.uniform(
        levels=2, base_k=20, k_step=20, base_l=3, l_step=1, max_segments=80
    )
    requests = [
        CloakRequest(
            user_id=user_id,
            profile=profile,
            chain=KeyChain.from_passphrases([f"f{user_id}-1", f"f{user_id}-2"]),
        )
        for user_id in snapshot.users()[:batch_size]
    ]
    plan = FaultPlan(
        actions=(
            FaultAction(
                kind="kill_worker",
                worker=0,
                chunk=FAULT_CRASH_EVERY - 1,
                op="cloak",
                incarnation=None,
            ),
        )
    )

    def run_throughput(fault_plan):
        with ProcessPoolBackend(
            2,
            start_method="fork",
            fault_plan=fault_plan,
            retry_backoff_s=0.01,
        ) as backend:
            service = AnonymizerService(network, backend=backend)
            service.update_snapshot(snapshot)
            # Pool spawn and the one-time snapshot ship are start-up costs.
            assert all(o.ok for o in service.cloak_batch(requests))
            best_rps = 0.0
            for _ in range(FAULT_REPEATS):
                start = time.perf_counter()
                for _ in range(batches):
                    outcomes = service.cloak_batch(requests)
                    assert all(o.ok for o in outcomes), (
                        "faulted serving must recover, not fail outcomes"
                    )
                elapsed = time.perf_counter() - start
                best_rps = max(best_rps, batches * batch_size / elapsed)
            restarts = backend.worker_restarts
            fallbacks = backend.inline_fallbacks
        return best_rps, restarts, fallbacks

    clean_rps, _, _ = run_throughput(None)
    faulted_rps, restarts, fallbacks = run_throughput(plan)
    assert restarts >= FAULT_REPEATS, "the fault plan must fire every pass"
    assert fallbacks == 0, "crash-per-100-batches must recover, not degrade"
    ratio = faulted_rps / clean_rps
    print(
        f"faulted serving: clean {clean_rps:.0f} req/s, "
        f"faulted {faulted_rps:.0f} req/s "
        f"({ratio:.2f}x, {restarts} supervised restarts)"
    )
    assert ratio >= FAULTED_MIN_RATIO, (
        f"faulted throughput {faulted_rps:.0f} req/s fell below "
        f"{FAULTED_MIN_RATIO:.0%} of clean {clean_rps:.0f} req/s"
    )
    return {
        "map_segments": segments,
        "batch_size": batch_size,
        "batches_per_pass": batches,
        "repeats": FAULT_REPEATS,
        "crash_every_batches": FAULT_CRASH_EVERY,
        "clean_rps": round(clean_rps, 1),
        "faulted_rps": round(faulted_rps, 1),
        "faulted_vs_clean": round(ratio, 3),
        "worker_restarts": restarts,
        "min_ratio": FAULTED_MIN_RATIO,
    }


def run(quick: bool, repeats: int) -> dict:
    rows = bench_serving(quick, repeats)
    reversal_rows = bench_reversal_serving(quick, repeats)
    faulted = bench_faulted_serving(quick)

    table = ResultTable(
        "BENCH_SERVING",
        "cloak_batch throughput by execution backend (best-of-%d)" % repeats,
        [
            "map_segments",
            "batch_size",
            "backend",
            "workers",
            "batch_ms",
            "throughput_rps",
            "speedup_vs_sequential",
        ],
    )
    for row in rows:
        table.add_row(**row)
    table.print_and_save()

    reversal_table = ResultTable(
        "BENCH_SERVING_REVERSAL",
        "deanonymize_batch throughput by execution backend (best-of-%d)"
        % repeats,
        [
            "map_segments",
            "batch_size",
            "backend",
            "workers",
            "mode",
            "batch_ms",
            "throughput_rps",
        ],
    )
    for row in reversal_rows:
        reversal_table.add_row(**row)
    reversal_table.print_and_save()

    def best_for(backend: str, min_workers: int = 1) -> dict:
        candidates = [
            row
            for row in rows
            if row["backend"] == backend and row["workers"] >= min_workers
        ]
        return max(candidates, key=lambda row: row["throughput_rps"])

    def reversal_best(backend: str, mode: str, min_workers: int = 1) -> dict:
        candidates = [
            row
            for row in reversal_rows
            if row["backend"] == backend
            and row["mode"] == mode
            and row["workers"] >= min_workers
        ]
        return max(candidates, key=lambda row: row["throughput_rps"])

    inline = best_for("inline")
    thread = best_for("thread")
    process = best_for("process")
    scaled_width = 4 if not quick else 2
    process_scaled = best_for("process", min_workers=scaled_width)
    reversal_summary = {}
    for mode in ("hint", "search"):
        r_inline = reversal_best("inline", mode)
        r_process = reversal_best("process", mode, min_workers=scaled_width)
        reversal_summary[mode] = {
            "inline_rps": r_inline["throughput_rps"],
            "best_thread_rps": reversal_best("thread", mode)["throughput_rps"],
            "process_rps_at_scaled_width": r_process["throughput_rps"],
            "process_scaled_width": r_process["workers"],
            "process_vs_inline": round(
                r_process["throughput_rps"] / r_inline["throughput_rps"], 3
            ),
        }
    return {
        "benchmark": "bench_serving",
        "quick": quick,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "pr2_thread_ceiling_rps": PR2_THREAD_CEILING_RPS,
        "serving": rows,
        "reversal_serving": reversal_rows,
        "faulted_serving": faulted,
        "summary": {
            "inline_rps": inline["throughput_rps"],
            "best_thread_rps": thread["throughput_rps"],
            "best_thread_workers": thread["workers"],
            "best_process_rps": process["throughput_rps"],
            "best_process_workers": process["workers"],
            "process_rps_at_scaled_width": process_scaled["throughput_rps"],
            "process_scaled_width": process_scaled["workers"],
            "process_vs_pr2_thread_ceiling": round(
                process_scaled["throughput_rps"] / PR2_THREAD_CEILING_RPS, 3
            ),
            "reversal": reversal_summary,
            "faulted_vs_clean": faulted["faulted_vs_clean"],
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small map / small batch CI smoke"
    )
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args()
    document = run(quick=args.quick, repeats=args.repeats)
    name = "BENCH_serving.quick.json" if args.quick else "BENCH_serving.json"
    out = REPO_ROOT / name
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
