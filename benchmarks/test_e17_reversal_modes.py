"""E17 (ablation) — what each piece of the reversal machinery buys.

DESIGN.md decision D13 equips envelopes with three keyed metadata items:
sealed bootstrap, sealed start anchor, per-step witness bytes. This
ablation compares reversal *work* (measured as backward-hypothesis
evaluations) and wall-clock across the modes:

* hint mode with witnesses (the default),
* search mode on the same hinted envelope (ignores the seals — the
  paper-faithful hypothesis search),
* hint mode with certification disabled (fastest, trades tamper evidence).
"""

import pytest

from repro import KeyChain, ReverseCloakEngine
from repro.bench import ResultTable, pick_user_segments, standard_network, standard_snapshot
from repro.errors import CollisionError
from repro.metrics import measure

from conftest import profile_for_k


K = 12
USERS = 6


def _hypothesis_counter(engine):
    """Wrap the algorithm's backward lookup with a call counter."""
    counters = {"calls": 0}
    original = engine.algorithm.backward_hypotheses

    def counting(*args, **kwargs):
        counters["calls"] += 1
        return original(*args, **kwargs)

    # Instrumentation monkeypatch on a single-process benchmark: the
    # patched engine never crosses a spawn boundary here.
    # reprolint: disable=spawn-safety
    engine.algorithm.backward_hypotheses = counting
    return counters, original


def test_e17_reversal_mode_ablation(benchmark):
    network = standard_network("grid", 16)
    snapshot = standard_snapshot("grid", 16, 1200)
    users = pick_user_segments(snapshot, USERS, seed=17)
    profile = profile_for_k(K)
    chain = KeyChain.from_passphrases(["e17-1", "e17-2", "e17-3"])

    engine = ReverseCloakEngine(network)
    fast_engine = ReverseCloakEngine(network, validate_reversals=False)
    envelopes = [
        engine.anonymize(user_segment, snapshot, profile, chain)
        for user_segment in users
    ]

    table = ResultTable(
        "E17",
        f"Reversal-mode ablation (RGE, k={K}, {USERS} envelopes): "
        "work and wall-clock per full peel",
        ["mode", "mean_ms", "backward_lookups", "exact", "collisions"],
    )

    def run_mode(label, run_engine, mode):
        counters, original = _hypothesis_counter(run_engine)
        exact = collisions = 0
        total_ms = 0.0

        def peel_all():
            nonlocal exact, collisions
            exact = collisions = 0
            for envelope, user_segment in zip(envelopes, users):
                try:
                    result = run_engine.deanonymize(
                        envelope, chain, target_level=0, mode=mode
                    )
                except CollisionError:
                    collisions += 1
                    continue
                if result.region_at(0) == (user_segment,):
                    exact += 1

        summary = measure(peel_all, repeats=3)
        run_engine.algorithm.backward_hypotheses = original
        table.add_row(
            mode=label,
            mean_ms=round(summary.mean_s * 1000.0 / len(envelopes), 3),
            backward_lookups=counters["calls"] // (3 * len(envelopes)),
            exact=exact,
            collisions=collisions,
        )
        return exact, collisions

    hint_exact, __ = run_mode("hint+witnesses", engine, "auto")
    run_mode("hint, no certification", fast_engine, "auto")
    search_exact, search_collisions = run_mode(
        "search (paper-faithful)", engine, "search"
    )
    table.print_and_save()

    benchmark(lambda: engine.deanonymize(envelopes[0], chain, target_level=0))

    # Shapes: hint mode is exact on every envelope; search mode never
    # returns a wrong region (exact + detected collisions cover all).
    assert hint_exact == len(envelopes)
    assert search_exact + search_collisions == len(envelopes)
    # Search does strictly more backward work than the hinted modes.
    lookups = {row["mode"]: row["backward_lookups"] for row in table.rows}
    assert lookups["search (paper-faithful)"] >= lookups["hint+witnesses"]
