"""E5 — Anonymization time vs k: RGE vs RPLE vs the one-way baseline.

The demo paper's stated trade-off (Section III): "RGE has larger
anonymization runtime to build collision-free links on the fly ... while
RPLE has smaller anonymization runtime". This sweep regenerates that series
— cloaking time as k grows — for both reversible algorithms and the
non-reversible random-expansion baseline (the price of reversibility).
"""

import pytest

from repro import (
    KeyChain,
    PopulationSnapshot,
    PrivacyProfile,
    ReverseCloakEngine,
    ReversiblePreassignmentExpansion,
    grid_network,
)
from repro.baselines import RandomExpansionCloaking
from repro.bench import ResultTable
from repro.metrics import measure

from conftest import profile_for_k


K_SWEEP = (5, 10, 20, 40)
REPEATS = 5


def _mean_cloak_ms(engine, snapshot, profile, chain, user_segments):
    def run_all():
        for user_segment in user_segments:
            engine.anonymize(user_segment, snapshot, profile, chain)

    summary = measure(run_all, repeats=REPEATS)
    return summary.mean_s * 1000.0 / len(user_segments)


def test_e5_anonymization_time_vs_k(
    network, snapshot, user_segments, rge_engine, rple_engine, chain3, benchmark
):
    table = ResultTable(
        "E5",
        f"Anonymization time vs k ({network.name}, "
        f"{snapshot.user_count} cars, mean ms per request)",
        ["k", "rge_ms", "rple_ms", "baseline_ms", "rge_over_rple"],
    )
    rge_series, rple_series = [], []
    for k in K_SWEEP:
        profile = profile_for_k(k)
        rge_ms = _mean_cloak_ms(
            rge_engine, snapshot, profile, chain3, user_segments
        )
        rple_ms = _mean_cloak_ms(
            rple_engine, snapshot, profile, chain3, user_segments
        )
        baseline = RandomExpansionCloaking(network, seed=3)
        baseline_summary = measure(
            lambda: [
                baseline.anonymize(user_segment, snapshot, profile)
                for user_segment in user_segments
            ],
            repeats=REPEATS,
        )
        baseline_ms = baseline_summary.mean_s * 1000.0 / len(user_segments)
        rge_series.append(rge_ms)
        rple_series.append(rple_ms)
        table.add_row(
            k=k,
            rge_ms=round(rge_ms, 3),
            rple_ms=round(rple_ms, 3),
            baseline_ms=round(baseline_ms, 3),
            rge_over_rple=round(rge_ms / rple_ms, 2),
        )
    table.print_and_save()

    # pytest-benchmark series for the representative middle of the sweep
    profile = profile_for_k(20)
    benchmark(
        lambda: rge_engine.anonymize(user_segments[0], snapshot, profile, chain3)
    )

    # Paper shape: RPLE anonymizes faster than RGE, increasingly so as
    # regions grow (bigger regions -> bigger per-step tables for RGE).
    # On the small 16x16 sweep map the two are within noise of each other
    # since the serving-path optimisations (candidate-filter hoisting,
    # precomputed sort keys) compressed the per-step constants, so the
    # claim is asserted where the asymptotics separate: a 32x32 map with
    # ~200-segment regions, where RGE's per-step frontier sorting dominates
    # and RPLE's O(T) slot probing does not.
    scale_network = grid_network(32, 32)
    scale_snapshot = PopulationSnapshot.from_counts(
        {segment_id: 1 for segment_id in scale_network.segment_ids()}
    )
    scale_user = scale_network.segment_ids()[scale_network.segment_count // 2]
    scale_profile = PrivacyProfile.uniform(
        levels=2, base_k=100, k_step=100, base_l=3, l_step=1, max_segments=400
    )
    scale_chain = KeyChain.from_passphrases(["e5-scale-1", "e5-scale-2"])
    scale_rge = ReverseCloakEngine(scale_network)
    scale_rple = ReverseCloakEngine(
        scale_network,
        ReversiblePreassignmentExpansion.for_network(scale_network),
    )
    rge_scale = measure(
        lambda: scale_rge.anonymize(
            scale_user, scale_snapshot, scale_profile, scale_chain
        ),
        repeats=3,
    ).mean_s
    rple_scale = measure(
        lambda: scale_rple.anonymize(
            scale_user, scale_snapshot, scale_profile, scale_chain
        ),
        repeats=3,
    ).mean_s
    assert rple_scale < rge_scale
    # Time grows with k for both algorithms.
    assert rge_series[-1] > rge_series[0]
    assert rple_series[-1] > rple_series[0]
