"""E6 — De-anonymization time vs k and per peeled level.

The requester-side cost: peeling a hinted envelope down to L0 as k grows,
for both algorithms, plus the per-level breakdown (outer levels remove more
segments, so peeling them dominates).
"""

import pytest

from repro.bench import ResultTable
from repro.metrics import measure

from conftest import profile_for_k


K_SWEEP = (5, 10, 20, 40)
REPEATS = 5


def test_e6_deanonymization_time_vs_k(
    network, snapshot, user_segments, rge_engine, rple_engine, chain3, benchmark
):
    table = ResultTable(
        "E6",
        f"De-anonymization time vs k ({network.name}, hint mode, "
        "mean ms per full peel to L0)",
        ["k", "rge_ms", "rple_ms", "region_segments"],
    )
    rge_series = []
    for k in K_SWEEP:
        profile = profile_for_k(k)
        user_segment = user_segments[0]
        row = {"k": k}
        for label, engine in (("rge", rge_engine), ("rple", rple_engine)):
            envelope = engine.anonymize(user_segment, snapshot, profile, chain3)
            summary = measure(
                lambda: engine.deanonymize(envelope, chain3, target_level=0),
                repeats=REPEATS,
            )
            row[f"{label}_ms"] = round(summary.mean_s * 1000.0, 3)
            if label == "rge":
                row["region_segments"] = len(envelope.region)
                rge_series.append(summary.mean_s)
        table.add_row(**row)
    table.print_and_save()

    # Per-level breakdown at k=20 (RGE).
    profile = profile_for_k(20)
    envelope = rge_engine.anonymize(user_segments[0], snapshot, profile, chain3)
    breakdown = ResultTable(
        "E6b",
        "De-anonymization per-level breakdown (RGE, k=20): peeling to "
        "each target level",
        ["target_level", "mean_ms", "levels_peeled", "segments_removed"],
    )
    for target in (2, 1, 0):
        summary = measure(
            lambda: rge_engine.deanonymize(envelope, chain3, target_level=target),
            repeats=REPEATS,
        )
        removed = sum(
            envelope.level_record(level).steps
            for level in range(target + 1, envelope.top_level + 1)
        )
        breakdown.add_row(
            target_level=target,
            mean_ms=round(summary.mean_s * 1000.0, 3),
            levels_peeled=envelope.top_level - target,
            segments_removed=removed,
        )
    breakdown.print_and_save()

    benchmark(lambda: rge_engine.deanonymize(envelope, chain3, target_level=0))

    # Shape: more keys peeled -> more work; larger k -> more work.
    assert breakdown.column("mean_ms")[-1] >= breakdown.column("mean_ms")[0]
    assert rge_series[-1] > rge_series[0]
