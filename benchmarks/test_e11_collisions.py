"""E11 — Reversal collisions: how often does search-mode reversal stay
unambiguous?

The paper's Section III is explicit that collisions are *the* key challenge
of reversal and that RGE/RPLE are designed to avoid them. Hint-mode
envelopes are collision-free by construction (sealed bootstrap + sealed
start anchor); this experiment measures the residual ambiguity of pure
search-mode reversal (no hints, bootstrap enumeration) — and verifies the
crucial safety property: ambiguity is always *detected*, never silently
resolved to a wrong region.
"""

import pytest

from repro import KeyChain
from repro.bench import ResultTable, pick_user_segments
from repro.errors import CollisionError

from conftest import profile_for_k


TRIALS = 12


def _collision_stats(engine, snapshot, users, chain):
    outcomes = {"exact": 0, "collision": 0, "wrong": 0}
    profile = profile_for_k(6, levels=2)
    for index, user_segment in enumerate(users):
        trial_chain = KeyChain.from_passphrases(
            [f"e11-{index}-1", f"e11-{index}-2"]
        )
        envelope = engine.anonymize(
            user_segment, snapshot, profile, trial_chain, include_hints=False
        )
        try:
            result = engine.deanonymize(
                envelope, trial_chain, target_level=0, mode="search"
            )
        except CollisionError:
            outcomes["collision"] += 1
            continue
        if result.region_at(0) == (user_segment,):
            outcomes["exact"] += 1
        else:
            outcomes["wrong"] += 1
    return outcomes


def test_e11_search_mode_collision_rate(
    network, snapshot, rge_engine, rple_engine, chain3, benchmark
):
    users = pick_user_segments(snapshot, TRIALS, seed=11)
    table = ResultTable(
        "E11",
        f"Search-mode reversal outcomes over {TRIALS} users "
        "(no hints, bootstrap enumeration; hint mode is always exact)",
        ["algorithm", "exact", "detected_collisions", "wrong_region"],
    )
    stats = {}
    for label, engine in (("rge", rge_engine), ("rple", rple_engine)):
        outcome = _collision_stats(engine, snapshot, users, chain3)
        stats[label] = outcome
        table.add_row(
            algorithm=label,
            exact=outcome["exact"],
            detected_collisions=outcome["collision"],
            wrong_region=outcome["wrong"],
        )

    # Hint-mode reference row: always exact.
    profile = profile_for_k(6, levels=2)
    chain = KeyChain.from_passphrases(["e11-h1", "e11-h2"])
    hint_exact = 0
    for user_segment in users:
        envelope = rge_engine.anonymize(user_segment, snapshot, profile, chain)
        result = rge_engine.deanonymize(envelope, chain, target_level=0)
        if result.region_at(0) == (user_segment,):
            hint_exact += 1
    table.add_row(
        algorithm="rge (hint mode)",
        exact=hint_exact,
        detected_collisions=0,
        wrong_region=0,
    )
    table.print_and_save()

    envelope = rge_engine.anonymize(
        users[0], snapshot, profile, chain, include_hints=False
    )
    benchmark(
        lambda: rge_engine.deanonymize(
            envelope, chain, target_level=0, mode="search"
        )
    )

    # The safety claim: never a silently wrong region, in any mode.
    assert stats["rge"]["wrong"] == 0
    assert stats["rple"]["wrong"] == 0
    assert hint_exact == TRIALS
    # Search mode succeeds for the majority of requests even without hints.
    assert stats["rge"]["exact"] >= TRIALS // 2
