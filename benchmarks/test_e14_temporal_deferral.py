"""E14 — Temporal deferral: trading waiting time for spatial tightness.

The paper's Algorithm 1 signature carries a temporal key ``Kt`` and a
temporal tolerance ``sigma_t`` (unused in the demo text) — the classical
spatio-temporal knob: requests that cannot reach ``delta_k`` within a tight
spatial tolerance may *wait* for traffic instead of failing. This
experiment sweeps the temporal budget and measures how much success rate it
buys back, and at what waiting cost.
"""

import statistics

import pytest

from repro import (
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.bench import ResultTable
from repro.errors import CloakingError
from repro.lbs import DeferredCloaking, TemporalTolerance


BUDGETS = (0.0, 10.0, 30.0, 60.0)
USERS = 25
TIGHT = dict(levels=1, base_k=8, k_step=0, base_l=2, l_step=0, max_segments=5)


def _run_budget(budget):
    """Fresh simulation per budget so deferrals do not bleed across runs."""
    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=450, seed=14)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    deferred = DeferredCloaking(engine, simulator)
    profile = PrivacyProfile.uniform(**TIGHT)
    chain = KeyChain.from_passphrases(["e14"])
    users = simulator.snapshot().users()[:USERS]
    successes, waits = 0, []
    for user_id in users:
        try:
            result = deferred.cloak_user(
                user_id, profile, chain,
                TemporalTolerance(budget, retry_interval_seconds=2.0),
            )
        except CloakingError:
            continue
        successes += 1
        waits.append(result.deferred_seconds)
    return successes / len(users), (statistics.mean(waits) if waits else 0.0)


def test_e14_temporal_deferral(benchmark):
    table = ResultTable(
        "E14",
        f"Success rate vs temporal budget sigma_t (tight sigma_s = "
        f"{TIGHT['max_segments']} segments, k={TIGHT['base_k']}, "
        f"{USERS} users)",
        ["sigma_t_seconds", "success_rate", "mean_wait_seconds"],
    )
    rates = []
    for budget in BUDGETS:
        rate, mean_wait = _run_budget(budget)
        rates.append(rate)
        table.add_row(
            sigma_t_seconds=budget,
            success_rate=round(rate, 2),
            mean_wait_seconds=round(mean_wait, 1),
        )
    table.print_and_save()

    benchmark(lambda: _run_budget(10.0))

    # Shape: waiting buys success; a generous budget dominates no budget.
    assert rates[-1] > rates[0]
    assert rates == sorted(rates) or rates[-1] >= max(rates[:-1]) - 0.04
