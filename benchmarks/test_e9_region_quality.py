"""E9 — Region quality vs k and l: size, population, spatial exposure.

How much space and population a cloak exposes as the privacy knobs grow —
the quality series of the full paper's evaluation, here for RGE, RPLE and
the one-way baseline (all three must satisfy the same (k, l), so the
series' shapes should coincide; the reversible algorithms pay no systematic
region-size premium).
"""

import statistics

import pytest

from repro import PrivacyProfile
from repro.baselines import RandomExpansionCloaking
from repro.bench import ResultTable
from repro.metrics import region_quality

from conftest import profile_for_k


K_SWEEP = (5, 10, 20, 40)
L_SWEEP = (2, 4, 8, 16)


def test_e9_region_quality_vs_k(
    network, snapshot, user_segments, rge_engine, rple_engine, chain3, benchmark
):
    table = ResultTable(
        "E9",
        f"Region quality vs k ({network.name}; mean over "
        f"{len(user_segments)} users)",
        ["k", "algorithm", "segments", "users", "road_m", "diagonal_m"],
    )
    mean_segments_by_k = []
    for k in K_SWEEP:
        profile = profile_for_k(k)
        requirement = profile.requirement(profile.level_count)
        for label, engine in (("rge", rge_engine), ("rple", rple_engine)):
            qualities = [
                region_quality(
                    network,
                    set(
                        engine.anonymize(
                            user_segment, snapshot, profile, chain3
                        ).region
                    ),
                    snapshot,
                    requirement,
                )
                for user_segment in user_segments
            ]
            table.add_row(
                k=k,
                algorithm=label,
                segments=round(statistics.mean(q.segments for q in qualities), 1),
                users=round(statistics.mean(q.users for q in qualities), 1),
                road_m=round(
                    statistics.mean(q.total_length for q in qualities), 0
                ),
                diagonal_m=round(
                    statistics.mean(q.diagonal for q in qualities), 0
                ),
            )
            if label == "rge":
                mean_segments_by_k.append(
                    statistics.mean(q.segments for q in qualities)
                )
        baseline = RandomExpansionCloaking(network, seed=9)
        baseline_qualities = [
            region_quality(
                network,
                set(
                    baseline.anonymize(user_segment, snapshot, profile).region_at(
                        profile.level_count
                    )
                ),
                snapshot,
                requirement,
            )
            for user_segment in user_segments
        ]
        table.add_row(
            k=k,
            algorithm="baseline",
            segments=round(
                statistics.mean(q.segments for q in baseline_qualities), 1
            ),
            users=round(statistics.mean(q.users for q in baseline_qualities), 1),
            road_m=round(
                statistics.mean(q.total_length for q in baseline_qualities), 0
            ),
            diagonal_m=round(
                statistics.mean(q.diagonal for q in baseline_qualities), 0
            ),
        )
    table.print_and_save()

    # l sweep at fixed k: segment l-diversity forces the region floor.
    l_table = ResultTable(
        "E9b",
        "Region size vs l (k=5 fixed, RGE): segment l-diversity floor",
        ["l", "segments", "users"],
    )
    l_sizes = []
    for l in L_SWEEP:
        profile = PrivacyProfile.uniform(
            levels=1, base_k=5, k_step=0, base_l=l, l_step=0, max_segments=240
        )
        chain1 = __import__("repro").KeyChain.from_passphrases(["e9b"])
        sizes = [
            len(rge_engine.anonymize(user_segment, snapshot, profile, chain1).region)
            for user_segment in user_segments
        ]
        l_sizes.append(statistics.mean(sizes))
        l_table.add_row(
            l=l,
            segments=round(statistics.mean(sizes), 1),
            users=round(
                statistics.mean(
                    snapshot.count_in_region(
                        set(
                            rge_engine.anonymize(
                                user_segment, snapshot, profile, chain1
                            ).region
                        )
                    )
                    for user_segment in user_segments
                ),
                1,
            ),
        )
    l_table.print_and_save()

    profile = profile_for_k(20)
    benchmark(
        lambda: region_quality(
            network,
            set(
                rge_engine.anonymize(
                    user_segments[0], snapshot, profile, chain3
                ).region
            ),
            snapshot,
        )
    )

    # Shapes: region size grows with k and with l; every region meets l >= l.
    assert mean_segments_by_k == sorted(mean_segments_by_k)
    assert l_sizes == sorted(l_sizes)
    assert l_sizes[-1] >= L_SWEEP[-1]
