"""E2 — Figure 2: the RGE transition table worked example.

Reproduces the paper's exact numbers: CloakA = {s8, s9, s11} (rows, sorted
by length), CanA = {s6, s10, s14} (columns), transition values
((i-1)+(j-1)) mod 3, and for R_i = 5 the pick value 2 selecting cell (2,2):
forward s8 -> s14, backward s14 -> s8.
"""

import pytest

from repro import TransitionTable, fig2_network
from repro.bench import ResultTable


@pytest.fixture(scope="module")
def fig2():
    return fig2_network()


def test_fig2_worked_example(fig2, benchmark):
    cloak = {8, 9, 11}
    candidates = set(fig2.frontier(cloak))
    assert candidates == {6, 10, 14}

    def build_and_lookup():
        table = TransitionTable(fig2, cloak, candidates)
        return table, table.forward(8, 5), table.backward(14, 5)

    table, forward, backward = benchmark(build_and_lookup)

    result = ResultTable(
        "E2",
        "Figure 2 RGE transition table (rows/cols sorted by segment "
        "length; value = ((i-1)+(j-1)) mod |CanA|)",
        ["row_segment", "s6", "s14", "s10"],
    )
    for row_index, row_segment in enumerate(table.rows):
        values = [table.value(row_index, col) for col in range(3)]
        result.add_row(
            row_segment=f"s{row_segment}",
            s6=values[0],
            s14=values[1],
            s10=values[2],
        )
    result.print_and_save()

    # The paper's exact claims:
    assert table.rows == (9, 8, 11)  # s8 in row 2
    assert table.columns == (6, 14, 10)  # s14 in column 2
    assert table.pick_value(5) == 2  # "if Ri is 5, pi will be 2"
    assert table.value(1, 1) == 2  # cell (2,2) holds value 2
    assert forward == 14  # forward transition s8 -> s14
    assert backward == (8,)  # backward transition s14 -> s8
    # no repeated value in any row or column (collision-freedom)
    grid = table.grid()
    assert all(len(set(row)) == 3 for row in grid)
    assert all(len({row[c] for row in grid}) == 3 for c in range(3))
