"""The compiled road-network plane: dense, flat, shareable hot-path tables.

:class:`~repro.roadnet.graph.RoadNetwork` keeps the map as id-keyed dicts —
the right shape for construction, validation and serialization, but the
wrong one for the cloaking/reversal hot loops, which ask the same few
questions millions of times per request: *who are the neighbours? how long
is this segment? where does it rank in the global length order? does this
removal disconnect the region?* :class:`CompiledNetwork` answers them from
structures compiled exactly once per map:

* **dense reindex** — segment ids mapped to ``0..n-1`` in ascending id
  order (``segment_list`` / ``index_of``), so graph sweeps can use flat
  arrays instead of hash tables;
* **CSR adjacency** — the segment-adjacency graph as two ``array('l')``
  buffers (``offsets`` / ``csr_neighbors``, dense indices), consumed by the
  articulation/connectivity sweeps with epoch-stamped scratch arrays (no
  per-call dict or set churn);
* **flat per-segment tables** — lengths (``array('d')``), bbox extremes
  (four ``array('d')`` planes), and the global ``(length, id)`` rank
  (``array('l')``), plus the id-keyed views (``rank_of`` / ``rank_to_id``
  / ``length_of`` / ``bounds_of`` / ``neighbor_map``) that the
  interpreter-bound loops index directly.

The plane is immutable and safe to share: one compiled instance serves
every engine, :class:`~repro.core.region_state.RegionState` and peel
search that works on an equal map. Sharing is keyed by the *geometry
digest* — topology, lengths **and junction coordinates** (the envelope's
wire ``network_digest`` deliberately omits coordinates, but the compiled
bbox/rank tables depend on them, so the compiled cache must not collide
two maps that differ only in geometry).

The Tarjan scratch buffers are per-thread (:class:`threading.local`);
everything else is read-only after construction.
"""

from __future__ import annotations

import hashlib
import threading
from array import array
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import RoadNetwork

__all__ = ["CompiledNetwork", "compiled_network", "geometry_digest"]


def geometry_digest(network: "RoadNetwork") -> str:
    """A stable digest of the full map *including junction coordinates*.

    The envelope-level ``network_digest`` hashes topology and lengths only
    (coordinates never cross the wire); compiled tables additionally bake
    in bbox extremes and proximity geometry, so their sharing key must
    separate maps that agree on topology but not on coordinates.
    """
    hasher = hashlib.sha256()
    for junction_id in network.junction_ids():
        location = network.junction(junction_id).location
        hasher.update(f"{junction_id}:{location.x!r}:{location.y!r};".encode())
    hasher.update(b"|")
    for segment_id in network.segment_ids():
        segment = network.segment(segment_id)
        hasher.update(
            f"{segment_id}:{segment.junction_a}:{segment.junction_b}:"
            f"{segment.length!r};".encode()
        )
    return hasher.hexdigest()[:24]


class _TarjanScratch:
    """Per-thread reusable sweep buffers (epoch-stamped, never cleared)."""

    __slots__ = ("mark", "disc_epoch", "disc", "low", "epoch")

    def __init__(self, size: int) -> None:
        self.mark = array("q", bytes(8 * size))
        self.disc_epoch = array("q", bytes(8 * size))
        self.disc = array("q", bytes(8 * size))
        self.low = array("q", bytes(8 * size))
        self.epoch = 0


class CompiledNetwork:
    """Immutable compiled tables of one road network (see module docstring).

    Build through :func:`compiled_network` (or
    :meth:`RoadNetwork.compiled`), never directly — construction is O(E log
    E) and the instances are meant to be shared per geometry digest.
    """

    __slots__ = (
        "segment_list",
        "index_of",
        "offsets",
        "csr_neighbors",
        "neighbor_map",
        "side_neighbors",
        "lengths",
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "bounds_of",
        "length_rank",
        "rank_of",
        "rank_to_id",
        "length_of",
        "segment_count",
        "avg_degree",
        "_local",
    )

    def __init__(self, network: "RoadNetwork") -> None:
        segment_list: Tuple[int, ...] = network.segment_ids()
        index_of: Dict[int, int] = {
            segment_id: dense for dense, segment_id in enumerate(segment_list)
        }
        self.segment_list = segment_list
        self.index_of = index_of
        self.segment_count = len(segment_list)

        # CSR adjacency over dense indices. Neighbour tuples are already
        # ascending by id, and the dense reindex is id-ordered, so the CSR
        # rows come out sorted too.
        neighbor_map: Dict[int, Tuple[int, ...]] = {
            segment_id: network.neighbors(segment_id)
            for segment_id in segment_list
        }
        self.neighbor_map = neighbor_map
        csr = array("l")
        total = 0
        offsets = array("l", [0] * (self.segment_count + 1))
        for dense, segment_id in enumerate(segment_list):
            linked = neighbor_map[segment_id]
            total += len(linked)
            offsets[dense + 1] = total
            csr.extend(index_of[neighbor] for neighbor in linked)
        self.offsets = offsets
        self.csr_neighbors = csr
        self.avg_degree = (total / self.segment_count) if self.segment_count else 0.0

        # Neighbours split by shared endpoint junction. Segments incident
        # to one junction are pairwise adjacent (a clique), which gives
        # the reversal search an O(deg) sufficient removability test: a
        # member whose in-region neighbours all sit on one endpoint can
        # never disconnect a connected region — any path through it
        # reroutes inside the clique (see ``peel_level``). Each neighbour
        # shares exactly one junction (duplicate pairs are rejected at
        # build time), so the two sets partition the neighbour list.
        side_neighbors: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {}
        for segment_id in segment_list:
            segment = network.segment(segment_id)
            at_a = frozenset(
                network.segments_at_junction(segment.junction_a)
            ) - {segment_id}
            at_b = frozenset(
                network.segments_at_junction(segment.junction_b)
            ) - {segment_id}
            side_neighbors[segment_id] = (at_a, at_b)
        self.side_neighbors = side_neighbors

        # Flat per-segment tables + the id-keyed views hot Python loops use.
        length_of: Dict[int, float] = {
            segment_id: network.segment_length(segment_id)
            for segment_id in segment_list
        }
        self.length_of = length_of
        self.lengths = array("d", (length_of[s] for s in segment_list))
        bounds_of = network.segment_bounds()
        self.bounds_of = bounds_of
        self.min_x = array("d", (bounds_of[s][0] for s in segment_list))
        self.min_y = array("d", (bounds_of[s][1] for s in segment_list))
        self.max_x = array("d", (bounds_of[s][2] for s in segment_list))
        self.max_y = array("d", (bounds_of[s][3] for s in segment_list))

        # Global (length, id) rank — the protocol's canonical ordering.
        # Comparing two members by rank is one int comparison instead of a
        # (float, int) tuple compare, which is what makes the maintained
        # length ordering and the per-step candidate sorts cheap.
        by_length = sorted(segment_list, key=lambda s: (length_of[s], s))
        self.rank_to_id = tuple(by_length)
        rank_of: Dict[int, int] = {
            segment_id: rank for rank, segment_id in enumerate(by_length)
        }
        self.rank_of = rank_of
        self.length_rank = array("l", (rank_of[s] for s in segment_list))

        self._local = threading.local()

    # ------------------------------------------------------------------
    # graph sweeps
    # ------------------------------------------------------------------
    def _scratch(self) -> _TarjanScratch:
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = _TarjanScratch(self.segment_count)
            self._local.scratch = scratch
        return scratch

    def removable_members(self, region: Iterable[int]) -> Tuple[int, ...]:
        """Region members whose removal keeps the rest connected, ascending.

        Byte-identical to :func:`repro.roadnet.graph.removable_segments`
        over the same region — one component sweep plus one iterative
        Tarjan articulation pass, both running on the CSR buffers with
        epoch-stamped scratch arrays (no per-call allocations beyond the
        DFS stack). Raises ``KeyError`` on a segment id not in the map.
        """
        index_of = self.index_of
        members = [index_of[segment_id] for segment_id in region]
        if not members:
            return ()
        segment_list = self.segment_list
        if len(members) == 1:
            return (segment_list[members[0]],)
        scratch = self._scratch()
        member = scratch.epoch + 1
        scratch.epoch += 1
        mark = scratch.mark
        for dense in members:
            mark[dense] = member
        offsets = self.offsets
        csr = self.csr_neighbors
        # Articulation pass first, assuming one component (the common case
        # by far — callers probe connected regions). The DFS doubles as
        # the reachability sweep: an undercount falls through to the
        # multi-component rules below.
        disc_epoch = scratch.disc_epoch
        disc = scratch.disc
        low = scratch.low
        epoch = member  # discovery stamps piggyback on the member epoch
        root = members[0]
        disc_epoch[root] = epoch
        disc[root] = 0
        low[root] = 0
        counter = 1
        root_children = 0
        articulation: set = set()
        frames: list = [[root, -1, offsets[root]]]
        while frames:
            frame = frames[-1]
            node, parent, position = frame
            end = offsets[node + 1]
            descended = False
            while position < end:
                neighbor = csr[position]
                position += 1
                if mark[neighbor] != member or neighbor == parent:
                    continue
                if disc_epoch[neighbor] == epoch:
                    if disc[neighbor] < low[node]:
                        low[node] = disc[neighbor]
                else:
                    disc_epoch[neighbor] = epoch
                    disc[neighbor] = counter
                    low[neighbor] = counter
                    counter += 1
                    frame[2] = position
                    frames.append([neighbor, node, offsets[neighbor]])
                    descended = True
                    break
            if not descended:
                frames.pop()
                if frames:
                    above = frames[-1][0]
                    if low[node] < low[above]:
                        low[above] = low[node]
                    if above == root:
                        root_children += 1
                    elif low[node] >= disc[above]:
                        articulation.add(above)
        if counter == len(members):
            if root_children >= 2:
                articulation.add(root)
            return tuple(
                sorted(
                    segment_list[dense]
                    for dense in members
                    if dense not in articulation
                )
            )
        # Disconnected: >2 components can never be reconnected by one
        # removal; exactly 2 allow only a singleton component to go.
        components = [(root, counter)]  # (representative, size)
        stack: list = []
        for dense in members:
            if disc_epoch[dense] == epoch:
                continue
            if len(components) == 2:
                return ()
            disc_epoch[dense] = epoch
            size = 1
            stack.append(dense)
            while stack:
                current = stack.pop()
                for position in range(offsets[current], offsets[current + 1]):
                    neighbor = csr[position]
                    if mark[neighbor] == member and disc_epoch[neighbor] != epoch:
                        disc_epoch[neighbor] = epoch
                        size += 1
                        stack.append(neighbor)
            components.append((dense, size))
        return tuple(
            sorted(
                segment_list[start]
                for start, size in components
                if size == 1
            )
        )

    def is_connected(self, region: Iterable[int]) -> bool:
        """Whether ``region`` induces a connected subgraph (CSR sweep).

        Empty regions count as connected, matching
        :meth:`RoadNetwork.is_connected_region`; unknown ids raise
        ``KeyError``.
        """
        index_of = self.index_of
        members = [index_of[segment_id] for segment_id in region]
        if not members:
            return True
        scratch = self._scratch()
        member = scratch.epoch + 1
        seen = scratch.epoch + 2
        scratch.epoch += 2
        mark = scratch.mark
        for dense in members:
            mark[dense] = member
        offsets = self.offsets
        csr = self.csr_neighbors
        start = members[0]
        mark[start] = seen
        reached = 1
        stack = [start]
        while stack:
            current = stack.pop()
            for position in range(offsets[current], offsets[current + 1]):
                neighbor = csr[position]
                if mark[neighbor] == member:
                    mark[neighbor] = seen
                    reached += 1
                    stack.append(neighbor)
        return reached == len(members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledNetwork(segments={self.segment_count}, "
            f"avg_degree={self.avg_degree:.2f})"
        )


#: Compiled planes shared per geometry digest. Small LRU: every entry pins
#: O(E) arrays plus the id-keyed views; equal maps built independently
#: (tests, per-request reconstructions, process workers re-deserializing
#: the same wire document) converge on one plane instead of recompiling.
_COMPILED_CACHE: "OrderedDict[str, CompiledNetwork]" = OrderedDict()
_COMPILED_CACHE_SIZE = 8
_COMPILED_CACHE_LOCK = threading.Lock()


def compiled_network(network: "RoadNetwork") -> CompiledNetwork:
    """The shared :class:`CompiledNetwork` of ``network``.

    Compiled once per geometry digest and memoized (bounded LRU); prefer
    :meth:`RoadNetwork.compiled`, which additionally caches the resolved
    plane on the network instance so repeat lookups skip the digest.
    """
    digest = geometry_digest(network)
    with _COMPILED_CACHE_LOCK:
        plane = _COMPILED_CACHE.get(digest)
        if plane is not None:
            _COMPILED_CACHE.move_to_end(digest)
            return plane
    # Compile outside the lock (O(E log E) on large maps); a concurrent
    # duplicate build is wasted work, never wrong — the tables are a pure
    # function of the digest.
    plane = CompiledNetwork(network)
    with _COMPILED_CACHE_LOCK:
        existing = _COMPILED_CACHE.get(digest)
        if existing is not None:
            _COMPILED_CACHE.move_to_end(digest)
            return existing
        _COMPILED_CACHE[digest] = plane
        while len(_COMPILED_CACHE) > _COMPILED_CACHE_SIZE:
            _COMPILED_CACHE.popitem(last=False)
    return plane
