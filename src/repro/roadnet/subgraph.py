"""Sub-network extraction (clipping).

Cloaking regions occupy a tiny neighbourhood of a city-scale map; analyses
and visualisations often want just that neighbourhood. :func:`clip_network`
cuts a road network to a bounding box while *preserving ids*, so segment
sets (regions, envelopes' id lists) remain valid against the clipped map —
the toolkit uses this for zoomed-in renderings of a cloak.

Note: a clipped map is a *different* network (different digest); envelopes
must always be reversed against the full map they were produced on.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from ..errors import RoadNetworkError
from .geometry import BoundingBox
from .graph import RoadNetwork, RoadNetworkBuilder

__all__ = ["clip_network", "neighborhood_of"]


def clip_network(
    network: RoadNetwork, box: BoundingBox, name: Optional[str] = None
) -> RoadNetwork:
    """The sub-network of segments with at least one endpoint inside ``box``.

    Junction and segment ids are preserved. Raises when nothing intersects
    the box.
    """
    builder = RoadNetworkBuilder(name=name or f"{network.name}-clip")
    kept_junctions = set()
    kept_segments = []
    for segment_id in network.segment_ids():
        a, b = network.segment_endpoints(segment_id)
        if box.contains(a) or box.contains(b):
            segment = network.segment(segment_id)
            kept_segments.append(segment)
            kept_junctions.update(segment.endpoints())
    if not kept_segments:
        raise RoadNetworkError("nothing to clip: box misses the network")
    for junction_id in sorted(kept_junctions):
        location = network.junction(junction_id).location
        builder.add_junction(junction_id, location.x, location.y)
    for segment in kept_segments:
        builder.add_segment(
            segment.segment_id,
            segment.junction_a,
            segment.junction_b,
            segment.length,
        )
    return builder.build()


def neighborhood_of(
    network: RoadNetwork,
    region: AbstractSet[int],
    margin: float = 200.0,
    name: Optional[str] = None,
) -> RoadNetwork:
    """The sub-network around ``region``, grown by ``margin`` metres.

    Convenience for zoomed cloak renderings:
    ``SvgMapRenderer(neighborhood_of(map, envelope.region))``.
    """
    if not region:
        raise RoadNetworkError("cannot take the neighbourhood of an empty region")
    if margin < 0:
        raise RoadNetworkError(f"margin must be >= 0, got {margin}")
    box = network.bounding_box(region).expanded(margin)
    return clip_network(network, box, name=name or f"{network.name}-zoom")
