"""Synthetic road-network generators.

The paper's demonstration runs on a USGS map of northwest Atlanta (6,979
junctions, 9,187 segments) loaded through GTMobiSim. That map is not
redistributable, so this module provides deterministic synthetic substitutes
(decision D8 in DESIGN.md):

* :func:`grid_network` — Manhattan-style grids; the workhorse for unit tests
  and controlled experiments.
* :func:`radial_network` — ring-and-spoke city topology.
* :func:`random_delaunay_network` — irregular planar networks built from a
  seeded random point set and its Delaunay triangulation, pruned to a target
  segment count while staying connected. Degree and length statistics are in
  the same regime as the USGS map.
* :func:`atlanta_like` — :func:`random_delaunay_network` invoked with the
  paper's published constants (6,979 junctions / 9,187 segments).
* :func:`fig1_network`, :func:`fig2_network`, :func:`fig3_network` — small
  fixtures mirroring the paper's Figures 1–3 for the figure-reproduction
  benchmarks (E1–E3).

All generators are pure functions of their arguments (including ``seed``), so
every experiment in ``benchmarks/`` is exactly reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np
from scipy.spatial import Delaunay

from ..errors import RoadNetworkError
from .graph import RoadNetwork, RoadNetworkBuilder

__all__ = [
    "grid_network",
    "path_network",
    "radial_network",
    "random_delaunay_network",
    "atlanta_like",
    "fig1_network",
    "fig2_network",
    "fig3_network",
    "ATLANTA_JUNCTIONS",
    "ATLANTA_SEGMENTS",
]

#: Junction / segment counts of the USGS northwest-Atlanta map used by the
#: paper's toolkit (Section IV).
ATLANTA_JUNCTIONS = 6979
ATLANTA_SEGMENTS = 9187


def grid_network(rows: int, cols: int, spacing: float = 100.0, name: str = "") -> RoadNetwork:
    """A ``rows`` x ``cols`` junction grid with all horizontal/vertical streets.

    Junction ids are ``r * cols + c``; segment ids are assigned row-major,
    horizontal streets first. The grid has ``rows*(cols-1) + cols*(rows-1)``
    segments.

    Args:
        rows: Number of junction rows (>= 1).
        cols: Number of junction columns (>= 1).
        spacing: Street length in metres.
        name: Optional network name (defaults to ``grid-{rows}x{cols}``).
    """
    if rows < 1 or cols < 1:
        raise RoadNetworkError(f"grid needs positive dimensions, got {rows}x{cols}")
    builder = RoadNetworkBuilder(name=name or f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            builder.add_junction(r * cols + c, c * spacing, r * spacing)
    segment_id = 0
    for r in range(rows):
        for c in range(cols - 1):
            builder.add_segment(segment_id, r * cols + c, r * cols + c + 1)
            segment_id += 1
    for r in range(rows - 1):
        for c in range(cols):
            builder.add_segment(segment_id, r * cols + c, (r + 1) * cols + c)
            segment_id += 1
    return builder.build()


def path_network(n_segments: int, spacing: float = 100.0) -> RoadNetwork:
    """A straight line of ``n_segments`` consecutive segments (test fixture)."""
    if n_segments < 1:
        raise RoadNetworkError("a path needs at least one segment")
    builder = RoadNetworkBuilder(name=f"path-{n_segments}")
    for i in range(n_segments + 1):
        builder.add_junction(i, i * spacing, 0.0)
    for i in range(n_segments):
        builder.add_segment(i, i, i + 1)
    return builder.build()


def radial_network(
    rings: int, spokes: int, ring_spacing: float = 200.0, name: str = ""
) -> RoadNetwork:
    """A ring-and-spoke network: ``rings`` concentric rings crossed by
    ``spokes`` radial roads, plus a central junction.

    Models the downtown-plus-beltway shape common in US cities. The network
    has ``rings * spokes + 1`` junctions and ``2 * rings * spokes`` segments
    (each ring junction gets one arc segment and one radial segment).
    """
    if rings < 1 or spokes < 3:
        raise RoadNetworkError("radial network needs rings >= 1 and spokes >= 3")
    builder = RoadNetworkBuilder(name=name or f"radial-{rings}x{spokes}")
    builder.add_junction(0, 0.0, 0.0)

    def junction_id(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            builder.add_junction(
                junction_id(ring, spoke), radius * math.cos(angle), radius * math.sin(angle)
            )
    segment_id = 0
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            inner = 0 if ring == 1 else junction_id(ring - 1, spoke)
            builder.add_segment(segment_id, inner, junction_id(ring, spoke))
            segment_id += 1
            builder.add_segment(
                segment_id, junction_id(ring, spoke), junction_id(ring, (spoke + 1) % spokes)
            )
            segment_id += 1
    return builder.build()


class _UnionFind:
    """Union-find with path compression, used by the Delaunay pruner."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True


def random_delaunay_network(
    n_junctions: int,
    target_segments: int,
    seed: int,
    extent: float = 20_000.0,
    name: str = "",
) -> RoadNetwork:
    """An irregular planar road network from a seeded random point set.

    Construction: draw ``n_junctions`` uniform points in an ``extent`` x
    ``extent`` square, triangulate them (Delaunay), then keep a minimum
    spanning tree (guaranteeing connectivity) plus the shortest remaining
    Delaunay edges until ``target_segments`` segments exist. Short edges are
    preferred because real road segments connect nearby intersections.

    Args:
        n_junctions: Number of junctions (>= 3 for a triangulation).
        target_segments: Desired segment count; must be at least
            ``n_junctions - 1`` (the spanning tree) and at most the number of
            Delaunay edges.
        seed: RNG seed; the network is a pure function of all arguments.
        extent: Side of the square map region in metres.
        name: Optional network name.
    """
    if n_junctions < 3:
        raise RoadNetworkError("Delaunay generator needs at least 3 junctions")
    if target_segments < n_junctions - 1:
        raise RoadNetworkError(
            f"target_segments={target_segments} cannot connect "
            f"{n_junctions} junctions (need >= {n_junctions - 1})"
        )
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, extent, size=(n_junctions, 2))
    triangulation = Delaunay(points)

    edges = set()
    for simplex in triangulation.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        edges.add((min(a, b), max(a, b)))
        edges.add((min(b, c), max(b, c)))
        edges.add((min(a, c), max(a, c)))
    if target_segments > len(edges):
        raise RoadNetworkError(
            f"target_segments={target_segments} exceeds the {len(edges)} "
            f"Delaunay edges available"
        )

    def edge_length(edge: Tuple[int, int]) -> float:
        pa, pb = points[edge[0]], points[edge[1]]
        return float(math.hypot(pa[0] - pb[0], pa[1] - pb[1]))

    ordered = sorted(edges, key=lambda e: (edge_length(e), e))
    union_find = _UnionFind(n_junctions)
    tree_edges: List[Tuple[int, int]] = []
    extra_edges: List[Tuple[int, int]] = []
    for edge in ordered:
        if union_find.union(edge[0], edge[1]):
            tree_edges.append(edge)
        else:
            extra_edges.append(edge)
    chosen = tree_edges + extra_edges[: target_segments - len(tree_edges)]
    chosen.sort()

    builder = RoadNetworkBuilder(
        name=name or f"delaunay-{n_junctions}j-{target_segments}s-seed{seed}"
    )
    for junction_id in range(n_junctions):
        builder.add_junction(
            junction_id, float(points[junction_id][0]), float(points[junction_id][1])
        )
    for segment_id, (a, b) in enumerate(chosen):
        builder.add_segment(segment_id, a, b)
    return builder.build()


def atlanta_like(seed: int = 2017, scale: float = 1.0) -> RoadNetwork:
    """A synthetic stand-in for the paper's northwest-Atlanta USGS map.

    Matches the published size (6,979 junctions / 9,187 segments) at
    ``scale=1.0``; smaller ``scale`` values shrink both counts proportionally
    for faster experiments while preserving the edge/junction ratio.
    """
    if not 0.0 < scale <= 1.0:
        raise RoadNetworkError(f"scale must be in (0, 1], got {scale}")
    n_junctions = max(3, int(round(ATLANTA_JUNCTIONS * scale)))
    target_segments = max(n_junctions - 1, int(round(ATLANTA_SEGMENTS * scale)))
    return random_delaunay_network(
        n_junctions,
        target_segments,
        seed=seed,
        extent=20_000.0 * math.sqrt(scale),
        name=f"atlanta-like-{scale:g}",
    )


def fig1_network() -> RoadNetwork:
    """The small sub-graph used by the paper's Figure 1 walkthrough.

    The paper shows a neighbourhood of ~24 segments where ``s18`` holds the
    actual user and three levels add ``{s17, s22}``, ``{s14, s15, s19}`` and
    ``{s9, s21, s24}``. The exact topology is not fully recoverable from the
    figure, so this fixture is a 4x4 junction grid whose 24 segments carry the
    ids ``1..24`` — segment 18 sits in the interior, matching the role it
    plays in the walkthrough (experiment E1).
    """
    grid = grid_network(4, 4, spacing=100.0)
    builder = RoadNetworkBuilder(name="fig1")
    for junction_id in grid.junction_ids():
        location = grid.junction(junction_id).location
        builder.add_junction(junction_id, location.x, location.y)
    for segment_id in grid.segment_ids():
        segment = grid.segment(segment_id)
        builder.add_segment(
            segment_id + 1, segment.junction_a, segment.junction_b, segment.length
        )
    return builder.build()


def fig2_network() -> RoadNetwork:
    """The exact configuration of the paper's Figure 2 RGE example.

    Region ``CloakA = {s8, s9, s11}`` is a three-segment path and the
    candidate frontier is exactly ``CanA = {s6, s10, s14}``. Segment lengths
    are chosen so the length-sorted table orders are::

        rows:    [s9, s8, s11]   (s8 -> row 2, as in the figure)
        columns: [s6, s14, s10]  (s14 -> column 2, as in the figure)

    With ``R_i = 5`` the pick value is ``5 mod 3 = 2`` and the selected cell
    is ``(2, 2)``: the forward transition ``s8 -> s14`` and backward
    transition ``s14 -> s8`` of the figure (experiment E2).
    """
    builder = RoadNetworkBuilder(name="fig2")
    # A path J0-J1-J2-J3 carrying the region, with one pendant junction per
    # frontier segment.
    builder.add_junction(0, 0.0, 0.0)
    builder.add_junction(1, 100.0, 0.0)
    builder.add_junction(2, 150.0, 0.0)
    builder.add_junction(3, 300.0, 0.0)
    builder.add_junction(4, 0.0, 40.0)  # pendant for s6
    builder.add_junction(5, 150.0, 120.0)  # pendant for s10
    builder.add_junction(6, 100.0, -80.0)  # pendant for s14
    builder.add_segment(8, 0, 1, length=100.0)  # s8 (row 2)
    builder.add_segment(9, 1, 2, length=50.0)  # s9 (row 1)
    builder.add_segment(11, 2, 3, length=150.0)  # s11 (row 3)
    builder.add_segment(6, 0, 4, length=40.0)  # s6 (column 1)
    builder.add_segment(10, 2, 5, length=120.0)  # s10 (column 3)
    builder.add_segment(14, 1, 6, length=80.0)  # s14 (column 2)
    return builder.build()


def fig3_network() -> RoadNetwork:
    """A fixture for the paper's Figure 3 RPLE example.

    Figure 3 requires segment ``s8`` to have a forward transition list of
    length ``T = 6`` containing ``s14``. This fixture gives ``s8`` exactly six
    neighbours (``s10``–``s15``) arranged as a star around its two endpoint
    junctions, so the pre-assignment fills a six-slot list (experiment E3).
    """
    builder = RoadNetworkBuilder(name="fig3")
    builder.add_junction(0, 0.0, 0.0)
    builder.add_junction(1, 100.0, 0.0)
    pendants = {
        10: (-80.0, 60.0),
        11: (-80.0, -60.0),
        12: (0.0, 90.0),
        13: (180.0, 60.0),
        14: (180.0, -60.0),
        15: (100.0, 90.0),
    }
    for junction_id, (x, y) in zip(range(2, 8), pendants.values()):
        builder.add_junction(junction_id, x, y)
    builder.add_segment(8, 0, 1)
    attach = [0, 0, 0, 1, 1, 1]
    for (segment_id, __), junction_id, anchor in zip(
        pendants.items(), range(2, 8), attach
    ):
        builder.add_segment(segment_id, anchor, junction_id)
    return builder.build()


def _degree_histogram(network: RoadNetwork) -> Dict[int, int]:
    """Junction-degree histogram (used by tests to sanity-check generators)."""
    histogram: Dict[int, int] = {}
    for junction_id in network.junction_ids():
        degree = len(network.segments_at_junction(junction_id))
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
