"""Road-network substrate: geometry, graphs, generators, routing, indexing.

This package models the paper's substrate — road maps as junction/segment
graphs — and provides everything the cloaking algorithms and the mobility
simulator need: adjacency ("linked segments"), candidate frontiers,
connectivity checks, shortest-path routing, spatial indexing, synthetic map
generation and serialization.
"""

from .geometry import (
    BoundingBox,
    Point,
    distance,
    midpoint,
    point_along,
    point_segment_distance,
    polyline_length,
)
from .generators import (
    ATLANTA_JUNCTIONS,
    ATLANTA_SEGMENTS,
    atlanta_like,
    fig1_network,
    fig2_network,
    fig3_network,
    grid_network,
    path_network,
    radial_network,
    random_delaunay_network,
)
from .compiled import CompiledNetwork, compiled_network, geometry_digest
from .graph import Junction, RoadNetwork, RoadNetworkBuilder, Segment
from .io import (
    load_network_csv,
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_network_csv,
    save_network_json,
)
from .paths import Route, segment_hop_distances, shortest_junction_path, shortest_route
from .spatial_index import SegmentIndex
from .subgraph import clip_network, neighborhood_of
from .stats import NetworkStats, degree_histogram, network_stats

__all__ = [
    "Point",
    "BoundingBox",
    "distance",
    "midpoint",
    "point_along",
    "point_segment_distance",
    "polyline_length",
    "Junction",
    "Segment",
    "RoadNetwork",
    "RoadNetworkBuilder",
    "CompiledNetwork",
    "compiled_network",
    "geometry_digest",
    "grid_network",
    "path_network",
    "radial_network",
    "random_delaunay_network",
    "atlanta_like",
    "fig1_network",
    "fig2_network",
    "fig3_network",
    "ATLANTA_JUNCTIONS",
    "ATLANTA_SEGMENTS",
    "Route",
    "shortest_route",
    "shortest_junction_path",
    "segment_hop_distances",
    "SegmentIndex",
    "clip_network",
    "neighborhood_of",
    "NetworkStats",
    "network_stats",
    "degree_histogram",
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_csv",
    "load_network_csv",
]
