"""Descriptive statistics for road networks.

Used by tests to check that synthetic generators land in the same regime as
the paper's USGS Atlanta map, and by the experiment harness to annotate
result tables with the workload's map characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Dict

from .graph import RoadNetwork

__all__ = ["NetworkStats", "network_stats", "degree_histogram"]


@dataclass(frozen=True)
class NetworkStats:
    """Summary statistics of a road network.

    Attributes:
        name: Network name.
        junctions: Junction count.
        segments: Segment count.
        segments_per_junction: Edge/vertex ratio (USGS Atlanta: ~1.32).
        mean_degree: Mean junction degree.
        mean_segment_length: Mean segment length in metres.
        median_segment_length: Median segment length in metres.
        components: Number of connected components (1 for usable maps).
        mean_linked_segments: Mean size of a segment's "linked" set — the
            branching factor seen by ReverseCloak expansion.
    """

    name: str
    junctions: int
    segments: int
    segments_per_junction: float
    mean_degree: float
    mean_segment_length: float
    median_segment_length: float
    components: int
    mean_linked_segments: float

    def describe(self) -> str:
        """A one-paragraph human-readable summary."""
        return (
            f"{self.name}: {self.junctions} junctions, {self.segments} segments "
            f"({self.segments_per_junction:.2f} per junction), mean degree "
            f"{self.mean_degree:.2f}, mean segment {self.mean_segment_length:.0f} m "
            f"(median {self.median_segment_length:.0f} m), "
            f"{self.components} component(s), mean linked set "
            f"{self.mean_linked_segments:.2f}"
        )


def degree_histogram(network: RoadNetwork) -> Dict[int, int]:
    """Junction-degree histogram ``{degree: count}``."""
    histogram: Dict[int, int] = {}
    for junction_id in network.junction_ids():
        degree = len(network.segments_at_junction(junction_id))
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def network_stats(network: RoadNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``network``."""
    segment_ids = network.segment_ids()
    lengths = [network.segment_length(sid) for sid in segment_ids]
    degrees = [
        len(network.segments_at_junction(jid)) for jid in network.junction_ids()
    ]
    linked = [len(network.neighbors(sid)) for sid in segment_ids]
    return NetworkStats(
        name=network.name,
        junctions=network.junction_count,
        segments=network.segment_count,
        segments_per_junction=(
            network.segment_count / network.junction_count
            if network.junction_count
            else 0.0
        ),
        mean_degree=mean(degrees) if degrees else 0.0,
        mean_segment_length=mean(lengths) if lengths else 0.0,
        median_segment_length=median(lengths) if lengths else 0.0,
        components=len(network.connected_components()),
        mean_linked_segments=mean(linked) if linked else 0.0,
    )
