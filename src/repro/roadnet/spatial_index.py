"""Uniform-grid spatial index over road segments.

The mobility substrate needs "nearest segment to a random point" when placing
cars (GTMobiSim drops vehicles along roads around Gaussian hot-spots), and the
LBS substrate needs "segments within a query rectangle" for anonymous range
queries. A uniform bucket grid over segment midpoints-with-extents is simple,
deterministic and fast at the paper's map sizes (~10k segments).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import RoadNetworkError
from .geometry import BoundingBox, Point, point_segment_distance
from .graph import RoadNetwork

__all__ = ["SegmentIndex"]


class SegmentIndex:
    """A uniform-grid index mapping space to segment ids.

    Each segment is registered in every cell its endpoint bounding box
    touches; queries therefore never miss a segment, at the cost of a final
    exact-distance filter.

    Args:
        network: The network to index.
        cell_size: Cell side in metres. Defaults to twice the mean segment
            length, which keeps the cells-per-segment ratio near 1 for
            road-like data.
    """

    def __init__(self, network: RoadNetwork, cell_size: Optional[float] = None) -> None:
        if network.segment_count == 0:
            raise RoadNetworkError("cannot index an empty network")
        self._network = network
        if cell_size is None:
            mean_length = network.total_length() / network.segment_count
            cell_size = max(1.0, 2.0 * mean_length)
        if cell_size <= 0:
            raise RoadNetworkError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._bounds = network.bounding_box()
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for segment_id in network.segment_ids():
            a, b = network.segment_endpoints(segment_id)
            for cell in self._cells_touching(BoundingBox.around((a, b))):
                self._cells.setdefault(cell, []).append(segment_id)

    @property
    def cell_size(self) -> float:
        return self._cell_size

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (
            int(math.floor((p.x - self._bounds.min_x) / self._cell_size)),
            int(math.floor((p.y - self._bounds.min_y) / self._cell_size)),
        )

    def _cells_touching(self, box: BoundingBox) -> Iterable[Tuple[int, int]]:
        lo = self._cell_of(Point(box.min_x, box.min_y))
        hi = self._cell_of(Point(box.max_x, box.max_y))
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                yield (cx, cy)

    def _segment_distance(self, segment_id: int, p: Point) -> float:
        a, b = self._network.segment_endpoints(segment_id)
        return point_segment_distance(p, a, b)

    def nearest_segment(self, p: Point) -> int:
        """The id of the segment geometrically closest to ``p``.

        Searches outward ring by ring from the cell containing ``p``; falls
        back to a full scan if the local neighbourhood is empty (points far
        outside the map).
        """
        center = self._cell_of(p)
        best_id: Optional[int] = None
        best_distance = float("inf")
        max_radius = int(
            max(self._bounds.width, self._bounds.height) / self._cell_size
        ) + 2
        for radius in range(max_radius + 1):
            candidates = self._ring_segments(center, radius)
            for segment_id in candidates:
                dist = self._segment_distance(segment_id, p)
                if dist < best_distance or (
                    dist == best_distance and (best_id is None or segment_id < best_id)
                ):
                    best_distance = dist
                    best_id = segment_id
            # A hit in ring r can still be beaten by ring r+1 (cells are
            # square), but never by rings beyond the current best distance.
            if best_id is not None and best_distance <= (radius * self._cell_size):
                return best_id
        if best_id is None:  # empty neighbourhood: brute force
            for segment_id in self._network.segment_ids():
                dist = self._segment_distance(segment_id, p)
                if dist < best_distance:
                    best_distance = dist
                    best_id = segment_id
        assert best_id is not None
        return best_id

    def _ring_segments(self, center: Tuple[int, int], radius: int) -> List[int]:
        """Distinct segment ids registered in the ring at ``radius`` cells."""
        seen = set()
        cx, cy = center
        if radius == 0:
            cells = [(cx, cy)]
        else:
            cells = []
            for dx in range(-radius, radius + 1):
                cells.append((cx + dx, cy - radius))
                cells.append((cx + dx, cy + radius))
            for dy in range(-radius + 1, radius):
                cells.append((cx - radius, cy + dy))
                cells.append((cx + radius, cy + dy))
        for cell in cells:
            seen.update(self._cells.get(cell, ()))
        return sorted(seen)

    def segments_in_box(self, box: BoundingBox) -> Tuple[int, ...]:
        """Ids of segments whose endpoint bounding box intersects ``box``."""
        found = set()
        for cell in self._cells_touching(box):
            for segment_id in self._cells.get(cell, ()):
                a, b = self._network.segment_endpoints(segment_id)
                if box.intersects(BoundingBox.around((a, b))):
                    found.add(segment_id)
        return tuple(sorted(found))

    def segments_near(self, p: Point, radius: float) -> Tuple[int, ...]:
        """Ids of segments within ``radius`` metres of ``p``, ascending."""
        if radius < 0:
            raise RoadNetworkError(f"radius must be non-negative, got {radius}")
        box = BoundingBox(p.x - radius, p.y - radius, p.x + radius, p.y + radius)
        hits = [
            segment_id
            for segment_id in self.segments_in_box(box)
            if self._segment_distance(segment_id, p) <= radius
        ]
        return tuple(hits)
