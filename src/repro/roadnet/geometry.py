"""Plain-float 2-D geometry used by the road-network substrate.

The paper's maps are small enough (thousands of segments) that a dependency
on ``shapely`` is unnecessary; everything here is exact, dependency-free
Euclidean geometry on immutable value types. Coordinates are in metres in an
arbitrary local projection, matching how GTMobiSim treats the USGS Atlanta
map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Point",
    "BoundingBox",
    "distance",
    "midpoint",
    "polyline_length",
    "point_along",
    "point_segment_distance",
]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point (metres, local projection)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the straight line between ``a`` and ``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def polyline_length(points: Sequence[Point]) -> float:
    """Total length of the polyline through ``points`` (0.0 for < 2 points)."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))


def point_along(a: Point, b: Point, fraction: float) -> Point:
    """The point located ``fraction`` of the way from ``a`` to ``b``.

    ``fraction`` is clamped to ``[0, 1]`` so callers that accumulate floating
    point offsets never step off the segment.
    """
    f = min(1.0, max(0.0, fraction))
    return Point(a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f)


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Shortest distance from point ``p`` to the line segment ``a``–``b``."""
    ax, ay = a.x, a.y
    bx, by = b.x, b.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return p.distance_to(a)
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    return p.distance_to(Point(ax + t * dx, ay + t * dy))


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned bounding box."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def around(cls, points: Iterable[Point]) -> "BoundingBox":
        """The tightest box containing ``points`` (raises on empty input)."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Length of the box diagonal — the paper-style measure of how much
        spatial extent a cloaking region exposes."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the box (boundary inclusive)."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def expanded(self, margin: float) -> "BoundingBox":
        """A box grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (boundary touch counts)."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from ``(min_x, min_y)``."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )
