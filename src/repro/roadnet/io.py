"""Serialization of road networks (JSON documents and CSV file pairs).

The demo toolkit loads its map from USGS data via GTMobiSim; this module
provides the equivalent ingestion path for our reproduction: networks can be
saved and re-loaded exactly (ids, coordinates and explicit lengths survive a
round trip), so experiments can pin a generated map to disk and every
component — anonymizer, de-anonymizer, attacker — can load the identical
graph.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..errors import RoadNetworkError
from .graph import RoadNetwork, RoadNetworkBuilder

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_csv",
    "load_network_csv",
]

_FORMAT_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict:
    """A JSON-serialisable dictionary capturing the full network."""
    return {
        "format": "repro.roadnet",
        "version": _FORMAT_VERSION,
        "name": network.name,
        "junctions": [
            {
                "id": junction_id,
                "x": network.junction(junction_id).location.x,
                "y": network.junction(junction_id).location.y,
            }
            for junction_id in network.junction_ids()
        ],
        "segments": [
            {
                "id": segment_id,
                "a": network.segment(segment_id).junction_a,
                "b": network.segment(segment_id).junction_b,
                "length": network.segment(segment_id).length,
            }
            for segment_id in network.segment_ids()
        ],
    }


def network_from_dict(document: dict) -> RoadNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    if document.get("format") != "repro.roadnet":
        raise RoadNetworkError("not a repro.roadnet document")
    if document.get("version") != _FORMAT_VERSION:
        raise RoadNetworkError(
            f"unsupported roadnet format version: {document.get('version')}"
        )
    builder = RoadNetworkBuilder(name=document.get("name", "road-network"))
    for junction in document["junctions"]:
        builder.add_junction(int(junction["id"]), float(junction["x"]), float(junction["y"]))
    for segment in document["segments"]:
        builder.add_segment(
            int(segment["id"]),
            int(segment["a"]),
            int(segment["b"]),
            float(segment["length"]),
        )
    return builder.build()


def save_network_json(network: RoadNetwork, path: Union[str, Path]) -> None:
    """Write the network as a single JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=1))


def load_network_json(path: Union[str, Path]) -> RoadNetwork:
    """Load a network previously written by :func:`save_network_json`."""
    return network_from_dict(json.loads(Path(path).read_text()))


def save_network_csv(network: RoadNetwork, directory: Union[str, Path]) -> None:
    """Write ``junctions.csv`` and ``segments.csv`` into ``directory``.

    The CSV form mirrors the USGS/GTMobiSim style of shipping maps as node
    and edge tables.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "junctions.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["junction_id", "x", "y"])
        for junction_id in network.junction_ids():
            location = network.junction(junction_id).location
            writer.writerow([junction_id, repr(location.x), repr(location.y)])
    with open(directory / "segments.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["segment_id", "junction_a", "junction_b", "length"])
        for segment_id in network.segment_ids():
            segment = network.segment(segment_id)
            writer.writerow(
                [segment_id, segment.junction_a, segment.junction_b, repr(segment.length)]
            )
    (directory / "network.meta.json").write_text(
        json.dumps({"name": network.name, "version": _FORMAT_VERSION})
    )


def load_network_csv(directory: Union[str, Path]) -> RoadNetwork:
    """Load a network previously written by :func:`save_network_csv`."""
    directory = Path(directory)
    meta_path = directory / "network.meta.json"
    name = "road-network"
    if meta_path.exists():
        name = json.loads(meta_path.read_text()).get("name", name)
    builder = RoadNetworkBuilder(name=name)
    junction_path = directory / "junctions.csv"
    segment_path = directory / "segments.csv"
    if not junction_path.exists() or not segment_path.exists():
        raise RoadNetworkError(f"no junctions.csv/segments.csv under {directory}")
    with open(junction_path, newline="") as handle:
        for row in csv.DictReader(handle):
            builder.add_junction(int(row["junction_id"]), float(row["x"]), float(row["y"]))
    with open(segment_path, newline="") as handle:
        for row in csv.DictReader(handle):
            builder.add_segment(
                int(row["segment_id"]),
                int(row["junction_a"]),
                int(row["junction_b"]),
                float(row["length"]),
            )
    return builder.build()
