"""Road-network model: junctions, segments, and the segment-adjacency graph.

The paper models the map exactly this way (Section II): *"It consists of a
set of segments as the connections of adjacent junctions and a set of
junctions as the intersections of segments."* Cloaking regions are sets of
segment ids; two segments are adjacent ("linked", in the paper's wording)
when they share a junction.

:class:`RoadNetwork` is immutable after construction — ReverseCloak's
reversibility guarantees depend on both sides of the protocol seeing the
exact same graph, so accidental mutation is a correctness hazard. Build
networks with :class:`RoadNetworkBuilder` or the generators in
:mod:`repro.roadnet.generators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import (
    DisconnectedRegionError,
    RoadNetworkError,
    UnknownJunctionError,
    UnknownSegmentError,
)
from .geometry import BoundingBox, Point, midpoint

__all__ = [
    "Junction",
    "Segment",
    "RoadNetwork",
    "RoadNetworkBuilder",
    "removable_segments",
]


def removable_segments(neighbors_of, region: AbstractSet[int]) -> Tuple[int, ...]:
    """Region members whose removal leaves the rest of ``region`` connected.

    ``neighbors_of`` maps a segment id to its adjacent segment ids (the
    caller restricts nothing — membership filtering happens here). The whole
    answer is produced by one component sweep plus one articulation-point
    pass, O(|region| * deg):

    * one connected component: removable = non-articulation members (an
      empty remainder, i.e. a single-member region, counts as connected);
    * two components: only a singleton component can go — removing its
      member leaves exactly the other (connected) component;
    * three or more components: removing one member can never reconnect the
      rest, so nothing is removable.
    """
    region_set = region if isinstance(region, (set, frozenset)) else set(region)
    if not region_set:
        return ()
    if len(region_set) == 1:
        return tuple(region_set)
    components = []
    unseen = set(region_set)
    while unseen:
        start = next(iter(unseen))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in neighbors_of(current):
                if neighbor in unseen and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        unseen -= seen
        components.append(seen)
    if len(components) > 2:
        return ()
    if len(components) == 2:
        return tuple(
            sorted(
                member
                for component in components
                if len(component) == 1
                for member in component
            )
        )
    articulation = _articulation_points(
        neighbors_of, region_set, next(iter(components[0]))
    )
    return tuple(sorted(region_set - articulation))


def _articulation_points(
    neighbors_of, region: AbstractSet[int], start: int
) -> set:
    """Articulation points of the (connected) region-induced subgraph.

    Iterative Tarjan lowlink pass — recursion-free so arbitrarily large
    regions cannot overflow the interpreter stack.
    """
    disc: Dict[int, int] = {start: 0}
    low: Dict[int, int] = {start: 0}
    articulation: set = set()
    counter = 1
    root_children = 0
    stack: List[Tuple[int, int, Iterator[int]]] = [
        (start, -1, iter(neighbors_of(start)))
    ]
    while stack:
        node, parent, neighbors = stack[-1]
        descended = False
        for neighbor in neighbors:
            if neighbor not in region or neighbor == parent:
                continue
            if neighbor in disc:
                if disc[neighbor] < low[node]:
                    low[node] = disc[neighbor]
            else:
                disc[neighbor] = low[neighbor] = counter
                counter += 1
                stack.append((neighbor, node, iter(neighbors_of(neighbor))))
                descended = True
                break
        if not descended:
            stack.pop()
            if stack:
                above = stack[-1][0]
                if low[node] < low[above]:
                    low[above] = low[node]
                if above == start:
                    root_children += 1
                elif low[node] >= disc[above]:
                    articulation.add(above)
    if root_children >= 2:
        articulation.add(start)
    return articulation


@dataclass(frozen=True)
class Junction:
    """A road intersection.

    Attributes:
        junction_id: Stable integer id, unique within a network.
        location: Position in the local metric projection.
    """

    junction_id: int
    location: Point


@dataclass(frozen=True)
class Segment:
    """An undirected road segment between two junctions.

    Attributes:
        segment_id: Stable integer id, unique within a network.
        junction_a: Id of one endpoint junction (always the smaller id).
        junction_b: Id of the other endpoint junction.
        length: Road length in metres. Defaults to the Euclidean distance
            between the endpoints when built through the builder; a longer
            explicit value models curved roads.
    """

    segment_id: int
    junction_a: int
    junction_b: int
    length: float

    def endpoints(self) -> Tuple[int, int]:
        """The endpoint junction ids as an ordered pair."""
        return (self.junction_a, self.junction_b)

    def other_end(self, junction_id: int) -> int:
        """The endpoint opposite to ``junction_id``."""
        if junction_id == self.junction_a:
            return self.junction_b
        if junction_id == self.junction_b:
            return self.junction_a
        raise RoadNetworkError(
            f"junction {junction_id} is not an endpoint of segment {self.segment_id}"
        )


class RoadNetwork:
    """An immutable road network with fast segment-adjacency lookups.

    The class exposes exactly the operations ReverseCloak needs:

    * neighbour ("linked") segments of a segment,
    * the candidate frontier of a region (used as ``CanA`` by RGE),
    * region connectivity and spatial measures (used by tolerance checks),
    * deterministic global orderings (used by transition tables).
    """

    def __init__(
        self,
        junctions: Mapping[int, Junction],
        segments: Mapping[int, Segment],
        name: str = "road-network",
    ) -> None:
        self._name = name
        self._junctions: Dict[int, Junction] = dict(junctions)
        self._segments: Dict[int, Segment] = dict(segments)
        self._validate()
        self._segments_at_junction: Dict[int, Tuple[int, ...]] = self._index_junctions()
        self._neighbors: Dict[int, Tuple[int, ...]] = self._index_neighbors()
        # Hot-path caches: tolerance checks and spatial indexing look up
        # segment lengths constantly, and several callers need the whole
        # network's summed length; both are pure functions of the immutable
        # graph, so they are computed once here.
        self._length_of: Dict[int, float] = {
            segment_id: segment.length
            for segment_id, segment in self._segments.items()
        }
        self._network_length: float = sum(
            self._length_of[segment_id] for segment_id in sorted(self._length_of)
        )
        self._network_bbox: Optional[BoundingBox] = None
        self._length_sort_keys: Optional[Dict[int, Tuple[float, int]]] = None
        self._segment_bounds: Optional[
            Dict[int, Tuple[float, float, float, float]]
        ] = None
        self._compiled = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for junction_id, junction in self._junctions.items():
            if junction.junction_id != junction_id:
                raise RoadNetworkError(
                    f"junction key {junction_id} does not match id "
                    f"{junction.junction_id}"
                )
        seen_pairs: Dict[Tuple[int, int], int] = {}
        for segment_id, segment in self._segments.items():
            if segment.segment_id != segment_id:
                raise RoadNetworkError(
                    f"segment key {segment_id} does not match id {segment.segment_id}"
                )
            for endpoint in segment.endpoints():
                if endpoint not in self._junctions:
                    raise UnknownJunctionError(endpoint)
            if segment.junction_a == segment.junction_b:
                raise RoadNetworkError(
                    f"segment {segment_id} is a self-loop at junction "
                    f"{segment.junction_a}"
                )
            if segment.length <= 0.0:
                raise RoadNetworkError(
                    f"segment {segment_id} has non-positive length {segment.length}"
                )
            pair = (
                min(segment.junction_a, segment.junction_b),
                max(segment.junction_a, segment.junction_b),
            )
            if pair in seen_pairs:
                raise RoadNetworkError(
                    f"segments {seen_pairs[pair]} and {segment_id} duplicate the "
                    f"junction pair {pair}"
                )
            seen_pairs[pair] = segment_id

    def _index_junctions(self) -> Dict[int, Tuple[int, ...]]:
        at: Dict[int, List[int]] = {jid: [] for jid in self._junctions}
        for segment in self._segments.values():
            at[segment.junction_a].append(segment.segment_id)
            at[segment.junction_b].append(segment.segment_id)
        return {jid: tuple(sorted(sids)) for jid, sids in at.items()}

    def _index_neighbors(self) -> Dict[int, Tuple[int, ...]]:
        neighbors: Dict[int, Tuple[int, ...]] = {}
        for segment in self._segments.values():
            linked = set()
            for junction_id in segment.endpoints():
                linked.update(self._segments_at_junction[junction_id])
            linked.discard(segment.segment_id)
            neighbors[segment.segment_id] = tuple(sorted(linked))
        return neighbors

    def length_sort_keys(self) -> Dict[int, Tuple[float, int]]:
        """The canonical ``(length, id)`` sort key of every segment.

        This is the key of the protocol's length ordering (transition-table
        rows and columns). Computed once per network — sorting with
        ``key=keys.__getitem__`` replaces a per-element Python lambda in the
        per-step candidate ordering, which is hot during cloaking.
        """
        keys = self._length_sort_keys
        if keys is None:
            keys = {
                segment_id: (length, segment_id)
                for segment_id, length in self._length_of.items()
            }
            self._length_sort_keys = keys
        return keys

    def compiled(self):
        """The shared :class:`~repro.roadnet.compiled.CompiledNetwork` of
        this map — dense reindex, CSR adjacency, flat length/bbox/rank
        tables. Compiled once per geometry digest (equal maps share one
        plane) and cached on the instance; this is what every hot path
        (region state maintenance, candidate ordering, removability
        sweeps) consumes instead of the id-keyed dicts here.
        """
        plane = self._compiled
        if plane is None:
            from .compiled import compiled_network  # local: avoids a cycle

            plane = compiled_network(self)
            self._compiled = plane
        return plane

    def segment_bounds(self) -> Dict[int, Tuple[float, float, float, float]]:
        """Per-segment ``(min_x, min_y, max_x, max_y)``, computed once.

        The running bounding-box maintenance of
        :class:`~repro.core.region_state.RegionState` folds these plain
        tuples per mutation instead of re-reading endpoint ``Point``
        attributes — same extremes, a fraction of the attribute traffic.
        """
        bounds = self._segment_bounds
        if bounds is None:
            bounds = {}
            for segment_id, segment in self._segments.items():
                a = self._junctions[segment.junction_a].location
                b = self._junctions[segment.junction_b].location
                bounds[segment_id] = (
                    a.x if a.x < b.x else b.x,
                    a.y if a.y < b.y else b.y,
                    a.x if a.x > b.x else b.x,
                    a.y if a.y > b.y else b.y,
                )
            self._segment_bounds = bounds
        return bounds

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def junction_count(self) -> int:
        return len(self._junctions)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def junction(self, junction_id: int) -> Junction:
        """The junction with ``junction_id`` (raises :class:`UnknownJunctionError`)."""
        try:
            return self._junctions[junction_id]
        except KeyError:
            raise UnknownJunctionError(junction_id) from None

    def segment(self, segment_id: int) -> Segment:
        """The segment with ``segment_id`` (raises :class:`UnknownSegmentError`)."""
        try:
            return self._segments[segment_id]
        except KeyError:
            raise UnknownSegmentError(segment_id) from None

    def has_segment(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def junction_ids(self) -> Tuple[int, ...]:
        """All junction ids in ascending order."""
        return tuple(sorted(self._junctions))

    def segment_ids(self) -> Tuple[int, ...]:
        """All segment ids in ascending order."""
        return tuple(sorted(self._segments))

    def segments_at_junction(self, junction_id: int) -> Tuple[int, ...]:
        """Ids of segments incident to ``junction_id``, ascending."""
        try:
            return self._segments_at_junction[junction_id]
        except KeyError:
            raise UnknownJunctionError(junction_id) from None

    def neighbors(self, segment_id: int) -> Tuple[int, ...]:
        """Ids of segments sharing a junction with ``segment_id``, ascending.

        This is the paper's "linked segments" relation driving both expansion
        and reversal.
        """
        try:
            return self._neighbors[segment_id]
        except KeyError:
            raise UnknownSegmentError(segment_id) from None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def segment_endpoints(self, segment_id: int) -> Tuple[Point, Point]:
        """The endpoint coordinates of a segment."""
        segment = self.segment(segment_id)
        return (
            self.junction(segment.junction_a).location,
            self.junction(segment.junction_b).location,
        )

    def segment_midpoint(self, segment_id: int) -> Point:
        """Midpoint of the straight line between the segment's endpoints."""
        a, b = self.segment_endpoints(segment_id)
        return midpoint(a, b)

    def segment_length(self, segment_id: int) -> float:
        """Road length of a segment in metres."""
        try:
            return self._length_of[segment_id]
        except KeyError:
            raise UnknownSegmentError(segment_id) from None

    def bounding_box(self, segment_ids: Optional[Iterable[int]] = None) -> BoundingBox:
        """Tightest box around the given segments (whole network by default).

        The full-network box is computed once and cached — the graph is
        immutable, and spatial indexes ask for it repeatedly.
        """
        if segment_ids is None:
            if self._network_bbox is None:
                self._network_bbox = BoundingBox.around(
                    [j.location for j in self._junctions.values()]
                )
            return self._network_bbox
        points = []
        for segment_id in segment_ids:
            points.extend(self.segment_endpoints(segment_id))
        return BoundingBox.around(points)

    def total_length(self, segment_ids: Optional[Iterable[int]] = None) -> float:
        """Sum of segment lengths in metres (whole network by default).

        The full-network total is precomputed at construction, so
        ``total_length()`` is O(1).
        """
        if segment_ids is None:
            return self._network_length
        return sum(self.segment_length(sid) for sid in segment_ids)

    # ------------------------------------------------------------------
    # region operations (the primitives ReverseCloak builds on)
    # ------------------------------------------------------------------
    def frontier(self, region: AbstractSet[int]) -> Tuple[int, ...]:
        """The candidate frontier of ``region``: segments adjacent to the
        region but not inside it, in ascending id order.

        RGE calls this set ``CanA``. An empty region has an empty frontier.
        """
        candidates = set()
        for segment_id in region:
            for neighbor in self.neighbors(segment_id):
                if neighbor not in region:
                    candidates.add(neighbor)
        return tuple(sorted(candidates))

    def is_connected_region(self, region: AbstractSet[int]) -> bool:
        """Whether ``region`` induces a connected segment-adjacency subgraph.

        Empty regions count as connected; unknown segment ids raise.
        """
        if not region:
            return True
        for segment_id in region:
            self.segment(segment_id)
        start = next(iter(region))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.neighbors(current):
                if neighbor in region and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(region)

    def require_connected_region(self, region: AbstractSet[int]) -> None:
        """Raise :class:`DisconnectedRegionError` unless ``region`` is connected."""
        if not self.is_connected_region(region):
            raise DisconnectedRegionError(
                f"region of {len(region)} segments is not connected"
            )

    def articulation_free_removals(self, region: AbstractSet[int]) -> Tuple[int, ...]:
        """Segments whose removal keeps ``region`` connected, ascending order.

        Reversal only ever removes such segments — every intermediate region
        of a forward expansion is connected, so the true last-added segment is
        always in this set. Search-mode reversal uses it to enumerate
        hypotheses.

        Computed with a single articulation-point pass (Tarjan) over the
        region-induced subgraph: O(|region| * deg) total, instead of one
        connectivity check per member (O(|region|^2 * deg)). Runs on the
        compiled CSR plane; :func:`removable_segments` remains the
        dict-walking reference implementation it is tested against.
        """
        region_set = set(region)
        try:
            return self.compiled().removable_members(region_set)
        except KeyError as exc:
            raise UnknownSegmentError(exc.args[0]) from None

    def connected_components(self) -> Tuple[FrozenSet[int], ...]:
        """Connected components of the segment-adjacency graph, largest first."""
        unseen = set(self._segments)
        components: List[FrozenSet[int]] = []
        while unseen:
            start = min(unseen)
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbor in self.neighbors(current):
                    if neighbor in unseen and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            unseen -= seen
            components.append(frozenset(seen))
        components.sort(key=lambda c: (-len(c), min(c)))
        return tuple(components)

    def __getstate__(self) -> dict:
        # The compiled plane carries per-thread scratch (unpicklable) and
        # is memoized per geometry digest anyway — drop it and let the
        # unpickled copy resolve it on first use.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(name={self._name!r}, junctions={self.junction_count}, "
            f"segments={self.segment_count})"
        )


@dataclass
class RoadNetworkBuilder:
    """Incremental builder producing an immutable :class:`RoadNetwork`.

    Example:
        >>> builder = RoadNetworkBuilder(name="tiny")
        >>> builder.add_junction(0, 0.0, 0.0)
        0
        >>> builder.add_junction(1, 100.0, 0.0)
        1
        >>> builder.add_segment(0, 0, 1)
        0
        >>> network = builder.build()
        >>> network.segment_count
        1
    """

    name: str = "road-network"
    _junctions: Dict[int, Junction] = field(default_factory=dict)
    _segments: Dict[int, Segment] = field(default_factory=dict)

    def add_junction(self, junction_id: int, x: float, y: float) -> int:
        """Register a junction; returns its id. Duplicate ids raise."""
        if junction_id in self._junctions:
            raise RoadNetworkError(f"duplicate junction id: {junction_id}")
        self._junctions[junction_id] = Junction(junction_id, Point(x, y))
        return junction_id

    def add_segment(
        self,
        segment_id: int,
        junction_a: int,
        junction_b: int,
        length: Optional[float] = None,
    ) -> int:
        """Register a segment; returns its id.

        ``length`` defaults to the Euclidean distance between the endpoints.
        Both junctions must already exist.
        """
        if segment_id in self._segments:
            raise RoadNetworkError(f"duplicate segment id: {segment_id}")
        for junction_id in (junction_a, junction_b):
            if junction_id not in self._junctions:
                raise UnknownJunctionError(junction_id)
        if length is None:
            length = self._junctions[junction_a].location.distance_to(
                self._junctions[junction_b].location
            )
        low, high = min(junction_a, junction_b), max(junction_a, junction_b)
        self._segments[segment_id] = Segment(segment_id, low, high, length)
        return segment_id

    def next_junction_id(self) -> int:
        """The smallest unused junction id."""
        return max(self._junctions, default=-1) + 1

    def next_segment_id(self) -> int:
        """The smallest unused segment id."""
        return max(self._segments, default=-1) + 1

    def build(self) -> RoadNetwork:
        """Produce the immutable network (validates the whole graph)."""
        return RoadNetwork(self._junctions, self._segments, name=self.name)
