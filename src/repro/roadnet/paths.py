"""Shortest-path routing over road networks.

Two distance notions are needed by the reproduction:

* **Junction-level shortest paths** (Dijkstra over segment lengths) drive the
  mobility substrate: GTMobiSim routes every car along the shortest path to
  its random destination (paper Section IV).
* **Segment-hop distances** (BFS over the segment-adjacency graph) order
  neighbour lists for RPLE pre-assignment (decision D4 in DESIGN.md).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import RoadNetworkError
from .graph import RoadNetwork

__all__ = ["Route", "shortest_route", "shortest_junction_path", "segment_hop_distances"]


@dataclass(frozen=True)
class Route:
    """A shortest path between two junctions.

    Attributes:
        junctions: Junction ids visited, source first.
        segments: Segment ids traversed, in travel order (one fewer than
            ``junctions``).
        length: Total road length in metres.
    """

    junctions: Tuple[int, ...]
    segments: Tuple[int, ...]
    length: float

    @property
    def hops(self) -> int:
        return len(self.segments)


def _dijkstra(
    network: RoadNetwork, source: int, target: Optional[int] = None
) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
    """Dijkstra from ``source``; optionally stops early at ``target``.

    Returns ``(distances, parents)`` where ``parents[j] = (prev_junction,
    via_segment)``.
    """
    network.junction(source)
    distances: Dict[int, float] = {source: 0.0}
    parents: Dict[int, Tuple[int, int]] = {}
    visited = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, junction_id = heapq.heappop(heap)
        if junction_id in visited:
            continue
        visited.add(junction_id)
        if junction_id == target:
            break
        for segment_id in network.segments_at_junction(junction_id):
            segment = network.segment(segment_id)
            neighbor = segment.other_end(junction_id)
            candidate = dist + segment.length
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                parents[neighbor] = (junction_id, segment_id)
                heapq.heappush(heap, (candidate, neighbor))
    return distances, parents


def shortest_junction_path(network: RoadNetwork, source: int, target: int) -> Route:
    """The shortest route between two junctions.

    Raises :class:`RoadNetworkError` when no path exists (different connected
    components).
    """
    network.junction(target)
    if source == target:
        return Route((source,), (), 0.0)
    distances, parents = _dijkstra(network, source, target)
    if target not in distances:
        raise RoadNetworkError(f"no path from junction {source} to {target}")
    junctions: List[int] = [target]
    segments: List[int] = []
    current = target
    while current != source:
        previous, via = parents[current]
        junctions.append(previous)
        segments.append(via)
        current = previous
    junctions.reverse()
    segments.reverse()
    return Route(tuple(junctions), tuple(segments), distances[target])


def shortest_route(network: RoadNetwork, source: int, target: int) -> Route:
    """Alias of :func:`shortest_junction_path` (public API name)."""
    return shortest_junction_path(network, source, target)


def segment_hop_distances(
    network: RoadNetwork, origin_segment: int, max_hops: Optional[int] = None
) -> Dict[int, int]:
    """Hop distances from ``origin_segment`` in the segment-adjacency graph.

    The origin itself maps to 0, its linked segments to 1, and so on. When
    ``max_hops`` is given, segments farther away are omitted.

    RPLE pre-assignment uses these distances to order each segment's
    neighbouring list "by proximity" (Algorithm 1, line 5).
    """
    network.segment(origin_segment)
    distances = {origin_segment: 0}
    frontier: Sequence[int] = (origin_segment,)
    hops = 0
    while frontier:
        if max_hops is not None and hops >= max_hops:
            break
        hops += 1
        next_frontier: List[int] = []
        for segment_id in frontier:
            for neighbor in network.neighbors(segment_id):
                if neighbor not in distances:
                    distances[neighbor] = hops
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances
