"""The mapping-store baseline: reversibility by remembering everything.

The obvious alternative to ReverseCloak's keyed reversal is to make the
trusted anonymizer *store* the per-level segment lists of every request and
answer de-anonymization queries by lookup. This works, but:

* the store grows linearly with the number of cloaking requests (ReverseCloak
  stores nothing per request — keys alone suffice),
* every de-anonymization requires an online round trip to the trusted store
  (ReverseCloak reverses offline), and
* the store is a single point of compromise holding *all* users' exact
  locations (ReverseCloak's anonymizer can forget the raw locations as soon
  as the envelope is built).

The class exists to quantify those costs in experiments E5/E7; its interface
mirrors the reversible engine closely enough for side-by-side benchmarks.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import CloakingError, DeanonymizationError
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from ..core.profile import PrivacyProfile
from .random_expansion import RandomExpansionCloaking, RandomExpansionResult

__all__ = ["StoredCloak", "MappingStoreCloaking"]


@dataclass(frozen=True)
class StoredCloak:
    """The public part of a mapping-store cloak: an opaque receipt plus the
    outermost region (what the LBS provider sees)."""

    receipt: str
    region: Tuple[int, ...]
    top_level: int


class MappingStoreCloaking:
    """Reversible cloaking via server-side mapping storage.

    Cloaking delegates to :class:`RandomExpansionCloaking` (the expansion
    itself needs no structure when the mapping is stored); reversal is a
    dictionary lookup against the retained per-request state.
    """

    name = "mapping-store"

    def __init__(self, network: RoadNetwork, seed: int = 0) -> None:
        self._network = network
        self._cloaker = RandomExpansionCloaking(network, seed=seed)
        self._store: Dict[str, RandomExpansionResult] = {}

    def anonymize(
        self,
        user_segment: int,
        snapshot: PopulationSnapshot,
        profile: PrivacyProfile,
    ) -> StoredCloak:
        """Cloak and retain the full level mapping server-side."""
        result = self._cloaker.anonymize(user_segment, snapshot, profile)
        receipt = secrets.token_hex(16)
        self._store[receipt] = result
        return StoredCloak(
            receipt=receipt,
            region=result.region_at(result.top_level),
            top_level=result.top_level,
        )

    def deanonymize(self, receipt: str, target_level: int) -> Tuple[int, ...]:
        """Look up the region of ``target_level`` for a stored cloak."""
        try:
            result = self._store[receipt]
        except KeyError:
            raise DeanonymizationError(f"unknown receipt: {receipt}") from None
        return result.region_at(target_level)

    # ------------------------------------------------------------------
    # cost accounting (experiment E7)
    # ------------------------------------------------------------------
    @property
    def stored_requests(self) -> int:
        return len(self._store)

    def storage_entries(self) -> int:
        """Total segment ids retained across all stored requests."""
        return sum(
            len(result.regions[result.top_level]) + sum(
                len(added) for added in result.added.values()
            )
            for result in self._store.values()
        )

    def storage_bytes(self) -> int:
        """Approximate retained bytes (8 per stored segment id)."""
        return 8 * self.storage_entries()

    def forget(self, receipt: str) -> None:
        """Drop one stored mapping (e.g. data-retention policy)."""
        self._store.pop(receipt, None)
