"""Baselines: the non-reversible and trivially-reversible comparators."""

from .mapping_store import MappingStoreCloaking, StoredCloak
from .random_expansion import RandomExpansionCloaking, RandomExpansionResult

__all__ = [
    "RandomExpansionCloaking",
    "RandomExpansionResult",
    "MappingStoreCloaking",
    "StoredCloak",
]
