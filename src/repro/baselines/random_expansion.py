"""Non-reversible random expansion cloaking (the conventional baseline).

The paper positions ReverseCloak against "conventional techniques [1], [2],
[4], [7] that focus on single-level unidirectional location anonymization".
This module implements that class of algorithm in its road-network form
(Wang et al. [9]-style segment cloaking): grow the region by uniformly random
frontier segments until ``(delta_k, delta_l)`` holds.

The expansion is driven by a plain seeded RNG — there is no key, no
transition structure, and therefore *no way to reverse* the region: a
requester either sees the full cloak or (with out-of-band trust) the raw
location. The baseline supports multi-level *output* (nested regions, one per
level) but reversal requires shipping every inner region explicitly, which
is exactly the multi-level access-control gap ReverseCloak fills.

Used by experiments E5 (runtime), E9 (region quality) and E10 (no selective
de-anonymization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import CloakingError, FrontierExhaustedError, ToleranceExceededError
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from ..core.profile import PrivacyProfile

__all__ = ["RandomExpansionResult", "RandomExpansionCloaking"]


@dataclass(frozen=True)
class RandomExpansionResult:
    """The baseline's multi-level output.

    Attributes:
        regions: Region per level, ``{level: sorted segment ids}``; level 0
            is the user's segment.
        added: Segments each level added, in addition order.
    """

    regions: Dict[int, Tuple[int, ...]]
    added: Dict[int, Tuple[int, ...]]

    @property
    def top_level(self) -> int:
        return max(self.regions)

    def region_at(self, level: int) -> Tuple[int, ...]:
        try:
            return self.regions[level]
        except KeyError:
            raise CloakingError(f"no region for level {level}") from None


class RandomExpansionCloaking:
    """Single-direction random segment-expansion cloaking.

    Args:
        network: The road map.
        seed: RNG seed (results are reproducible but *not* reversible — the
            seed is thrown away after cloaking in a real deployment, and
            publishing it would reveal the expansion order to everyone
            rather than level-by-level).
    """

    name = "random-expansion"

    def __init__(self, network: RoadNetwork, seed: int = 0) -> None:
        self._network = network
        self._rng = np.random.default_rng(seed)

    def anonymize(
        self,
        user_segment: int,
        snapshot: PopulationSnapshot,
        profile: PrivacyProfile,
    ) -> RandomExpansionResult:
        """Cloak ``user_segment`` under every profile level.

        Raises the same exhaustion errors as the reversible engine so
        success-rate experiments can compare like for like.
        """
        self._network.segment(user_segment)
        region: Set[int] = {user_segment}
        regions: Dict[int, Tuple[int, ...]] = {0: (user_segment,)}
        added: Dict[int, Tuple[int, ...]] = {}
        step_cap = self._network.segment_count + 1
        for level in range(1, profile.level_count + 1):
            requirement = profile.requirement(level)
            level_added: List[int] = []
            while not requirement.satisfied_by(self._network, region, snapshot):
                if len(level_added) >= step_cap:
                    raise CloakingError(
                        f"level {level} exceeded {step_cap} transitions"
                    )
                eligible = [
                    candidate
                    for candidate in self._network.frontier(region)
                    if requirement.tolerance.fits(
                        self._network, region | {candidate}
                    )
                ]
                if not eligible:
                    if self._network.frontier(region):
                        raise ToleranceExceededError(
                            level, "no frontier segment fits the tolerance"
                        )
                    raise FrontierExhaustedError(level)
                choice = eligible[int(self._rng.integers(0, len(eligible)))]
                region.add(choice)
                level_added.append(choice)
            regions[level] = tuple(sorted(region))
            added[level] = tuple(level_added)
        return RandomExpansionResult(regions=regions, added=added)
