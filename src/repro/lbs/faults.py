"""Deterministic fault injection and cooperative deadlines for serving.

A fault-tolerant serving stack is only trustworthy if every recovery path
is *exercised*, not just written. This module makes the failure modes of
the execution backends — a worker process dying mid-chunk, a peel running
past its deadline, a reply never arriving — reproducible from ordinary
pytest, with no timing races and no randomness:

* :class:`Deadline` — the cooperative per-request deadline object.
  Serving code calls :meth:`Deadline.check` between cloak/peel steps;
  fault injection can *inject* artificial elapsed time, so a "peel that
  runs long" is a deterministic unit test instead of a real sleep.
* :class:`FaultAction` / :class:`FaultPlan` — a declarative, JSON-round-
  trippable script of failures keyed on deterministic counters (worker
  index, worker incarnation, per-incarnation chunk ordinal, item ordinal)
  rather than wall-clock time.
* :class:`FaultInjector` — the per-worker(-incarnation) runtime that the
  backends consult at well-defined points: chunk receipt, item start,
  reply send, shutdown.

Plans reach worker processes two ways: explicitly, via the backend's
``fault_plan`` constructor argument (shipped to workers as JSON, so it
works under the ``spawn`` start method), or ambiently through the
:data:`FAULT_PLAN_ENV` environment variable (``REPRO_FAULT_PLAN``) holding
either inline JSON or ``@/path/to/plan.json`` — the hook CI's
fault-injection job and the faulted benchmark section use.

Fault kinds
-----------

``kill_worker``
    The worker calls ``os._exit(KILLED_EXIT_CODE)`` — at chunk receipt
    when ``item`` is unset, or mid-chunk just before serving item
    ``item`` (a kill mid-cloak / mid-peel). Ignored outside process-pool
    workers: an inline backend shares the test's process.
``delay``
    Inject ``delay_ms`` of artificial elapsed time into the matched
    item's :class:`Deadline` (no real sleeping — tests stay fast), used
    to push a cloak or peel deterministically past its deadline.
``drop_reply``
    The worker serves the chunk but never sends the reply — the parent's
    supervised dispatch must detect the wedged worker via its wait
    timeout or batch deadline.
``ignore_shutdown`` / ``ignore_sigterm``
    The worker ignores the shutdown sentinel / SIGTERM, forcing the
    parent's teardown escalation (join → terminate → kill) to go all the
    way; used by the zombie-reaping regression tests.

Network fault kinds
-------------------

Where the kinds above script a *worker* failing, these script the *wire*
failing — everything a hostile or dying peer can do to the socket
front-end (:mod:`repro.lbs.frontend`). They are applied client-side by a
fault-wrapping transport (:class:`FaultyConnection`, or a
:class:`~repro.lbs.frontend.ResilientClient` carrying a
:class:`NetworkFaultInjector`), keyed on deterministic **connection** and
**frame** ordinals instead of worker/chunk/item:

``stall_bytes``
    Send only the first ``count`` bytes of the frame, then fall silent
    with the connection held open — the slow-loris shape the server's
    ``idle_timeout_s`` eviction must catch.
``truncate_frame``
    Send a ``count``-byte prefix of the frame, then close the connection
    — a mid-frame disconnect, visible server-side as a rejected frame.
``corrupt_frame``
    Keep the length header, XOR every payload byte with ``0x5A`` — a
    well-framed garbage payload the server must answer with a structured
    ``malformed_document`` outcome (and count as a strike).
``drop_connection``
    Abort the connection just before this frame is sent — the reconnect
    trigger a resilient client absorbs.
``dribble_write``
    Send the frame ``count`` bytes at a time (default 1), draining
    between sends — pathological chunking that must change *nothing*
    observable: byte-identical outcome, no counters moved.

Matching semantics: ``worker``/``chunk``/``item``/``op``/``incarnation``
are filters; a ``None`` filter matches anything (``incarnation`` defaults
to ``0`` — first incarnation only — so a respawned worker does *not*
re-trigger the fault that killed its predecessor unless the plan says
``incarnation: null``). Network kinds filter on ``connection``/``frame``
the same way. Each action fires at most once per injector instance, i.e.
once per worker incarnation (once per plan for a shared
:class:`NetworkFaultInjector`).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import DeadlineExceededError, WireFormatError
from .framing import DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_SIZE, FrameDecoder, encode_frame

__all__ = [
    "FAULT_PLAN_ENV",
    "KILLED_EXIT_CODE",
    "Deadline",
    "FaultAction",
    "FaultPlan",
    "FaultInjector",
    "NETWORK_FAULT_KINDS",
    "NetworkFaultInjector",
    "FaultyConnection",
]

#: The environment variable the backends read a default fault plan from:
#: inline JSON, or ``@/path/to/plan.json``. Inherited by worker processes
#: under both ``fork`` and ``spawn``.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The exit code an injected ``kill_worker`` fault dies with — a sentinel
#: the supervision tests can distinguish from organic crashes.
KILLED_EXIT_CODE = 23

#: The wire-level kinds, consulted by :class:`NetworkFaultInjector` on
#: deterministic (connection, frame) ordinals; inert in worker injectors.
NETWORK_FAULT_KINDS = (
    "stall_bytes",
    "truncate_frame",
    "corrupt_frame",
    "drop_connection",
    "dribble_write",
)

_FAULT_KINDS = (
    "kill_worker",
    "delay",
    "drop_reply",
    "ignore_shutdown",
    "ignore_sigterm",
) + NETWORK_FAULT_KINDS

_OPS = ("cloak", "peel")


class Deadline:
    """A cooperative deadline over a monotonic clock.

    ``budget_ms=None`` builds an inert deadline that never expires (the
    common no-deadline case costs one attribute check per use). Fault
    injection advances the deadline artificially through
    :meth:`inject_delay_ms`, so deadline-expiry paths are deterministic.
    """

    __slots__ = ("_budget_ms", "_expires_at", "_injected_s")

    def __init__(self, budget_ms: Optional[float] = None) -> None:
        if budget_ms is not None and budget_ms < 0:
            raise WireFormatError(
                f"deadline_ms must be >= 0, got {budget_ms}"
            )
        self._budget_ms = budget_ms
        self._expires_at = (
            None if budget_ms is None else time.monotonic() + budget_ms / 1000.0
        )
        self._injected_s = 0.0

    @classmethod
    def start(cls, budget_ms: Optional[float]) -> "Deadline":
        """A deadline starting now (inert when ``budget_ms`` is None)."""
        return cls(budget_ms)

    @property
    def active(self) -> bool:
        """Whether this deadline can ever expire."""
        return self._expires_at is not None

    @property
    def budget_ms(self) -> Optional[float]:
        return self._budget_ms

    def inject_delay_ms(self, ms: float) -> None:
        """Advance the deadline's notion of elapsed time by ``ms`` without
        sleeping (the ``delay`` fault's mechanism)."""
        self._injected_s += ms / 1000.0

    def remaining_s(self) -> Optional[float]:
        """Seconds until expiry (may be negative); ``None`` when inert."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic() - self._injected_s

    @property
    def expired(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0

    def check(self) -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` on expiry —
        the callable serving code threads between cloak/peel steps."""
        if self.expired:
            budget = self._budget_ms
            raise DeadlineExceededError(
                f"deadline of {budget:g} ms exceeded (cooperative check)"
            )


@dataclass(frozen=True)
class FaultAction:
    """One scripted failure. See the module docstring for kind semantics.

    Attributes:
        kind: One of ``kill_worker`` / ``delay`` / ``drop_reply`` /
            ``ignore_shutdown`` / ``ignore_sigterm``.
        worker: Worker-slot filter (``None`` = any; inline backends count
            as worker 0).
        chunk: Per-incarnation chunk-ordinal filter (``None`` = any; an
            inline backend's chunk ordinal is its batch ordinal).
        item: Item-ordinal-within-chunk filter. For ``kill_worker`` an
            item makes the kill fire mid-chunk; for ``delay`` it selects
            the item whose deadline is advanced.
        op: ``"cloak"`` / ``"peel"`` filter (``None`` = both).
        delay_ms: Injected elapsed milliseconds (``delay`` only).
        incarnation: Worker-incarnation filter. Defaults to ``0`` so a
            fault does not re-fire after the supervised respawn; ``None``
            re-fires on every incarnation (the crash-loop scenarios).
        connection: Connection-ordinal filter of the network kinds
            (``None`` = any connection).
        frame: Frame-ordinal-within-connection filter of the network
            kinds (``None`` = any frame).
        count: Byte granularity of the network kinds — prefix length for
            ``stall_bytes``/``truncate_frame``, chunk size for
            ``dribble_write`` (each has a deterministic default).
    """

    kind: str
    worker: Optional[int] = None
    chunk: Optional[int] = None
    item: Optional[int] = None
    op: Optional[str] = None
    delay_ms: float = 0.0
    incarnation: Optional[int] = 0
    connection: Optional[int] = None
    frame: Optional[int] = None
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise WireFormatError(
                f"unknown fault kind {self.kind!r} (know {_FAULT_KINDS})"
            )
        if self.op is not None and self.op not in _OPS:
            raise WireFormatError(
                f"fault op must be one of {_OPS}, got {self.op!r}"
            )
        if self.kind == "delay" and self.delay_ms <= 0:
            raise WireFormatError(
                f"delay fault needs a positive delay_ms, got {self.delay_ms}"
            )
        if self.count is not None and self.count < 0:
            raise WireFormatError(
                f"fault count must be >= 0, got {self.count}"
            )

    def to_dict(self) -> dict:
        document: dict = {"kind": self.kind}
        for field in (
            "worker",
            "chunk",
            "item",
            "op",
            "incarnation",
            "connection",
            "frame",
            "count",
        ):
            value = getattr(self, field)
            if field == "incarnation":
                document[field] = value  # None is meaningful: any incarnation
            elif value is not None:
                document[field] = value
        if self.kind == "delay":
            document["delay_ms"] = self.delay_ms
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "FaultAction":
        if not isinstance(document, dict) or "kind" not in document:
            raise WireFormatError(
                "a fault action must be a dict with a 'kind'"
            )

        def opt_int(name: str) -> Optional[int]:
            value = document.get(name)
            return None if value is None else int(value)

        op = document.get("op")
        return cls(
            kind=str(document["kind"]),
            worker=opt_int("worker"),
            chunk=opt_int("chunk"),
            item=opt_int("item"),
            op=None if op is None else str(op),
            delay_ms=float(document.get("delay_ms", 0.0)),
            incarnation=(
                opt_int("incarnation") if "incarnation" in document else 0
            ),
            connection=opt_int("connection"),
            frame=opt_int("frame"),
            count=opt_int("count"),
        )

    def matches_wire(self, *, connection: int, frame: int) -> bool:
        """Whether this (network-kind) action fires at the given
        connection/frame ordinals — ``None`` filters match anything."""
        if self.connection is not None and self.connection != connection:
            return False
        if self.frame is not None and self.frame != frame:
            return False
        return True

    def matches(
        self,
        *,
        worker: int,
        incarnation: int,
        op: Optional[str] = None,
        chunk: Optional[int] = None,
        item: Optional[int] = None,
    ) -> bool:
        if self.worker is not None and self.worker != worker:
            return False
        if self.incarnation is not None and self.incarnation != incarnation:
            return False
        if self.op is not None and op is not None and self.op != op:
            return False
        if self.chunk is not None and self.chunk != chunk:
            return False
        # Item filters only match at item granularity and vice versa, so a
        # chunk-level consult never consumes an item-targeted action.
        if (self.item is None) != (item is None):
            return False
        if self.item is not None and self.item != item:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable script of :class:`FaultAction`\\ s."""

    actions: Tuple[FaultAction, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.actions)

    def to_dict(self) -> dict:
        return {"faults": [action.to_dict() for action in self.actions]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, document: dict) -> "FaultPlan":
        if not isinstance(document, dict) or not isinstance(
            document.get("faults"), list
        ):
            raise WireFormatError(
                "a fault plan must be a dict with a 'faults' list"
            )
        return cls(
            actions=tuple(
                FaultAction.from_dict(item) for item in document["faults"]
            )
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        try:
            document = json.loads(payload)
        except ValueError as exc:
            raise WireFormatError(
                f"fault plan is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(document)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The ambient plan from :data:`FAULT_PLAN_ENV`, or ``None``.

        The value is inline JSON, or ``@path`` naming a JSON file. A
        malformed value raises — silently ignoring a typo'd fault plan
        would make a fault-injection CI job quietly test nothing.
        """
        raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not raw:
            return None
        if raw.startswith("@"):
            with open(raw[1:], "r", encoding="utf-8") as handle:
                raw = handle.read()
        return cls.from_json(raw)


class FaultInjector:
    """The runtime a serving worker consults against one plan.

    One injector exists per worker *incarnation* (and per inline backend,
    which presents as worker 0, incarnation 0): its chunk ordinals count
    messages received by this incarnation, and every action fires at most
    once through it. Kill and drop faults are inert unless
    ``process_worker`` — an inline backend shares the caller's process,
    and exiting it would take the test (or the service) down with it.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan],
        worker_index: int = 0,
        incarnation: int = 0,
        process_worker: bool = False,
    ) -> None:
        self._actions = list(plan.actions) if plan is not None else []
        self._worker = worker_index
        self._incarnation = incarnation
        self._process_worker = process_worker
        self._spent: set = set()

    def __bool__(self) -> bool:
        return bool(self._actions)

    def _take(self, kind: str, **where) -> Optional[FaultAction]:
        """The first unspent matching action of ``kind``, marked spent."""
        for index, action in enumerate(self._actions):
            if index in self._spent or action.kind != kind:
                continue
            if action.matches(
                worker=self._worker, incarnation=self._incarnation, **where
            ):
                self._spent.add(index)
                return action
        return None

    # ------------------------------------------------------------------
    # consult points
    # ------------------------------------------------------------------
    def on_chunk(self, chunk: int, op: str) -> None:
        """Chunk receipt: chunk-level kills fire here (before any item)."""
        if self._take("kill_worker", op=op, chunk=chunk) is not None:
            self._die()

    def on_item(
        self, chunk: int, item: int, op: str, deadline: Deadline
    ) -> None:
        """Item start: mid-chunk kills and deadline delays fire here."""
        if (
            self._take("kill_worker", op=op, chunk=chunk, item=item)
            is not None
        ):
            self._die()
        action = self._take("delay", op=op, chunk=chunk, item=item)
        if action is not None:
            deadline.inject_delay_ms(action.delay_ms)

    def drop_reply(self, chunk: int, op: str) -> bool:
        """Whether the reply of ``chunk`` should be silently dropped."""
        if not self._process_worker:
            return False
        return self._take("drop_reply", op=op, chunk=chunk) is not None

    def ignore_shutdown(self) -> bool:
        """Whether the worker should ignore the shutdown sentinel."""
        if not self._process_worker:
            return False
        return self._take("ignore_shutdown") is not None

    def install_signal_faults(self) -> None:
        """Apply process-level signal faults (worker start-up)."""
        if not self._process_worker:
            return
        if self._take("ignore_sigterm") is not None:
            import signal

            signal.signal(signal.SIGTERM, signal.SIG_IGN)

    def _die(self) -> None:
        if self._process_worker:
            # A hard exit, not an exception: the point is to simulate a
            # crash the parent can only observe as a dead pipe.
            os._exit(KILLED_EXIT_CODE)


class NetworkFaultInjector:
    """The client-side runtime of the network fault kinds.

    One injector per plan, *shared* by every fault-wrapped connection the
    scenario opens (unlike worker injectors, which are per-incarnation):
    the fire-once guarantee then holds across the whole scenario, so "one
    disconnect per 100 connections" means exactly one. Consulted once per
    outbound frame with the connection's ordinal and the frame's ordinal
    within it; non-network kinds in the plan are ignored, so one plan can
    script worker *and* wire failures.
    """

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self._actions = [
            action
            for action in (plan.actions if plan is not None else ())
            if action.kind in NETWORK_FAULT_KINDS
        ]
        self._spent: set = set()

    def __bool__(self) -> bool:
        return bool(self._actions)

    def take(self, connection: int, frame: int) -> Optional[FaultAction]:
        """The first unspent action matching these ordinals, marked spent
        (``None`` when this frame sends clean)."""
        for index, action in enumerate(self._actions):
            if index in self._spent:
                continue
            if action.matches_wire(connection=connection, frame=frame):
                self._spent.add(index)
                return action
        return None


class FaultyConnection:
    """A deliberately misbehaving front-end connection (tests + bench).

    Wraps one raw client socket to :class:`~repro.lbs.frontend
    .FrontendServer` and consults a :class:`NetworkFaultInjector` before
    every outbound frame, applying whichever network fault kind matches
    (see the module docstring for the kind semantics). Frames with no
    matching action are sent verbatim — a ``FaultyConnection`` under an
    empty plan is byte-for-byte an ordinary client, which is what lets
    the fault suite assert unaffected requests stay byte-identical.

    After ``stall_bytes`` the connection deliberately stays open and
    silent (:attr:`stalled`); after ``truncate_frame``/``drop_connection``
    it is dead (:attr:`dead`) and further sends report ``"dead"`` without
    raising, so a scripted scenario never has to guard its own tail.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        injector: Optional[NetworkFaultInjector] = None,
        connection_index: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._injector = injector
        self._connection = connection_index
        self._max_frame_bytes = max_frame_bytes
        self._decoder = FrameDecoder(max_frame_bytes)
        self._replies: deque = deque()
        self._frames_sent = 0
        self.stalled = False
        self.dead = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        injector: Optional[NetworkFaultInjector] = None,
        connection_index: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        recv_buffer_bytes: Optional[int] = None,
    ) -> "FaultyConnection":
        """Open a connection; ``recv_buffer_bytes`` shrinks ``SO_RCVBUF``
        *before* connecting, the deterministic way to play a slow reader
        (the kernel stops acking for us once the small buffer fills)."""
        sock = None
        if recv_buffer_bytes is not None:
            import socket as socket_module

            sock = socket_module.socket()
            sock.setsockopt(
                socket_module.SOL_SOCKET,
                socket_module.SO_RCVBUF,
                recv_buffer_bytes,
            )
            sock.setblocking(False)
            await asyncio.get_running_loop().sock_connect(sock, (host, port))
            reader, writer = await asyncio.open_connection(sock=sock)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, injector, connection_index, max_frame_bytes)

    @property
    def frames_sent(self) -> int:
        """Outbound frame ordinal counter (faulted sends count too)."""
        return self._frames_sent

    async def send_frame(self, payload) -> str:
        """Send one frame payload through the fault filter.

        Returns what actually happened on the wire: ``"sent"`` (clean or
        dribbled), ``"stalled"``, ``"truncated"``, ``"corrupted"``,
        ``"dropped"``, or ``"dead"`` (the connection already died to an
        earlier fault — nothing was sent).
        """
        if isinstance(payload, dict):
            payload = json.dumps(payload, separators=(",", ":"))
        frame = encode_frame(payload, self._max_frame_bytes)
        ordinal = self._frames_sent
        self._frames_sent += 1
        if self.dead or self.stalled:
            return "dead" if self.dead else "stalled"
        action = (
            self._injector.take(self._connection, ordinal)
            if self._injector is not None
            else None
        )
        if action is None:
            self._writer.write(frame)
            await self._writer.drain()
            return "sent"
        if action.kind == "drop_connection":
            self.dead = True
            self._writer.transport.abort()
            return "dropped"
        if action.kind == "stall_bytes":
            count = action.count if action.count is not None else len(frame) // 2
            self._writer.write(frame[:count])
            await self._writer.drain()
            self.stalled = True
            return "stalled"
        if action.kind == "truncate_frame":
            count = action.count if action.count is not None else len(frame) - 1
            self._writer.write(frame[:count])
            await self._writer.drain()
            self.dead = True
            self._writer.close()
            return "truncated"
        if action.kind == "corrupt_frame":
            header = frame[:FRAME_HEADER_SIZE]
            body = bytes(byte ^ 0x5A for byte in frame[FRAME_HEADER_SIZE:])
            self._writer.write(header + body)
            await self._writer.drain()
            return "corrupted"
        # dribble_write: pathological chunking, still a valid frame.
        step = action.count or 1
        for start in range(0, len(frame), step):
            self._writer.write(frame[start : start + step])
            await self._writer.drain()
        return "sent"

    async def read_reply(self, timeout_s: float = 30.0) -> Optional[bytes]:
        """The next reply frame payload, or ``None`` at EOF/reset.

        Always bounded by ``timeout_s`` (raising ``asyncio.TimeoutError``
        past it) — the fault suite's "never hangs" checks lean on this.
        """
        while not self._replies:
            try:
                data = await asyncio.wait_for(
                    self._reader.read(1 << 16), timeout_s
                )
            except asyncio.TimeoutError:
                raise
            except (ConnectionError, OSError):
                return None
            if not data:
                return None
            self._replies.extend(self._decoder.feed(data))
        return self._replies.popleft()

    async def close(self) -> None:
        self.dead = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
