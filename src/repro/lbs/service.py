"""The anonymization service facade.

Paper, Section II-B: *"a trusted anonymizer obtains the raw location
information from the mobile clients with the user-defined profile"*, and
Section IV's deployment adds the symmetric server-side capability — the
anonymizer also answers de-anonymization requests from key-holding
requesters.

:class:`AnonymizerService` is that component, redesigned around two seams:

* **the wire protocol** (:mod:`repro.lbs.wire`) — every entry point has a
  transport-neutral twin: :meth:`handle` accepts a raw request document
  and returns an outcome document, so an HTTP/gRPC/queue front-end needs
  zero knowledge of domain objects;
* **the execution backend** (:mod:`repro.lbs.backends`) — where batch
  cloaking work runs (inline, thread pool, sharded process pool) is a
  constructor choice, not a code path.

The service retains *no* per-request state — the defining advantage over
the mapping-store baseline — apart from lock-guarded bookkeeping counters
used by experiments. It is thread-safe: batches are pinned to the snapshot
installed when they start, and a concurrent :meth:`update_snapshot` never
tears a batch.

:class:`~repro.lbs.server.TrustedAnonymizer` remains as a deprecated thin
shim over this class.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import DeanonymizationResult, ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import (
    CloakingError,
    MobilityError,
    OverloadedError,
    ProfileError,
    ReverseCloakError,
    WireFormatError,
)
from ..keys.keys import KeyChain
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from .backends import (
    BackendSpec,
    BatchOutcome,
    ExecutionBackend,
    InlineBackend,
    ReversalEngineCache,
    ReversalOutcome,
    ThreadPoolBackend,
    serve_request,
)
from .faults import Deadline
from .wire import (
    CLOAK_REQUEST_FORMAT,
    DEANONYMIZE_BATCH_FORMAT,
    DEANONYMIZE_REQUEST_FORMAT,
    PING_FORMAT,
    PING_REQUEST_FORMAT,
    STATS_FORMAT,
    STATS_REQUEST_FORMAT,
    WIRE_VERSION,
    BatchOutcomeDoc,
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
    error_class_for_code,
)

__all__ = ["AnonymizerService"]


class AnonymizerService:
    """The anonymization service of the ReverseCloak deployment.

    Args:
        network: The shared road map.
        algorithm: Cloaking algorithm (defaults to RGE inside the engine).
        include_hints: Produce sealed-hint envelopes (decision D1).
        backend: The :class:`~repro.lbs.backends.ExecutionBackend` batches
            run on; defaults to :class:`~repro.lbs.backends.InlineBackend`.
            The service binds (and, on :meth:`close`, releases) it.
        max_inflight: Optional admission-control budget: the maximum
            number of requests (batch items count individually) allowed in
            flight at once across every serving entry point. Work beyond
            the budget is *shed* — rejected up front with
            :class:`~repro.errors.OverloadedError` (the structured
            ``overloaded`` outcome on the wire path) before any engine
            work runs, instead of queuing unboundedly. A batch is admitted
            all-or-nothing. ``None`` (default) admits everything.

    Example:
        >>> from repro import grid_network, PopulationSnapshot
        >>> from repro import KeyChain, PrivacyProfile
        >>> network = grid_network(6, 6)
        >>> service = AnonymizerService(network)
        >>> service.update_snapshot(PopulationSnapshot.from_counts(
        ...     {sid: 2 for sid in network.segment_ids()}))
        >>> profile = PrivacyProfile.uniform(levels=2, base_k=4, k_step=4,
        ...                                  base_l=3, l_step=2,
        ...                                  max_segments=30)
        >>> chain = KeyChain.generate(profile.level_count)
        >>> envelope = service.cloak_segment(30, profile, chain)
        >>> service.deanonymize(envelope, chain, target_level=0).region_at(0)
        (30,)
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Optional[CloakingAlgorithm] = None,
        include_hints: bool = True,
        backend: Optional[ExecutionBackend] = None,
        max_inflight: Optional[int] = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ProfileError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._network = network
        self._engine = ReverseCloakEngine(network, algorithm)
        self._include_hints = include_hints
        self._spec = BackendSpec(
            network=network,
            algorithm=self._engine.algorithm,
            include_hints=include_hints,
        )
        self._backend = backend if backend is not None else InlineBackend()
        self._backend.bind(self._spec)
        self._snapshot: Optional[PopulationSnapshot] = None
        # Counter lock: cloak()/cloak_batch() run concurrently and bare
        # ``+= 1`` would drop increments under that interleaving.
        self._counter_lock = threading.Lock()
        self._requests_served = 0
        self._failures = 0
        self._reversals_served = 0
        self._reversal_failures = 0
        # Admission control: a bounded in-flight budget shared by every
        # serving entry point. The counter is all the state load-shedding
        # needs — there is no queue to bound because the service never
        # queues; work beyond the budget is rejected at the door.
        self._max_inflight = max_inflight
        self._inflight = 0
        self._requests_shed = 0
        # Legacy per-call ``max_workers`` widths get a cached thread
        # backend each (the shim's cloak_batch signature), lazily built.
        self._width_lock = threading.Lock()
        self._width_backends: Dict[int, ExecutionBackend] = {}
        # Reversal engines per algorithm spec seen in envelopes — a
        # *bounded* LRU: the spec fields are attacker-controlled input on
        # the ``handle`` wire endpoint, so churning parameters must evict,
        # not accumulate. The hot path (envelopes matching this service's
        # own algorithm) is answered by the default engine without
        # touching the cache.
        self._reversal_engines = ReversalEngineCache(
            network, default=self._engine
        )

    # ------------------------------------------------------------------
    # configuration and bookkeeping
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def engine(self) -> ReverseCloakEngine:
        return self._engine

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def include_hints(self) -> bool:
        return self._include_hints

    @property
    def requests_served(self) -> int:
        with self._counter_lock:
            return self._requests_served

    @property
    def failures(self) -> int:
        """Total serving failures, cloaking *and* reversal."""
        with self._counter_lock:
            return self._failures

    @property
    def reversals_served(self) -> int:
        with self._counter_lock:
            return self._reversals_served

    @property
    def reversal_failures(self) -> int:
        """The reversal-side share of :attr:`failures`."""
        with self._counter_lock:
            return self._reversal_failures

    @property
    def max_inflight(self) -> Optional[int]:
        return self._max_inflight

    @property
    def inflight(self) -> int:
        """Requests currently being served (batch items counted singly)."""
        with self._counter_lock:
            return self._inflight

    @property
    def requests_shed(self) -> int:
        """Requests rejected by admission control (never executed; not
        part of :attr:`failures` — shedding is backpressure, not a serving
        failure)."""
        with self._counter_lock:
            return self._requests_shed

    def stats(self) -> dict:
        """One consistent reading of every serving counter.

        The payload of the ``repro.stats_request`` wire format (see
        :meth:`handle`): the service-level counters under one lock
        acquisition, plus the bound backend's supervision counters
        (``worker_restarts``/``inline_fallbacks``; zero for backends
        without supervision). Transport front-ends merge their own
        counters into the same flat mapping.
        """
        with self._counter_lock:
            counters = {
                "requests_served": self._requests_served,
                "failures": self._failures,
                "reversals_served": self._reversals_served,
                "reversal_failures": self._reversal_failures,
                "requests_shed": self._requests_shed,
                "inflight": self._inflight,
            }
        counters["worker_restarts"] = int(
            getattr(self._backend, "worker_restarts", 0)
        )
        counters["inline_fallbacks"] = int(
            getattr(self._backend, "inline_fallbacks", 0)
        )
        return counters

    @contextmanager
    def _admit(self, units: int):
        """Hold ``units`` of the in-flight budget for the enclosed work.

        Raises :class:`~repro.errors.OverloadedError` — and counts the
        shed — when granting ``units`` would push the in-flight total past
        ``max_inflight``. Admission is all-or-nothing per call, so one
        oversized batch cannot starve by partial execution.
        """
        limit = self._max_inflight
        if limit is None:
            yield
            return
        with self._counter_lock:
            if self._inflight + units > limit:
                self._requests_shed += units
                inflight = self._inflight
            else:
                self._inflight += units
                inflight = None
        if inflight is not None:
            raise OverloadedError(
                f"admitting {units} request(s) would exceed the in-flight "
                f"budget ({inflight}/{limit} in flight); shed — retry later"
            )
        try:
            yield
        finally:
            with self._counter_lock:
                self._inflight -= units

    def update_snapshot(self, snapshot: PopulationSnapshot) -> None:
        """Install the current population snapshot (called per tick by the
        deployment; the anonymizer never looks at stale positions).

        Snapshots are immutable; in-flight batches keep serving against the
        snapshot they captured at submission.
        """
        self._snapshot = snapshot

    def close(self) -> None:
        """Release the backend's worker resources (idempotent)."""
        self._backend.close()
        with self._width_lock:
            for backend in self._width_backends.values():
                backend.close()
            self._width_backends.clear()

    def __enter__(self) -> "AnonymizerService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # cloaking
    # ------------------------------------------------------------------
    def cloak(self, request: CloakRequest) -> CloakEnvelope:
        """Serve one anonymization request.

        Looks up the user's current segment in the snapshot, expands per the
        profile, and returns the envelope.
        """
        snapshot = self._require_snapshot()
        with self._admit(1):
            try:
                envelope = serve_request(
                    self._engine, snapshot, request, self._include_hints
                )
            except CloakingError:
                self._count(failures=1)
                raise
        self._count(served=1)
        return envelope

    def cloak_segment(
        self,
        user_segment: int,
        profile: PrivacyProfile,
        chain: KeyChain,
        deadline_ms: Optional[float] = None,
    ) -> CloakEnvelope:
        """Cloak an explicit segment (bypasses the user lookup; used by
        experiments that sweep positions directly, and by the wire path
        for pre-resolved requests — which is why it honors an optional
        cooperative ``deadline_ms``)."""
        snapshot = self._require_snapshot()
        deadline = Deadline.start(deadline_ms)
        with self._admit(1):
            try:
                envelope = self._engine.anonymize(
                    user_segment,
                    snapshot,
                    profile,
                    chain,
                    include_hints=self._include_hints,
                    checkpoint=deadline.check if deadline.active else None,
                )
            except CloakingError:
                self._count(failures=1)
                raise
        self._count(served=1)
        return envelope

    def cloak_batch(
        self,
        requests: Sequence[CloakRequest],
        max_workers: Optional[int] = None,
    ) -> List[BatchOutcome]:
        """Serve a batch of requests on the execution backend.

        Every request is cloaked against the snapshot installed when the
        batch starts (one immutable capture for the whole batch). Outcomes
        come back in request order; a request failing with a
        :class:`~repro.errors.CloakingError` or
        :class:`~repro.errors.MobilityError` yields a
        :class:`BatchOutcome` carrying that error instead of aborting the
        batch — any other exception propagates.

        Args:
            requests: The batch, served in order.
            max_workers: ``None`` (the default) serves on the configured
                backend. An explicit width overrides the backend for this
                call with the legacy thread-pool semantics: ``1`` serves
                inline on the calling thread, ``N > 1`` uses a cached
                ``N``-wide thread pool.

        Raises:
            MobilityError: No snapshot is installed.
        """
        snapshot = self._require_snapshot()
        if not requests:
            return []
        backend = (
            self._backend if max_workers is None else self._width_backend(max_workers)
        )
        with self._admit(len(requests)):
            outcomes = backend.cloak_batch(snapshot, requests)
        served = sum(1 for outcome in outcomes if outcome.ok)
        cloak_failures = sum(
            1 for outcome in outcomes if isinstance(outcome.error, CloakingError)
        )
        self._count(served=served, failures=cloak_failures)
        return outcomes

    # ------------------------------------------------------------------
    # de-anonymization (server-side endpoint)
    # ------------------------------------------------------------------
    def deanonymize(
        self,
        envelope: CloakEnvelope,
        keys,
        target_level: int,
        mode: str = "auto",
    ) -> DeanonymizationResult:
        """Peel ``envelope`` down to ``target_level`` for a key-holding
        requester.

        Drives :meth:`ReverseCloakEngine.for_envelope`: the reversal engine
        is configured from the envelope's own algorithm metadata (cached per
        algorithm spec), so the service can reverse envelopes produced with
        any algorithm on this map — including by other anonymizer instances.
        """
        with self._admit(1):
            try:
                result = self._reversal_engine(envelope).deanonymize(
                    envelope, keys, target_level, mode=mode
                )
            except ReverseCloakError:
                # Failed reversals count too — `handle` converts them into
                # outcome documents, so without this the wire path would
                # leave no bookkeeping trace at all.
                self._count(reversal_failures=1)
                raise
        self._count(reversals=1)
        return result

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        """Serve a batch of reversal requests on the execution backend.

        The batch twin of :meth:`deanonymize`, and the path that finally
        puts the system's headline operation on the serving seam: outcomes
        come back in request order, per-item failures (wrong keys,
        collisions, foreign envelopes) ride in place as typed
        :class:`~repro.lbs.backends.ReversalOutcome` errors, and the
        results are byte-identical whichever backend the service was
        configured with — the process pool peels shards in parallel.
        """
        if not requests:
            return []
        with self._admit(len(requests)):
            outcomes = self._backend.deanonymize_batch(requests)
        served = sum(1 for outcome in outcomes if outcome.ok)
        self._count(reversals=served, reversal_failures=len(outcomes) - served)
        return outcomes

    def _reversal_engine(self, envelope: CloakEnvelope) -> ReverseCloakEngine:
        return self._reversal_engines.engine_for(envelope)

    # ------------------------------------------------------------------
    # transport-neutral entry point
    # ------------------------------------------------------------------
    def handle(self, document: dict) -> dict:
        """Serve one raw wire document and return an outcome document.

        Dispatches on the document's ``format`` tag
        (:data:`~repro.lbs.wire.CLOAK_REQUEST_FORMAT` /
        :data:`~repro.lbs.wire.DEANONYMIZE_REQUEST_FORMAT` /
        :data:`~repro.lbs.wire.DEANONYMIZE_BATCH_FORMAT` — batch requests
        answer with a :class:`~repro.lbs.wire.BatchOutcomeDoc`, per-item
        errors in place). Every
        :class:`~repro.errors.ReverseCloakError` — including malformed
        documents, shed load (``overloaded``) and expired deadlines
        (``deadline_exceeded``) — comes back as a structured error
        outcome; only genuinely unexpected exceptions propagate. This is
        the single method a transport adapter needs.

        A batch document's ``deadline_ms`` is applied as the default
        cooperative deadline of every item that does not carry its own.
        """
        try:
            kind = document.get("format") if isinstance(document, dict) else None
            if kind == CLOAK_REQUEST_FORMAT:
                request_doc = CloakRequestDoc.from_dict(document)
                if request_doc.user_segment is not None:
                    envelope = self.cloak_segment(
                        request_doc.user_segment,
                        request_doc.profile,
                        request_doc.chain,
                        deadline_ms=request_doc.deadline_ms,
                    )
                else:
                    envelope = self.cloak(request_doc.to_request())
                return OutcomeDoc.from_envelope(envelope).to_dict()
            if kind == DEANONYMIZE_REQUEST_FORMAT:
                reversal_doc = DeanonymizeRequestDoc.from_dict(document)
                result = self.deanonymize(
                    reversal_doc.envelope,
                    reversal_doc.key_map(),
                    reversal_doc.target_level,
                    mode=reversal_doc.mode,
                )
                return OutcomeDoc.from_result(result).to_dict()
            if kind == DEANONYMIZE_BATCH_FORMAT:
                batch_doc = DeanonymizeBatchDoc.from_dict(document)
                items = batch_doc.items
                if batch_doc.deadline_ms is not None:
                    # The batch-level deadline is a default, not a cap:
                    # items carrying their own deadline keep it.
                    items = tuple(
                        item
                        if item.deadline_ms is not None
                        else dataclasses.replace(
                            item, deadline_ms=batch_doc.deadline_ms
                        )
                        for item in items
                    )
                outcomes = self.deanonymize_batch(items)
                return BatchOutcomeDoc(
                    outcomes=tuple(
                        OutcomeDoc.from_result(outcome.result)
                        if outcome.ok
                        else OutcomeDoc.from_exception(outcome.error)
                        for outcome in outcomes
                    )
                ).to_dict()
            if kind == STATS_REQUEST_FORMAT:
                version = document.get("version")
                if version != WIRE_VERSION:
                    raise WireFormatError(
                        f"unsupported {STATS_REQUEST_FORMAT} version: {version!r}"
                    )
                return {
                    "format": STATS_FORMAT,
                    "version": WIRE_VERSION,
                    "status": "ok",
                    "counters": self.stats(),
                }
            if kind == PING_REQUEST_FORMAT:
                # The liveness probe: no counters, no lock, nothing that
                # can block — a probe must answer even when serving hurts.
                version = document.get("version")
                if version != WIRE_VERSION:
                    raise WireFormatError(
                        f"unsupported {PING_REQUEST_FORMAT} version: {version!r}"
                    )
                return {
                    "format": PING_FORMAT,
                    "version": WIRE_VERSION,
                    "status": "ok",
                }
            raise WireFormatError(self._unknown_format_message(document, kind))
        except ReverseCloakError as exc:
            return OutcomeDoc.from_exception(exc).to_dict()

    @staticmethod
    def _unknown_format_message(document, kind) -> str:
        """Name the offending top-level key(s) of an undispatchable
        document: a bare ``unknown document format: None`` used to leave a
        client with a typo'd ``"fromat"`` key nothing to grep for."""
        if not isinstance(document, dict):
            return (
                "unknown document format: request must be a JSON object, "
                f"got {type(document).__name__}"
            )
        if "format" not in document:
            keys = ", ".join(repr(str(key)) for key in sorted(map(str, document)))
            return (
                "unknown document format: no 'format' key; offending "
                f"top-level key(s): [{keys}]"
            )
        return f"unknown document format: 'format' is {kind!r}"

    def handle_json(self, payload: str) -> str:
        """:meth:`handle` over JSON strings (byte-transport adapters)."""
        try:
            document = json.loads(payload)
        except ValueError as exc:
            malformed = WireFormatError(f"request is not valid JSON: {exc}")
            return OutcomeDoc.from_exception(malformed).to_json()
        return json.dumps(self.handle(document), sort_keys=True)

    def handle_batch(self, documents: Sequence[dict]) -> List[dict]:
        """Serve many *independent* wire documents as coalesced batches.

        The transport-batching twin of :meth:`handle`, built for
        front-ends that accumulate compatible requests
        (:mod:`repro.lbs.frontend`): one outcome document per input
        document, positionally, each answering exactly what :meth:`handle`
        would have answered for that document alone — but single cloak and
        single reversal documents are grouped into one
        ``cloak_batch_raw`` / ``deanonymize_batch_raw`` backend call
        each, so a process-pool backend pays its dispatch overhead once
        per coalesced batch instead of once per request — and ships the
        raw documents, deferring validation to wherever the backend
        parses anyway. Every other format (reversal batches, stats,
        unknown) is served individually through :meth:`handle`.

        Admission control is per coalesced group, all-or-nothing like any
        batch; a shed group answers structured ``overloaded`` outcomes in
        place. Parse failures, unknown users and serving failures all ride
        in place too — this method never raises for a bad document.
        """
        results: List[Optional[dict]] = [None] * len(documents)
        cloak_lane: List[Tuple[int, dict]] = []
        peel_lane: List[Tuple[int, dict]] = []
        for position, document in enumerate(documents):
            kind = document.get("format") if isinstance(document, dict) else None
            if kind == CLOAK_REQUEST_FORMAT:
                cloak_lane.append((position, document))
            elif kind == DEANONYMIZE_REQUEST_FORMAT:
                peel_lane.append((position, document))
            else:
                results[position] = self.handle(document)
        if cloak_lane:
            self._serve_cloak_lane(cloak_lane, results)
        if peel_lane:
            self._serve_peel_lane(peel_lane, results)
        return results  # type: ignore[return-value]

    def _serve_cloak_lane(
        self,
        lane: List[Tuple[int, dict]],
        results: List[Optional[dict]],
    ) -> None:
        """One coalesced cloak group through the backend's raw-document
        path, outcomes written back positionally; counter bookkeeping
        matches :meth:`cloak_batch` (only cloaking errors count as
        failures — a malformed or unknown-user document counts as
        neither, exactly like :meth:`handle`)."""
        docs = [document for _, document in lane]
        try:
            snapshot = self._require_snapshot()
            with self._admit(len(docs)):
                outcome_docs = self._backend.cloak_batch_raw(snapshot, docs)
        except ReverseCloakError as exc:
            outcome = OutcomeDoc.from_exception(exc).to_dict()
            for position, _ in lane:
                results[position] = dict(outcome)
            return
        served = 0
        failures = 0
        for (position, _), outcome in zip(lane, outcome_docs):
            results[position] = outcome
            if outcome.get("status") == "ok":
                served += 1
            else:
                code = str((outcome.get("error") or {}).get("code", ""))
                if issubclass(error_class_for_code(code), CloakingError):
                    failures += 1
        self._count(served=served, failures=failures)

    def _serve_peel_lane(
        self,
        lane: List[Tuple[int, dict]],
        results: List[Optional[dict]],
    ) -> None:
        """One coalesced reversal group through the backend's raw-document
        path; counter bookkeeping matches :meth:`deanonymize_batch`,
        except that malformed documents — which :meth:`handle` rejects
        before ever counting — stay uncounted here too."""
        docs = [document for _, document in lane]
        try:
            with self._admit(len(docs)):
                outcome_docs = self._backend.deanonymize_batch_raw(docs)
        except ReverseCloakError as exc:
            outcome = OutcomeDoc.from_exception(exc).to_dict()
            for position, _ in lane:
                results[position] = dict(outcome)
            return
        served = 0
        reversal_failures = 0
        for (position, _), outcome in zip(lane, outcome_docs):
            results[position] = outcome
            if outcome.get("status") == "ok":
                served += 1
            else:
                code = str((outcome.get("error") or {}).get("code", ""))
                if not issubclass(error_class_for_code(code), WireFormatError):
                    reversal_failures += 1
        self._count(reversals=served, reversal_failures=reversal_failures)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_snapshot(self) -> PopulationSnapshot:
        snapshot = self._snapshot
        if snapshot is None:
            raise MobilityError("anonymizer has no population snapshot")
        return snapshot

    def _width_backend(self, max_workers: int) -> ExecutionBackend:
        """The cached legacy backend of an explicit ``max_workers`` width."""
        if max_workers <= 1:
            width = 1
        else:
            width = min(max_workers, 64)
        with self._width_lock:
            backend = self._width_backends.get(width)
            if backend is None:
                backend = (
                    InlineBackend() if width == 1 else ThreadPoolBackend(width)
                )
                backend.bind(self._spec)
                self._width_backends[width] = backend
            return backend

    def _count(
        self,
        served: int = 0,
        failures: int = 0,
        reversals: int = 0,
        reversal_failures: int = 0,
    ) -> None:
        with self._counter_lock:
            self._requests_served += served
            self._failures += failures + reversal_failures
            self._reversals_served += reversals
            self._reversal_failures += reversal_failures
