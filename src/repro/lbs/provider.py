"""The LBS provider: serves cloaked users, never sees raw locations.

Paper, Section IV: the owner "can 'upload' the cloaking region to the LBS
provider so that the LBS provider can serve the location data owner based on
the privacy privileges and access rights. ... At the beginning, [requesters]
can only see the largest cloaking region as the LBS provider."

:class:`LBSProvider` stores uploaded envelopes under pseudonyms, answers
anonymous range queries against the outermost region, and exposes the
envelope to requesters — who then fetch keys from the owner's
access-control profile and de-anonymize locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.envelope import CloakEnvelope
from ..errors import QueryError
from ..roadnet.graph import RoadNetwork
from .query import CandidateResult, PoiDirectory, range_query

__all__ = ["LBSProvider"]


class LBSProvider:
    """A location-based service operating on cloaked uploads.

    Args:
        directory: The provider's POI database.
    """

    def __init__(self, directory: PoiDirectory) -> None:
        self._directory = directory
        self._envelopes: Dict[str, CloakEnvelope] = {}

    @property
    def directory(self) -> PoiDirectory:
        return self._directory

    def upload(self, pseudonym: str, envelope: CloakEnvelope) -> None:
        """Store a cloaked location under ``pseudonym`` (overwrites)."""
        if not pseudonym:
            raise QueryError("pseudonym must be non-empty")
        self._envelopes[pseudonym] = envelope

    def envelope_of(self, pseudonym: str) -> CloakEnvelope:
        """The stored envelope (this is all the provider ever knows)."""
        try:
            return self._envelopes[pseudonym]
        except KeyError:
            raise QueryError(f"unknown pseudonym: {pseudonym}") from None

    def known_pseudonyms(self) -> Tuple[str, ...]:
        return tuple(sorted(self._envelopes))

    def visible_region(self, pseudonym: str) -> Tuple[int, ...]:
        """The outermost cloaking region — the provider's (and any keyless
        requester's) entire knowledge of the user's position."""
        return self.envelope_of(pseudonym).region

    def serve_range_query(
        self,
        pseudonym: str,
        radius: float,
        category: Optional[str] = None,
        region_override: Optional[Tuple[int, ...]] = None,
    ) -> CandidateResult:
        """Answer a range query for a cloaked user.

        ``region_override`` lets a *key-holding* requester query with a
        de-anonymized (smaller) region to receive a tighter candidate set —
        the cost/privacy trade-off of experiment E12. It must be a subset of
        the uploaded region; the provider enforces that to prevent a
        malicious requester from steering queries elsewhere.
        """
        envelope = self.envelope_of(pseudonym)
        region = set(envelope.region)
        if region_override is not None:
            override = set(region_override)
            if not override <= region:
                raise QueryError(
                    "region override must be a subset of the uploaded region"
                )
            if not override:
                raise QueryError("region override must be non-empty")
            region = override
        return range_query(self._directory, region, radius, category)
