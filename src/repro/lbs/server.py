"""The trusted anonymization server (deprecated shim).

:class:`TrustedAnonymizer` was the serving surface up to PR 2. The serving
layer has since been redesigned around a transport-neutral protocol
(:mod:`repro.lbs.wire`) and pluggable execution backends
(:mod:`repro.lbs.backends`), fronted by
:class:`~repro.lbs.service.AnonymizerService` — use that directly in new
code; it adds the server-side ``deanonymize`` endpoint, the raw-document
``handle`` entry point, and backend selection (inline / thread pool /
sharded process pool).

This module keeps the old class as a thin delegating shim with the exact
PR 2 signatures and counter semantics, emitting a :class:`DeprecationWarning`
at construction. ``CloakRequest`` and ``BatchOutcome`` now live in
:mod:`repro.lbs.wire` and :mod:`repro.lbs.backends` respectively and are
re-exported here unchanged.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Sequence

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..keys.keys import KeyChain
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from .backends import BatchOutcome
from .service import AnonymizerService
from .wire import CloakRequest

__all__ = ["CloakRequest", "BatchOutcome", "TrustedAnonymizer"]


class TrustedAnonymizer:
    """Deprecated facade over :class:`~repro.lbs.service.AnonymizerService`.

    Identical constructor and method signatures to the PR 2 class; every
    call delegates to an internal service configured the same way. New code
    should construct :class:`AnonymizerService` directly (and pick an
    execution backend).
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Optional[CloakingAlgorithm] = None,
        include_hints: bool = True,
    ) -> None:
        warnings.warn(
            "TrustedAnonymizer is deprecated; use "
            "repro.lbs.AnonymizerService (same behaviour, plus the "
            "deanonymize endpoint and pluggable execution backends)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._service = AnonymizerService(
            network, algorithm, include_hints=include_hints
        )

    @property
    def service(self) -> AnonymizerService:
        """The underlying service (migration escape hatch)."""
        return self._service

    @property
    def engine(self) -> ReverseCloakEngine:
        return self._service.engine

    @property
    def requests_served(self) -> int:
        return self._service.requests_served

    @property
    def failures(self) -> int:
        return self._service.failures

    def update_snapshot(self, snapshot: PopulationSnapshot) -> None:
        self._service.update_snapshot(snapshot)

    def cloak(self, request: CloakRequest) -> CloakEnvelope:
        return self._service.cloak(request)

    def cloak_segment(
        self, user_segment: int, profile: PrivacyProfile, chain: KeyChain
    ) -> CloakEnvelope:
        return self._service.cloak_segment(user_segment, profile, chain)

    def cloak_batch(
        self,
        requests: Sequence[CloakRequest],
        max_workers: Optional[int] = None,
    ) -> List[BatchOutcome]:
        if max_workers is None:
            # The PR 2 default: size the pool to the batch, capped at 8.
            max_workers = min(8, os.cpu_count() or 1, max(1, len(requests)))
        return self._service.cloak_batch(requests, max_workers=max_workers)

    # Post-PR 2 service capabilities, delegated for migration convenience
    # (code holding the shim can reach the reversal endpoints without
    # constructing a second facade around the same network).
    def deanonymize(self, envelope, keys, target_level: int, mode: str = "auto"):
        return self._service.deanonymize(envelope, keys, target_level, mode=mode)

    def deanonymize_batch(self, requests):
        return self._service.deanonymize_batch(requests)
