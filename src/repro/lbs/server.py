"""The trusted anonymization server.

Paper, Section II-B: *"a trusted anonymizer obtains the raw location
information from the mobile clients with the user-defined profile"* and,
Section IV, the Anonymizer GUI *"sends the parameters and access keys to a
trusted anonymization server"*.

:class:`TrustedAnonymizer` is that component: it holds the road map and the
live population snapshot, accepts cloaking requests (raw segment + profile +
keys), runs the engine, and hands back the envelope. It retains *no*
per-request state — the defining advantage over the mapping-store baseline —
apart from optional bookkeeping counters used by experiments.

Concurrency model: the server is thread-safe. :meth:`cloak_batch` serves a
whole batch of requests across a thread pool — each worker thread reuses
its own :class:`~repro.core.engine.ReverseCloakEngine` (engines hold only
immutable shared structures: the network, the algorithm and its
pre-assignment tables) and every request in a batch is cloaked against the
*same* population snapshot, captured once when the batch starts, so a
concurrent :meth:`update_snapshot` never tears a batch. The bookkeeping
counters are guarded by a lock — unguarded ``+= 1`` under concurrent
serving loses increments (the read-modify-write races), which this class
used to do.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import CloakingError, MobilityError
from ..keys.keys import KeyChain
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork

__all__ = ["CloakRequest", "BatchOutcome", "TrustedAnonymizer"]


@dataclass(frozen=True)
class CloakRequest:
    """One mobile client's anonymization request.

    Attributes:
        user_id: The requesting user (must be present in the snapshot).
        profile: The user-defined multi-level privacy profile.
        chain: The user's per-level access keys (kept client-side after the
            request; the server uses them only to drive the expansion).
    """

    user_id: int
    profile: PrivacyProfile
    chain: KeyChain


@dataclass(frozen=True)
class BatchOutcome:
    """The result of one request inside a :meth:`TrustedAnonymizer.cloak_batch`.

    Exactly one of :attr:`envelope` / :attr:`error` is set. Batch serving
    never lets one failing request abort its siblings; the error object is
    returned in place so the caller can retry or report per request.

    Attributes:
        request: The request this outcome answers (same position as in the
            submitted batch).
        envelope: The cloaked envelope on success.
        error: The :class:`~repro.errors.CloakingError` or
            :class:`~repro.errors.MobilityError` the request failed with.
    """

    request: CloakRequest
    envelope: Optional[CloakEnvelope] = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.envelope is not None


class TrustedAnonymizer:
    """The anonymization service of the ReverseCloak deployment.

    Args:
        network: The shared road map.
        algorithm: Cloaking algorithm (defaults to RGE inside the engine).
        include_hints: Produce sealed-hint envelopes (decision D1).
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Optional[CloakingAlgorithm] = None,
        include_hints: bool = True,
    ) -> None:
        self._network = network
        self._engine = ReverseCloakEngine(network, algorithm)
        self._include_hints = include_hints
        self._snapshot: Optional[PopulationSnapshot] = None
        # Counter lock: cloak()/cloak_batch() run concurrently and bare
        # ``+= 1`` would drop increments under that interleaving.
        self._counter_lock = threading.Lock()
        self._requests_served = 0
        self._failures = 0
        # One engine per worker thread (created lazily on first use).
        # Reuse spans the many requests a worker serves within a batch —
        # pools are per-call, so their threads (and these engines) end with
        # the batch; engines are cheap to build (the network digest and
        # pre-assignment tables are cached process-wide).
        self._worker_engines = threading.local()

    @property
    def engine(self) -> ReverseCloakEngine:
        return self._engine

    @property
    def requests_served(self) -> int:
        with self._counter_lock:
            return self._requests_served

    @property
    def failures(self) -> int:
        with self._counter_lock:
            return self._failures

    def update_snapshot(self, snapshot: PopulationSnapshot) -> None:
        """Install the current population snapshot (called per tick by the
        deployment; the anonymizer never looks at stale positions).

        Snapshots are immutable; in-flight batches keep serving against the
        snapshot they captured at submission.
        """
        self._snapshot = snapshot

    # ------------------------------------------------------------------
    # single-request serving
    # ------------------------------------------------------------------
    def cloak(self, request: CloakRequest) -> CloakEnvelope:
        """Serve one anonymization request.

        Looks up the user's current segment in the snapshot, expands per the
        profile, and returns the envelope. Raw location is used transiently
        and not retained.
        """
        snapshot = self._snapshot
        if snapshot is None:
            raise MobilityError("anonymizer has no population snapshot")
        return self._serve(self._engine, snapshot, request)

    def cloak_segment(
        self, user_segment: int, profile: PrivacyProfile, chain: KeyChain
    ) -> CloakEnvelope:
        """Cloak an explicit segment (bypasses the user lookup; used by
        experiments that sweep positions directly)."""
        snapshot = self._snapshot
        if snapshot is None:
            raise MobilityError("anonymizer has no population snapshot")
        try:
            envelope = self._engine.anonymize(
                user_segment,
                snapshot,
                profile,
                chain,
                include_hints=self._include_hints,
            )
        except CloakingError:
            self._count_failure()
            raise
        self._count_served()
        return envelope

    # ------------------------------------------------------------------
    # batch serving
    # ------------------------------------------------------------------
    def cloak_batch(
        self,
        requests: Sequence[CloakRequest],
        max_workers: Optional[int] = None,
    ) -> List[BatchOutcome]:
        """Serve a batch of requests, optionally across a thread pool.

        Every request is cloaked against the snapshot installed when the
        batch starts (one immutable capture for the whole batch), and each
        worker thread reuses one thread-local engine over the shared
        network/algorithm for all the requests it serves. Outcomes come
        back in request order; a failing request yields a
        :class:`BatchOutcome` with its error instead of aborting the batch.

        Args:
            requests: The batch, served in order.
            max_workers: Thread-pool width. ``None`` picks
                ``min(8, cpu_count, len(requests))``; ``1`` serves the batch
                inline on the calling thread (no pool).

        Raises:
            MobilityError: No snapshot is installed.
        """
        snapshot = self._snapshot
        if snapshot is None:
            raise MobilityError("anonymizer has no population snapshot")
        if not requests:
            return []
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1, len(requests))
        if max_workers <= 1:
            engine = self._engine
            return [self._serve_outcome(engine, snapshot, r) for r in requests]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(
                pool.map(
                    lambda request: self._serve_outcome(
                        self._worker_engine(), snapshot, request
                    ),
                    requests,
                )
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _worker_engine(self) -> ReverseCloakEngine:
        """This thread's engine (lazily built, reused for every request
        the thread serves while its pool lives)."""
        engine = getattr(self._worker_engines, "engine", None)
        if engine is None:
            engine = ReverseCloakEngine(self._network, self._engine.algorithm)
            self._worker_engines.engine = engine
        return engine

    def _serve(
        self,
        engine: ReverseCloakEngine,
        snapshot: PopulationSnapshot,
        request: CloakRequest,
    ) -> CloakEnvelope:
        """One request against a pinned (engine, snapshot) pair."""
        if not snapshot.has_user(request.user_id):
            raise MobilityError(
                f"user {request.user_id} is not in the current snapshot"
            )
        user_segment = snapshot.segment_of(request.user_id)
        try:
            envelope = engine.anonymize(
                user_segment,
                snapshot,
                request.profile,
                request.chain,
                include_hints=self._include_hints,
            )
        except CloakingError:
            self._count_failure()
            raise
        self._count_served()
        return envelope

    def _serve_outcome(
        self,
        engine: ReverseCloakEngine,
        snapshot: PopulationSnapshot,
        request: CloakRequest,
    ) -> BatchOutcome:
        try:
            envelope = self._serve(engine, snapshot, request)
        except (CloakingError, MobilityError) as exc:
            return BatchOutcome(request=request, error=exc)
        return BatchOutcome(request=request, envelope=envelope)

    def _count_served(self) -> None:
        with self._counter_lock:
            self._requests_served += 1

    def _count_failure(self) -> None:
        with self._counter_lock:
            self._failures += 1
