"""The trusted anonymization server.

Paper, Section II-B: *"a trusted anonymizer obtains the raw location
information from the mobile clients with the user-defined profile"* and,
Section IV, the Anonymizer GUI *"sends the parameters and access keys to a
trusted anonymization server"*.

:class:`TrustedAnonymizer` is that component: it holds the road map and the
live population snapshot, accepts cloaking requests (raw segment + profile +
keys), runs the engine, and hands back the envelope. It retains *no*
per-request state — the defining advantage over the mapping-store baseline —
apart from optional bookkeeping counters used by experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import CloakingError, MobilityError
from ..keys.keys import KeyChain
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork

__all__ = ["CloakRequest", "TrustedAnonymizer"]


@dataclass(frozen=True)
class CloakRequest:
    """One mobile client's anonymization request.

    Attributes:
        user_id: The requesting user (must be present in the snapshot).
        profile: The user-defined multi-level privacy profile.
        chain: The user's per-level access keys (kept client-side after the
            request; the server uses them only to drive the expansion).
    """

    user_id: int
    profile: PrivacyProfile
    chain: KeyChain


class TrustedAnonymizer:
    """The anonymization service of the ReverseCloak deployment.

    Args:
        network: The shared road map.
        algorithm: Cloaking algorithm (defaults to RGE inside the engine).
        include_hints: Produce sealed-hint envelopes (decision D1).
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Optional[CloakingAlgorithm] = None,
        include_hints: bool = True,
    ) -> None:
        self._engine = ReverseCloakEngine(network, algorithm)
        self._include_hints = include_hints
        self._snapshot: Optional[PopulationSnapshot] = None
        self._requests_served = 0
        self._failures = 0

    @property
    def engine(self) -> ReverseCloakEngine:
        return self._engine

    @property
    def requests_served(self) -> int:
        return self._requests_served

    @property
    def failures(self) -> int:
        return self._failures

    def update_snapshot(self, snapshot: PopulationSnapshot) -> None:
        """Install the current population snapshot (called per tick by the
        deployment; the anonymizer never looks at stale positions)."""
        self._snapshot = snapshot

    def cloak(self, request: CloakRequest) -> CloakEnvelope:
        """Serve one anonymization request.

        Looks up the user's current segment in the snapshot, expands per the
        profile, and returns the envelope. Raw location is used transiently
        and not retained.
        """
        if self._snapshot is None:
            raise MobilityError("anonymizer has no population snapshot")
        if not self._snapshot.has_user(request.user_id):
            raise MobilityError(
                f"user {request.user_id} is not in the current snapshot"
            )
        user_segment = self._snapshot.segment_of(request.user_id)
        try:
            envelope = self._engine.anonymize(
                user_segment,
                self._snapshot,
                request.profile,
                request.chain,
                include_hints=self._include_hints,
            )
        except CloakingError:
            self._failures += 1
            raise
        self._requests_served += 1
        return envelope

    def cloak_segment(
        self, user_segment: int, profile: PrivacyProfile, chain: KeyChain
    ) -> CloakEnvelope:
        """Cloak an explicit segment (bypasses the user lookup; used by
        experiments that sweep positions directly)."""
        if self._snapshot is None:
            raise MobilityError("anonymizer has no population snapshot")
        try:
            envelope = self._engine.anonymize(
                user_segment,
                self._snapshot,
                profile,
                chain,
                include_hints=self._include_hints,
            )
        except CloakingError:
            self._failures += 1
            raise
        self._requests_served += 1
        return envelope
