"""Length-prefixed framing of the network front-end.

The byte protocol under :mod:`repro.lbs.frontend`: every message — request
or reply — travels as one *frame*,

    ``[4-byte big-endian unsigned payload length][UTF-8 JSON payload]``

chosen over line-delimited JSON so payloads need no escaping discipline and
a reader can pre-size its buffer. The payload is exactly what
:meth:`~repro.lbs.service.AnonymizerService.handle_json` exchanges, wrapped
in the front-end's multiplexing envelope (``request_id`` + document; see
:mod:`repro.lbs.frontend`).

Both ends must bound what a peer can make them buffer: a frame whose
*declared* length exceeds ``max_frame_bytes`` raises
:class:`~repro.errors.WireFormatError` the moment the four length bytes
arrive — before any payload is read — and serving surfaces it as the
structured ``malformed_document`` code. After an oversized declaration the
stream cannot be resynchronized (the next bytes are mid-payload garbage),
so transports must drop the connection.

:class:`FrameDecoder` is deliberately transport-free — feed it byte chunks
of any size, get back completed payloads — so the adversarial-input tests
(truncated prefixes, mid-frame cuts, pathological chunkings) can drive it
without sockets, and server and client share one decoding path.
"""

from __future__ import annotations

import struct
from typing import List, Union

from ..errors import WireFormatError

__all__ = [
    "FRAME_HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "encode_frame",
    "FrameDecoder",
]

_HEADER = struct.Struct(">I")

#: Bytes of the length prefix.
FRAME_HEADER_SIZE = _HEADER.size

#: Default per-frame payload cap (1 MiB): comfortably above any realistic
#: request or outcome document, far below what lets a hostile peer balloon
#: a server buffer with one declared length.
DEFAULT_MAX_FRAME_BYTES = 1 << 20


def encode_frame(
    payload: Union[bytes, str],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """``payload`` as one wire frame (UTF-8 encoding ``str`` payloads).

    Raises:
        WireFormatError: The payload exceeds ``max_frame_bytes`` — refused
            at the sender, since the receiver would only reject it anyway.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder: arbitrary byte chunks in, payloads out.

    Stateful across calls — a frame may arrive split across any number of
    :meth:`feed` chunks, and one chunk may complete several frames. The
    internal buffer is bounded by construction: it never holds more than
    one incomplete frame (≤ ``max_frame_bytes`` + header) plus the chunk
    being fed, because an oversized declaration raises before its payload
    is ever buffered.

    An oversized declaration also *poisons* the decoder: the stream has no
    resynchronization marker, so any byte after the bad header is
    mid-payload garbage that must never be decoded as a frame. Every
    subsequent :meth:`feed` raises the same way (:attr:`poisoned`), which
    keeps a caller that swallowed the first error from silently reading
    corrupted frames.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise WireFormatError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self._max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def max_frame_bytes(self) -> int:
        return self._max_frame_bytes

    @property
    def buffered_bytes(self) -> int:
        """Bytes held for a frame still being assembled."""
        return len(self._buffer)

    @property
    def mid_frame(self) -> bool:
        """Whether the stream currently ends inside an unfinished frame —
        a truncated length prefix or a partial payload. What a server
        checks at EOF to tell a clean close from a mid-frame disconnect."""
        return len(self._buffer) > 0

    @property
    def poisoned(self) -> bool:
        """Whether an oversized declaration has made the stream
        undecodable — every further :meth:`feed` raises."""
        return self._poisoned

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return every frame payload it completed.

        Raises:
            WireFormatError: A frame declared more than ``max_frame_bytes``
                of payload — on the offending chunk and on every chunk
                after it. The stream is unrecoverable past this point
                (there is no resynchronization marker); the caller must
                drop the connection.
        """
        if self._poisoned:
            raise WireFormatError(
                "frame stream is poisoned by an earlier oversized "
                "declaration; drop the connection"
            )
        self._buffer.extend(data)
        frames: List[bytes] = []
        buffer = self._buffer
        offset = 0
        while len(buffer) - offset >= FRAME_HEADER_SIZE:
            (length,) = _HEADER.unpack_from(buffer, offset)
            if length > self._max_frame_bytes:
                del buffer[:offset]
                self._poisoned = True
                raise WireFormatError(
                    f"peer declared a frame of {length} bytes, over the "
                    f"{self._max_frame_bytes}-byte frame limit"
                )
            start = offset + FRAME_HEADER_SIZE
            if len(buffer) - start < length:
                break
            frames.append(bytes(buffer[start : start + length]))
            offset = start + length
        del buffer[:offset]
        return frames
