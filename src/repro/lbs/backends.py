"""Pluggable execution backends of the anonymization service.

The serving facade (:class:`~repro.lbs.service.AnonymizerService`) owns the
protocol — request in, outcome out — and delegates *where the cloaking
work runs* to an :class:`ExecutionBackend`:

* :class:`InlineBackend` — the calling thread, one engine. The reference
  implementation every other backend must match byte for byte.
* :class:`ThreadPoolBackend` — a persistent thread pool with one engine
  per worker thread (PR 2's ``cloak_batch`` machinery, re-homed). Threads
  share the interpreter, so on GIL-bound builds this measures serving
  overhead rather than adding parallelism; it remains the right backend
  for workloads that block (I/O-heavy algorithms, free-threaded builds).
* :class:`ProcessPoolBackend` — N worker *processes*, each holding its own
  engine rebuilt from wire documents against a per-batch snapshot. Work
  and results cross the boundary as wire documents only, so serving is
  byte-identical to inline and the workers never share mutable state —
  the seam every later sharding/async PR builds on.

A backend is bound once to an immutable :class:`BackendSpec` (network +
algorithm + hint policy) and then serves any number of batches; each batch
is pinned to the one snapshot it was submitted with. Outcomes come back in
request order, failures in place (:class:`BatchOutcome`), and *unexpected*
exceptions — anything outside the documented
:class:`~repro.errors.CloakingError` / :class:`~repro.errors.MobilityError`
serving failures — propagate to the caller instead of being swallowed into
outcomes.

Since PR 5 the seam carries the system's headline operation too:
:meth:`ExecutionBackend.deanonymize_batch` serves a batch of
de-anonymization requests (:class:`~repro.lbs.wire.DeanonymizeRequestDoc`)
under the same contract — outcomes in request order
(:class:`ReversalOutcome`), per-item typed failures
(:class:`~repro.errors.DeanonymizationError` /
:class:`~repro.errors.EnvelopeError` / :class:`~repro.errors.ProfileError`)
in place, anything else propagating, byte-identical results across every
backend. Reversal needs no population snapshot (envelopes are
self-describing), so the batch is snapshot-free; reversal engines are
resolved from each envelope's own algorithm metadata through a bounded
:class:`ReversalEngineCache`, and peels within a batch share keyed-draw
buffers through one :class:`~repro.core.reversal.DrawsCache` per serving
thread.

Since PR 6 the seam is fault-tolerant: every backend enforces the
cooperative per-request deadlines carried in the wire documents
(``deadline_ms``, surfacing as the structured ``deadline_exceeded`` code),
and :class:`ProcessPoolBackend` supervises its workers — death of a shard
mid-batch is recovered by respawn + chunk re-drive with bounded retries,
degrading to inline execution rather than ever losing a batch. The
recovery paths are exercised deterministically through
:mod:`repro.lbs.faults`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import stat
import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import (
    DeanonymizationResult,
    ReverseCloakEngine,
    algorithm_from_spec,
)
from ..core.envelope import CloakEnvelope
from ..core.reversal import DrawsCache
from ..errors import (
    CloakingError,
    DeanonymizationError,
    EnvelopeError,
    MobilityError,
    ProfileError,
    ReverseCloakError,
    WireFormatError,
    WorkerCrashedError,
)
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from ..roadnet.io import network_from_dict, network_to_dict
from .faults import Deadline, FaultInjector, FaultPlan
from .wire import (
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
    snapshot_from_dict,
    snapshot_to_dict,
)

__all__ = [
    "BackendSpec",
    "BatchOutcome",
    "ReversalOutcome",
    "ReversalEngineCache",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
]

#: The typed per-request failure union of batch serving. Anything else is a
#: bug or an infrastructure failure and must propagate.
ServingError = Union[CloakingError, MobilityError]

#: The typed per-item failure union of batch *reversal* serving: wrong or
#: missing keys, collisions, malformed or foreign envelopes, bad levels.
#: Anything else is a bug or an infrastructure failure and must propagate.
ReversalServingError = Union[DeanonymizationError, EnvelopeError, ProfileError]

#: The isinstance tuple of :data:`ReversalServingError` (also what the
#: process-pool workers convert into per-item outcome documents).
_REVERSAL_ERRORS = (DeanonymizationError, EnvelopeError, ProfileError)


@dataclass(frozen=True)
class BatchOutcome:
    """The result of one request inside a batch.

    Exactly one of :attr:`envelope` / :attr:`error` is set. Batch serving
    never lets one failing request abort its siblings; the error object is
    returned in place so the caller can retry or report per request.

    Attributes:
        request: The request this outcome answers (same position as in the
            submitted batch).
        envelope: The cloaked envelope on success.
        error: The :class:`~repro.errors.CloakingError` or
            :class:`~repro.errors.MobilityError` the request failed with —
            these are the only failures serving converts into outcomes;
            unexpected exceptions propagate out of the batch call.
    """

    request: CloakRequest
    envelope: Optional[CloakEnvelope] = None
    error: Optional[ServingError] = None

    @property
    def ok(self) -> bool:
        return self.envelope is not None


@dataclass(frozen=True)
class ReversalOutcome:
    """The result of one de-anonymization request inside a batch.

    Exactly one of :attr:`result` / :attr:`error` is set; failures sit in
    place so one bad item (wrong key, tampered envelope, collision) never
    aborts its siblings.

    Attributes:
        request: The reversal request this outcome answers (same position
            as in the submitted batch).
        result: The recovered per-level regions on success.
        error: The typed :data:`ReversalServingError` the item failed with
            — the only failures serving converts into outcomes; unexpected
            exceptions propagate out of the batch call.
    """

    request: DeanonymizeRequestDoc
    result: Optional[DeanonymizationResult] = None
    error: Optional[ReversalServingError] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class ReversalEngineCache:
    """Bounded, lock-guarded LRU of reversal engines keyed by algorithm spec.

    Envelopes name their own algorithm and parameters, and those fields are
    attacker-controlled on the wire endpoints — an unbounded
    ``{(algorithm, params): engine}`` dict lets churning parameters grow
    engine objects (and their pre-assignment tables) without limit, the
    same bug class PR 4 fixed in the transition-domain memo. This cache
    caps the live set (move-to-end on hit, evict oldest past ``cap``) and
    keeps the common case allocation-free: a ``default`` engine matching
    its own algorithm spec is answered without touching the LRU at all.

    Thread-safe; engines themselves hold only immutable shared structures,
    so handing one instance to several serving threads is fine.
    """

    def __init__(
        self,
        network: RoadNetwork,
        default: Optional[ReverseCloakEngine] = None,
        cap: int = 32,
    ) -> None:
        if cap < 1:
            raise ProfileError(f"engine cache cap must be >= 1, got {cap}")
        self._network = network
        self._default = default
        # The default's spec, computed once: algorithm instances are
        # immutable, and rebuilding the params dict per lookup would put
        # an allocation on every peel's fast path.
        self._default_spec = (
            (default.algorithm.name, default.algorithm.params())
            if default is not None
            else None
        )
        self._cap = cap
        self._lock = threading.Lock()
        self._engines: "OrderedDict[Tuple[str, str], ReverseCloakEngine]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def engine_for(self, envelope: CloakEnvelope) -> ReverseCloakEngine:
        """The reversal engine of ``envelope``'s algorithm metadata.

        Raises:
            EnvelopeError: The envelope names an unknown algorithm.
        """
        default_spec = self._default_spec
        if default_spec is not None and (
            (envelope.algorithm, envelope.algorithm_params) == default_spec
        ):
            return self._default
        cache_key = (
            envelope.algorithm,
            json.dumps(envelope.algorithm_params, sort_keys=True),
        )
        with self._lock:
            engine = self._engines.get(cache_key)
            if engine is not None:
                self._engines.move_to_end(cache_key)
                return engine
        # Build outside the lock (RPLE pre-assignment can be expensive);
        # a racing builder of the same spec just loses its copy.
        engine = ReverseCloakEngine.for_envelope(self._network, envelope)
        with self._lock:
            existing = self._engines.get(cache_key)
            if existing is not None:
                self._engines.move_to_end(cache_key)
                return existing
            self._engines[cache_key] = engine
            while len(self._engines) > self._cap:
                self._engines.popitem(last=False)
        return engine


def _peel_outcome(
    engines: ReversalEngineCache,
    request: DeanonymizeRequestDoc,
    draws_cache: Optional[DrawsCache],
    deadline: Optional[Deadline] = None,
) -> ReversalOutcome:
    """One reversal request against a pinned engine cache.

    The single code path every backend funnels reversal through (process
    workers via its wire-doc twin ``_peel_chunk_docs``): resolve the
    engine from the envelope's own metadata, peel under the request's
    cooperative deadline, capture the typed failure union in place
    (:class:`~repro.errors.DeadlineExceededError` is a
    :class:`~repro.errors.DeanonymizationError`, so expiry lands in place
    like any other per-item failure).
    """
    if deadline is None:
        deadline = Deadline.start(request.deadline_ms)
    try:
        engine = engines.engine_for(request.envelope)
        result = engine.deanonymize(
            request.envelope,
            request.key_map(),
            request.target_level,
            mode=request.mode,
            draws_cache=draws_cache,
            checkpoint=deadline.check if deadline.active else None,
        )
    except _REVERSAL_ERRORS as exc:
        return ReversalOutcome(request=request, error=exc)
    return ReversalOutcome(request=request, result=result)


@dataclass(frozen=True)
class BackendSpec:
    """Everything a backend needs to run the cloaking work anywhere.

    Attributes:
        network: The shared road map.
        algorithm: The cloaking algorithm instance (its ``name``/``params()``
            are the wire spec process workers rebuild it from).
        include_hints: Sealed-hint envelope policy (decision D1).
    """

    network: RoadNetwork
    algorithm: CloakingAlgorithm
    include_hints: bool = True

    def build_engine(self) -> ReverseCloakEngine:
        return ReverseCloakEngine(self.network, self.algorithm)


def serve_request(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    request: CloakRequest,
    include_hints: bool,
    deadline: Optional[Deadline] = None,
) -> CloakEnvelope:
    """One request against a pinned (engine, snapshot) pair.

    The single code path every backend funnels through (process workers
    via their wire-doc twin ``_serve_chunk_docs``): resolve the user
    (unless the request already carries its pre-resolved segment), expand
    under the request's cooperative deadline, return the envelope. Raw
    location is used transiently and not retained.
    """
    if deadline is None:
        deadline = Deadline.start(request.deadline_ms)
    user_segment = request.user_segment
    if user_segment is None:
        if not snapshot.has_user(request.user_id):
            raise MobilityError(
                f"user {request.user_id} is not in the current snapshot"
            )
        user_segment = snapshot.segment_of(request.user_id)
    return engine.anonymize(
        user_segment,
        snapshot,
        request.profile,
        request.chain,
        include_hints=include_hints,
        checkpoint=deadline.check if deadline.active else None,
    )


def _serve_outcome(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    request: CloakRequest,
    include_hints: bool,
    deadline: Optional[Deadline] = None,
) -> BatchOutcome:
    try:
        envelope = serve_request(
            engine, snapshot, request, include_hints, deadline=deadline
        )
    except (CloakingError, MobilityError) as exc:
        return BatchOutcome(request=request, error=exc)
    return BatchOutcome(request=request, envelope=envelope)


class ExecutionBackend(ABC):
    """Where the serving work of one anonymization service runs.

    Lifecycle: the service calls :meth:`bind` exactly once with its
    immutable :class:`BackendSpec`, then any number of
    :meth:`cloak_batch` / :meth:`deanonymize_batch` calls, then
    :meth:`close`. Backends are thread-safe for concurrent batch
    submissions.
    """

    _spec: Optional[BackendSpec] = None

    def bind(self, spec: BackendSpec) -> None:
        """Pin this backend to its serving configuration (idempotent for
        the same spec; a backend never serves two configurations)."""
        if self._spec is not None and self._spec is not spec:
            raise CloakingError("backend is already bound to another service")
        self._spec = spec

    @property
    def spec(self) -> BackendSpec:
        if self._spec is None:
            raise CloakingError("backend is not bound to a service yet")
        return self._spec

    @abstractmethod
    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        """Serve ``requests`` against ``snapshot``, outcomes in order."""

    @abstractmethod
    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        """Serve a batch of reversal requests, outcomes in request order.

        Snapshot-free: each envelope carries everything reversal needs.
        Per-item :data:`ReversalServingError` failures come back in place;
        anything else propagates. Results are byte-identical across every
        backend.
        """

    def cloak_batch_docs(
        self, snapshot: PopulationSnapshot, docs: Sequence[CloakRequestDoc]
    ) -> List[dict]:
        """Serve parsed cloak request documents; outcome documents in order.

        The wire-document twin of :meth:`cloak_batch`, for transports that
        already hold parsed documents (the network front-end's coalescer):
        same serving semantics and byte-identical envelopes, but results
        come back as :class:`~repro.lbs.wire.OutcomeDoc` dicts ready to
        serialize — per-item failures ride in place as structured error
        documents instead of exceptions.
        """
        outcomes = self.cloak_batch(snapshot, [doc.to_request() for doc in docs])
        return [
            OutcomeDoc.from_envelope(outcome.envelope).to_dict()
            if outcome.ok
            else OutcomeDoc.from_exception(outcome.error).to_dict()
            for outcome in outcomes
        ]

    def deanonymize_batch_docs(
        self, docs: Sequence[DeanonymizeRequestDoc]
    ) -> List[dict]:
        """Serve parsed reversal request documents; outcome documents in
        order — the wire-document twin of :meth:`deanonymize_batch` (see
        :meth:`cloak_batch_docs`)."""
        outcomes = self.deanonymize_batch(docs)
        return [
            OutcomeDoc.from_result(outcome.result).to_dict()
            if outcome.ok
            else OutcomeDoc.from_exception(outcome.error).to_dict()
            for outcome in outcomes
        ]

    def cloak_batch_raw(
        self, snapshot: PopulationSnapshot, documents: Sequence[dict]
    ) -> List[dict]:
        """Serve *raw* (unparsed) cloak request documents; outcome
        documents in order.

        The entry the transport coalescer calls: parse failures, unknown
        users and serving failures all ride in place as structured error
        documents — this method never raises for a bad document. The
        default validates parent-side and delegates to
        :meth:`cloak_batch_docs`; backends whose workers re-validate every
        document anyway may override it to defer validation to the shard
        and skip the duplicate parse.
        """
        outcomes: List[Optional[dict]] = [None] * len(documents)
        docs: List[CloakRequestDoc] = []
        positions: List[int] = []
        for position, document in enumerate(documents):
            try:
                doc = CloakRequestDoc.from_dict(document)
                if doc.user_segment is None:
                    # Resolve against the snapshot up front (the shard may
                    # only hold counts): an unknown user fails here, in
                    # place, exactly like the single-request path.
                    if not snapshot.has_user(doc.user_id):
                        raise MobilityError(
                            f"user {doc.user_id} is not in the current "
                            "snapshot"
                        )
                    doc = dataclasses.replace(
                        doc, user_segment=snapshot.segment_of(doc.user_id)
                    )
            except ReverseCloakError as exc:
                outcomes[position] = OutcomeDoc.from_exception(exc).to_dict()
                continue
            docs.append(doc)
            positions.append(position)
        if docs:
            for position, outcome in zip(
                positions, self.cloak_batch_docs(snapshot, docs)
            ):
                outcomes[position] = outcome
        return outcomes  # type: ignore[return-value]

    def deanonymize_batch_raw(self, documents: Sequence[dict]) -> List[dict]:
        """Serve *raw* (unparsed) reversal request documents; outcome
        documents in order — the raw twin of :meth:`cloak_batch_raw`
        (reversal is snapshot-free)."""
        outcomes: List[Optional[dict]] = [None] * len(documents)
        docs: List[DeanonymizeRequestDoc] = []
        positions: List[int] = []
        for position, document in enumerate(documents):
            try:
                docs.append(DeanonymizeRequestDoc.from_dict(document))
            except ReverseCloakError as exc:
                outcomes[position] = OutcomeDoc.from_exception(exc).to_dict()
                continue
            positions.append(position)
        if docs:
            for position, outcome in zip(
                positions, self.deanonymize_batch_docs(docs)
            ):
                outcomes[position] = outcome
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InlineBackend(ExecutionBackend):
    """Serve every batch sequentially on the calling thread.

    The reference implementation: every other backend must match its
    results byte for byte. Reversal serving reuses one bounded engine
    cache across batches and shares one keyed-draw cache within each
    batch.

    Args:
        fault_plan: Optional :class:`~repro.lbs.faults.FaultPlan`
            (defaults to the ambient :data:`~repro.lbs.faults.FAULT_PLAN_ENV`
            plan). Inline serving presents to the plan as worker ``0``,
            incarnation ``0``, with each batch as one chunk — but only
            ``delay`` faults apply: kill and drop faults are inert
            in-process (there is no worker to lose).
    """

    def __init__(self, fault_plan: Optional[FaultPlan] = None) -> None:
        self._engine: Optional[ReverseCloakEngine] = None
        self._reversal_engines: Optional[ReversalEngineCache] = None
        self._injector = FaultInjector(
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self._chunk_lock = threading.Lock()
        self._chunk_counter = 0

    def bind(self, spec: BackendSpec) -> None:
        super().bind(spec)
        if self._engine is None:
            self._engine = spec.build_engine()
            self._reversal_engines = ReversalEngineCache(
                spec.network, default=self._engine
            )

    def _next_chunk(self) -> int:
        # Services share one backend across request threads; an unguarded
        # read-increment pair here hands the same chunk id (and therefore
        # the same fault-plan row) to two concurrent batches.
        with self._chunk_lock:
            chunk = self._chunk_counter
            self._chunk_counter += 1
            return chunk

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        spec = self.spec
        engine = self._engine
        if not self._injector:
            return [
                _serve_outcome(engine, snapshot, request, spec.include_hints)
                for request in requests
            ]
        chunk = self._next_chunk()
        outcomes = []
        for item, request in enumerate(requests):
            deadline = Deadline.start(request.deadline_ms)
            self._injector.on_item(chunk, item, "cloak", deadline)
            outcomes.append(
                _serve_outcome(
                    engine, snapshot, request, spec.include_hints, deadline=deadline
                )
            )
        return outcomes

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        self.spec  # raise the unbound error before any work
        engines = self._reversal_engines
        draws_cache = DrawsCache()
        if not self._injector:
            return [
                _peel_outcome(engines, request, draws_cache)
                for request in requests
            ]
        chunk = self._next_chunk()
        outcomes = []
        for item, request in enumerate(requests):
            deadline = Deadline.start(request.deadline_ms)
            self._injector.on_item(chunk, item, "peel", deadline)
            outcomes.append(
                _peel_outcome(engines, request, draws_cache, deadline=deadline)
            )
        return outcomes


class ThreadPoolBackend(ExecutionBackend):
    """Serve batches across a persistent thread pool.

    Each worker thread lazily builds one engine and reuses it for every
    request it ever serves (engines hold only immutable shared structures:
    the network, the algorithm and its pre-assignment tables). All requests
    of a batch run against the one snapshot the batch was submitted with.

    GIL caveat: cloaking is pure Python, so on GIL-bound builds the pool
    adds scheduling overhead without adding parallelism — every measured
    width was slower than inline serving on a 1-CPU container
    (``BENCH_serving.json``). A width of 1 therefore short-circuits to
    inline execution on the calling thread (same engine-per-thread reuse,
    no pool hop); widths > 1 remain the right backend only for workloads
    that actually block (I/O-heavy algorithms, free-threaded builds) —
    otherwise prefer :class:`InlineBackend` or
    :class:`ProcessPoolBackend`.

    Args:
        max_workers: Pool width; ``None`` picks ``min(8, cpu_count)``.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise CloakingError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._engines = threading.local()

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _worker_engine(self) -> ReverseCloakEngine:
        engine = getattr(self._engines, "engine", None)
        if engine is None:
            engine = self.spec.build_engine()
            self._engines.engine = engine
        return engine

    def _worker_reversal_engines(self) -> ReversalEngineCache:
        """This worker thread's bounded reversal-engine cache.

        Per-worker (not shared) so reversal serving stays lock-free on the
        hot path, mirroring the per-worker cloaking engines; the caches
        answer from each envelope's algorithm metadata, never from a
        snapshot — reversal is snapshot-free.
        """
        engines = getattr(self._engines, "reversal", None)
        if engines is None:
            engines = ReversalEngineCache(
                self.spec.network, default=self._worker_engine()
            )
            self._engines.reversal = engines
        return engines

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="reversecloak-serve",
                )
            return self._pool

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        if not requests:
            return []
        include_hints = self.spec.include_hints
        if self._max_workers == 1:
            # A one-thread pool is pure overhead (submission hop + GIL
            # handoff per request, see the class docstring): serve on the
            # calling thread with the same per-thread engine reuse.
            engine = self._worker_engine()
            return [
                _serve_outcome(engine, snapshot, request, include_hints)
                for request in requests
            ]
        pool = self._ensure_pool()
        return list(
            pool.map(
                lambda request: _serve_outcome(
                    self._worker_engine(), snapshot, request, include_hints
                ),
                requests,
            )
        )

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        if not requests:
            return []
        self.spec  # raise the unbound error before any work
        if self._max_workers == 1:
            # Same short-circuit as cloak_batch — and serving on the
            # calling thread lets the whole batch share one draws cache.
            engines = self._worker_reversal_engines()
            draws_cache = DrawsCache()
            return [
                _peel_outcome(engines, request, draws_cache)
                for request in requests
            ]
        pool = self._ensure_pool()
        # No cross-item draws cache here: LevelDraws buffers are per-thread
        # scratch and items of one batch land on different workers. Each
        # peel still shares draws internally across its own hypotheses.
        return list(
            pool.map(
                lambda request: _peel_outcome(
                    self._worker_reversal_engines(), request, None
                ),
                requests,
            )
        )

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: Chunk reply meaning "this worker has not seen the batch's snapshot yet";
#: the parent re-submits the chunk with the snapshot document attached.
_NEED_SNAPSHOT = "__need_snapshot__"

#: Per-process worker state, populated by :func:`_worker_init` (one engine
#: per worker process, plus the cache of the last snapshot it deserialized).
_WORKER_STATE: dict = {}


def _worker_init(
    network_blob: str, algorithm_name: str, params_blob: str, include_hints: bool
) -> None:
    """Process-pool worker initializer (module-level: ``spawn`` pickles the
    function by qualified name). Rebuilds the engine from wire documents —
    the worker never shares live objects with the parent."""
    network = network_from_dict(json.loads(network_blob))
    algorithm = algorithm_from_spec(network, algorithm_name, json.loads(params_blob))
    engine = ReverseCloakEngine(network, algorithm)
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        engine=engine,
        # Reversal engines are rebuilt worker-side from each envelope's own
        # algorithm metadata; the bounded cache mirrors the parent's.
        reversal_engines=ReversalEngineCache(network, default=engine),
        include_hints=include_hints,
        snapshot_token=None,
        snapshot=None,
    )


def _serve_chunk_docs(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    include_hints: bool,
    request_docs: Sequence[dict],
    injector: Optional[FaultInjector] = None,
    chunk: int = 0,
) -> List[dict]:
    """Serve one chunk of cloaking request documents against an engine.

    The wire-doc twin of :func:`_serve_outcome`, shared by the process-pool
    workers and the parent's inline degradation path (which is why it takes
    plain documents, not live requests): each item runs under its own
    cooperative deadline, expected serving failures — deadline expiry
    included — become error outcome documents in place, anything else
    propagates.
    """
    outcomes = []
    for item, request_doc in enumerate(request_docs):
        try:
            doc = CloakRequestDoc.from_dict(request_doc)
        except WireFormatError as exc:
            # Raw documents may reach the shard unvalidated (the
            # coalescing fast path defers parsing here); a malformed item
            # answers in place, like its reversal twin below.
            outcomes.append(OutcomeDoc.from_exception(exc).to_dict())
            continue
        deadline = Deadline.start(doc.deadline_ms)
        if injector is not None:
            injector.on_item(chunk, item, "cloak", deadline)
        try:
            envelope = engine.anonymize(
                doc.user_segment,
                snapshot,
                doc.profile,
                doc.chain,
                include_hints=include_hints,
                checkpoint=deadline.check if deadline.active else None,
            )
        except CloakingError as exc:
            outcomes.append(OutcomeDoc.from_exception(exc).to_dict())
        else:
            outcomes.append(OutcomeDoc.from_envelope(envelope).to_dict())
    return outcomes


def _peel_chunk_docs(
    engines: ReversalEngineCache,
    request_docs: Sequence[dict],
    draws_cache: Optional[DrawsCache] = None,
    injector: Optional[FaultInjector] = None,
    chunk: int = 0,
) -> List[dict]:
    """Serve one chunk of reversal request documents against an engine cache.

    The wire-doc twin of :func:`_peel_outcome`, shared by the process-pool
    workers and the parent's inline degradation path: each item's engine is
    resolved from the envelope's own algorithm metadata through the bounded
    cache, the chunk shares one keyed-draw cache, each item runs under its
    own cooperative deadline, and every typed reversal failure — including
    a malformed item document — becomes a structured error outcome in
    place. Anything else propagates.
    """
    outcomes = []
    for item, request_doc in enumerate(request_docs):
        try:
            doc = DeanonymizeRequestDoc.from_dict(request_doc)
        except WireFormatError as exc:
            outcomes.append(OutcomeDoc.from_exception(exc).to_dict())
            continue
        deadline = Deadline.start(doc.deadline_ms)
        if injector is not None:
            injector.on_item(chunk, item, "peel", deadline)
        outcome = _peel_outcome(engines, doc, draws_cache, deadline=deadline)
        outcomes.append(
            OutcomeDoc.from_result(outcome.result).to_dict()
            if outcome.ok
            else OutcomeDoc.from_exception(outcome.error).to_dict()
        )
    return outcomes


def _worker_serve_chunk(
    snapshot_token: int,
    snapshot_blob: Optional[str],
    request_docs: Tuple[dict, ...],
    injector: Optional[FaultInjector] = None,
    chunk: int = 0,
):
    """Serve one cloaking chunk inside a worker process.

    Returns outcome documents (plain dicts) in chunk order, or the
    :data:`_NEED_SNAPSHOT` sentinel when the worker's cached snapshot is
    stale and the chunk carried no snapshot document. Expected serving
    failures become error outcomes; anything else propagates and surfaces
    in the parent.
    """
    state = _WORKER_STATE
    if state.get("snapshot_token") != snapshot_token:
        if snapshot_blob is None:
            return _NEED_SNAPSHOT
        state["snapshot"] = snapshot_from_dict(json.loads(snapshot_blob))
        state["snapshot_token"] = snapshot_token
    return _serve_chunk_docs(
        state["engine"],
        state["snapshot"],
        state["include_hints"],
        request_docs,
        injector=injector,
        chunk=chunk,
    )


def _worker_peel_chunk(
    request_docs: Tuple[dict, ...],
    injector: Optional[FaultInjector] = None,
    chunk: int = 0,
):
    """Serve one reversal chunk inside a worker process."""
    return _peel_chunk_docs(
        _WORKER_STATE["reversal_engines"],
        request_docs,
        DrawsCache(),
        injector=injector,
        chunk=chunk,
    )


def _close_inherited_sockets(keep_fd: int) -> None:
    """Close socket FDs a ``fork``-started worker inherited from the parent.

    A worker forked while the parent is serving (first lazy spawn under
    load, or a supervised respawn) inherits duplicates of every open
    socket: the front-end listener and every accepted connection. Those
    duplicates keep the TCP connections alive after the parent closes its
    own copies, so evictions, drains and shutdowns would never surface to
    the peers as FIN/RST. Workers rebuild all state from wire documents by
    design and own no socket except their dispatch pipe (itself a
    socketpair end — ``keep_fd``), so every other inherited socket is
    safe to close. Under ``spawn``/``forkserver`` nothing is inherited and
    this is a no-op; without procfs (macOS) it degrades to a no-op too,
    which matches the platform's ``spawn`` default.
    """
    try:
        fd_names = os.listdir("/proc/self/fd")
    except OSError:
        return
    for name in fd_names:
        try:
            fd = int(name)
        except ValueError:
            continue
        if fd == keep_fd or fd < 3:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_main(
    connection,
    network_blob: str,
    algorithm_name: str,
    params_blob: str,
    include_hints: bool,
    plan_blob: Optional[str] = None,
    worker_index: int = 0,
    incarnation: int = 0,
) -> None:
    """The serve loop of one sharded worker process.

    Module-level so the ``spawn`` start method can import it by qualified
    name. The worker rebuilds its engine from the wire documents it was
    started with, then answers tagged messages on its dedicated pipe until
    it receives ``None``:

    * ``("cloak", token, snapshot_blob, request_docs)`` — one cloaking
      chunk against the token's snapshot;
    * ``("peel", request_docs)`` — one de-anonymization chunk
      (snapshot-free).

    Replies are ``("ok", outcome_docs)``, ``("ok", _NEED_SNAPSHOT)`` for a
    stale snapshot cache, or ``("raise", exception)`` for unexpected
    failures (re-raised in the parent).

    ``plan_blob``/``worker_index``/``incarnation`` configure the worker's
    deterministic :class:`~repro.lbs.faults.FaultInjector` (the plan ships
    as JSON so it survives ``spawn``). Chunk ordinals count the messages
    *this incarnation* has received, so a respawned worker starts from
    chunk 0 — and, because faults default to incarnation 0, does not
    re-trigger the fault that killed its predecessor.
    """
    _close_inherited_sockets(connection.fileno())
    _worker_init(network_blob, algorithm_name, params_blob, include_hints)
    plan = FaultPlan.from_json(plan_blob) if plan_blob else None
    injector = FaultInjector(
        plan, worker_index, incarnation, process_worker=True
    )
    injector.install_signal_faults()
    chunk_counter = 0
    while True:
        message = connection.recv()
        if message is None:
            if injector.ignore_shutdown():
                continue
            break
        chunk = chunk_counter
        chunk_counter += 1
        op = "peel" if message[0] == "peel" else "cloak"
        try:
            injector.on_chunk(chunk, op)
            kind = message[0]
            if kind == "cloak":
                _, token, snapshot_blob, request_docs = message
                reply = _worker_serve_chunk(
                    token, snapshot_blob, request_docs, injector, chunk
                )
            elif kind == "peel":
                reply = _worker_peel_chunk(message[1], injector, chunk)
            else:
                raise RuntimeError(f"unknown worker message kind: {kind!r}")
        except BaseException as exc:  # ship unexpected failures to the parent
            try:
                connection.send(("raise", exc))
            except Exception:
                connection.send(
                    ("raise", RuntimeError(f"worker failure: {exc!r}"))
                )
        else:
            if injector.drop_reply(chunk, op):
                continue
            connection.send(("ok", reply))
    connection.close()


class _WedgedWorkerError(Exception):
    """Internal: a worker missed its dispatch-wait timeout (wedged or its
    reply was lost); treated exactly like a dead pipe by supervision."""


#: What supervision treats as "the worker is gone": a dead pipe (EOF /
#: broken pipe / reset, all OSError subclasses) or a missed dispatch wait.
_TRANSPORT_ERRORS = (EOFError, OSError, _WedgedWorkerError)

#: Grace added on top of a chunk's largest item deadline when the parent
#: bounds its dispatch wait with it: deadlines are cooperative, so a worker
#: may legitimately finish (and report expiry itself) slightly late.
_DEADLINE_WAIT_GRACE_S = 1.0


@dataclass
class _WorkerHandle:
    """One live worker shard: its process, private pipe, stable slot index
    and incarnation number (bumped on every supervised respawn)."""

    process: object
    connection: object
    index: int
    incarnation: int


class ProcessPoolBackend(ExecutionBackend):
    """Serve batches across N sharded worker processes, one engine each.

    The workers are dedicated processes on private pipes (not a task
    queue): the parent splits every batch into one contiguous chunk per
    worker, writes each chunk to its worker, and reads the replies back —
    no shared queues, no management threads, so the per-batch dispatch
    overhead stays flat as workers are added.

    Everything crossing the process boundary is a wire document:

    * at start-up each worker rebuilds the road network and algorithm from
      their serialized forms (:func:`_worker_init`);
    * per batch, the snapshot ships as a counts document under a
      monotonically increasing token — workers cache the parsed snapshot
      by token, so a steady stream of batches against one snapshot pays
      the (de)serialization once per worker, not once per batch;
    * requests ship as :class:`~repro.lbs.wire.CloakRequestDoc` dicts with
      the user already resolved to a segment (the parent holds the
      user-to-segment map; workers only ever need counts), and results
      return as :class:`~repro.lbs.wire.OutcomeDoc` dicts;
    * reversal batches (:meth:`deanonymize_batch`) ship as
      :class:`~repro.lbs.wire.DeanonymizeRequestDoc` dicts — snapshot-free;
      workers rebuild each envelope's reversal engine from its own
      algorithm metadata through a bounded per-worker cache.

    Wire documents round-trip exactly, so the envelopes and recovered
    regions a worker produces are byte-identical to inline serving —
    asserted by the backend tests.

    Batches are dispatched one at a time (a lock serializes
    :meth:`cloak_batch` / :meth:`deanonymize_batch` callers); parallelism
    lives *inside* a batch.

    **Supervision.** Worker death is an operational event, not a batch
    failure: when a pipe dies (EOF, broken pipe, reset) or a dispatch wait
    times out, the parent respawns the slot — incarnation bumped, engine
    rebuilt from the same wire documents — and re-drives *only the lost
    chunk*, with exponential backoff, up to ``max_chunk_retries`` times.
    A chunk that outlives its retry budget degrades to inline execution on
    the parent (byte-identical by the counts-only snapshot equivalence the
    wire protocol already guarantees), so a batch is never lost; with
    ``inline_fallback=False`` the chunk's items surface as structured
    ``worker_crashed`` outcomes instead. Failures a worker *reports*
    (``("raise", exc)``) are not crashes: the pool stays up, the remaining
    replies are drained, and the failure re-raises as before.
    :attr:`worker_restarts` and :attr:`inline_fallbacks` count the
    recovery events.

    Args:
        max_workers: Number of worker processes; ``None`` picks
            ``min(4, cpu_count)``.
        start_method: ``multiprocessing`` start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
            default. Everything shipped to workers is picklable under
            ``spawn``, so macOS/Windows semantics are covered.
        fault_plan: Optional :class:`~repro.lbs.faults.FaultPlan` shipped
            to every worker (as JSON, so it survives ``spawn``); defaults
            to the ambient :data:`~repro.lbs.faults.FAULT_PLAN_ENV` plan.
        max_chunk_retries: Respawn-and-redrive attempts per lost chunk
            before degrading it.
        retry_backoff_s: Base of the exponential backoff between respawn
            attempts (``retry_backoff_s * 2**(attempt-1)`` seconds).
        dispatch_timeout_s: Optional bound on each dispatch wait; a worker
            that misses it is treated as wedged (killed, respawned, chunk
            re-driven). Required for ``drop_reply`` faults to be
            recoverable — without it, and without per-item deadlines, a
            silently dropped reply would block the parent forever.
        inline_fallback: Degrade retry-exhausted chunks to inline
            execution (default) instead of ``worker_crashed`` outcomes.
        shutdown_join_s: Join timeout of each teardown escalation stage
            (sentinel → ``terminate()`` → ``kill()``).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_chunk_retries: int = 2,
        retry_backoff_s: float = 0.05,
        dispatch_timeout_s: Optional[float] = None,
        inline_fallback: bool = True,
        shutdown_join_s: float = 5.0,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise CloakingError(f"max_workers must be >= 1, got {max_workers}")
        if max_chunk_retries < 0:
            raise CloakingError(
                f"max_chunk_retries must be >= 0, got {max_chunk_retries}"
            )
        self._max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._start_method = start_method
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self._plan_blob = (
            self._fault_plan.to_json() if self._fault_plan else None
        )
        self._max_chunk_retries = max_chunk_retries
        self._retry_backoff_s = retry_backoff_s
        self._dispatch_timeout_s = dispatch_timeout_s
        self._inline_fallback = inline_fallback
        self._shutdown_join_s = shutdown_join_s
        self._dispatch_lock = threading.Lock()
        self._context = None
        self._init_args: Optional[tuple] = None
        self._workers: List[_WorkerHandle] = []
        # The degradation engines are built lazily on the first retry
        # exhaustion — the happy path never pays for them.
        self._fallback_engine: Optional[ReverseCloakEngine] = None
        self._fallback_reversal: Optional[ReversalEngineCache] = None
        #: Supervised respawns performed (observability; tests assert on it).
        self.worker_restarts = 0
        #: Chunks degraded to inline execution after retry exhaustion.
        self.inline_fallbacks = 0
        # Snapshot shipping state: one token per distinct snapshot object,
        # blob serialized once; workers that have not seen the batch's
        # token answer _NEED_SNAPSHOT and get a resend with the blob.
        self._snapshot_token = 0
        self._snapshot_seen: Optional[PopulationSnapshot] = None
        self._snapshot_blob: Optional[str] = None
        self._cold_token = True

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _spawn_worker(self, index: int, incarnation: int) -> _WorkerHandle:
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_end,)
            + self._init_args
            + (self._plan_blob, index, incarnation),
            daemon=True,
        )
        process.start()
        child_end.close()
        return _WorkerHandle(process, parent_end, index, incarnation)

    def _ensure_workers(self) -> List[_WorkerHandle]:
        """Spawn the worker shards on first use (dispatch lock held)."""
        if not self._workers:
            if self._context is None:
                import multiprocessing

                self._context = multiprocessing.get_context(self._start_method)
            spec = self.spec
            self._init_args = (
                json.dumps(network_to_dict(spec.network)),
                spec.algorithm.name,
                json.dumps(spec.algorithm.params()),
                spec.include_hints,
            )
            for index in range(self._max_workers):
                self._workers.append(self._spawn_worker(index, incarnation=0))
        return self._workers

    def _reap_worker(self, handle: _WorkerHandle) -> None:
        """Put one worker down for good: terminate, escalate to kill, close
        the pipe. Used on respawn and by teardown."""
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=self._shutdown_join_s)
        if process.is_alive():  # SIGTERM ignored or wedged: cannot be refused
            process.kill()
            process.join(timeout=self._shutdown_join_s)
        try:
            handle.connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def _respawn(self, slot: int) -> _WorkerHandle:
        """Replace the worker in ``slot`` with a fresh incarnation
        (dispatch lock held). The replacement rebuilds its engine from the
        same wire documents; its snapshot cache starts cold, so re-driven
        cloak chunks must carry the snapshot blob."""
        handle = self._workers[slot]
        self._reap_worker(handle)
        replacement = self._spawn_worker(handle.index, handle.incarnation + 1)
        self._workers[slot] = replacement
        self.worker_restarts += 1
        return replacement

    def _snapshot_wire(self, snapshot: PopulationSnapshot) -> Tuple[int, str]:
        """The (token, counts blob) of ``snapshot``, serialized once per
        distinct snapshot object (snapshots are immutable)."""
        if snapshot is not self._snapshot_seen:
            self._snapshot_token += 1
            self._snapshot_seen = snapshot
            self._snapshot_blob = json.dumps(
                snapshot_to_dict(snapshot, counts_only=True)
            )
            self._cold_token = True
        return self._snapshot_token, self._snapshot_blob

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        if not requests:
            return []
        # Resolve users up front (the parent holds the full snapshot) so
        # workers need only counts; unknown users fail here, in place,
        # exactly like inline serving. Requests arriving with their segment
        # pre-resolved skip the lookup.
        outcomes: List[Optional[BatchOutcome]] = [None] * len(requests)
        chunk_docs: List[dict] = []
        chunk_positions: List[int] = []
        for position, request in enumerate(requests):
            user_segment = request.user_segment
            if user_segment is None:
                if not snapshot.has_user(request.user_id):
                    outcomes[position] = BatchOutcome(
                        request=request,
                        error=MobilityError(
                            f"user {request.user_id} is not in the current snapshot"
                        ),
                    )
                    continue
                user_segment = snapshot.segment_of(request.user_id)
            doc = CloakRequestDoc.from_request(request, user_segment=user_segment)
            chunk_docs.append(doc.to_dict())
            chunk_positions.append(position)

        if chunk_docs:
            with self._dispatch_lock:
                replies = self._dispatch(snapshot, chunk_docs)
            cursor = 0
            failure: Optional[BaseException] = None
            for reply in replies:
                outcome_doc = OutcomeDoc.from_dict(reply)
                position = chunk_positions[cursor]
                cursor += 1
                request = requests[position]
                if outcome_doc.ok:
                    outcomes[position] = BatchOutcome(
                        request=request, envelope=outcome_doc.envelope
                    )
                else:
                    error = outcome_doc.to_exception()
                    if not isinstance(error, (CloakingError, MobilityError)):
                        failure = failure or error
                        continue
                    outcomes[position] = BatchOutcome(request=request, error=error)
            if failure is not None:
                raise failure
        return list(outcomes)  # type: ignore[arg-type]

    def cloak_batch_docs(
        self, snapshot: PopulationSnapshot, docs: Sequence[CloakRequestDoc]
    ) -> List[dict]:
        """Ship parsed cloak documents straight to the worker shards.

        Overrides the default to skip the request-object round-trip: the
        parsed documents go over the pipes as-is (after parent-side user
        resolution for any item still carrying only a user id) and the
        workers' outcome documents come back untouched — the hot path of
        the network front-end's coalescer. Unlike :meth:`cloak_batch`,
        *every* worker-reported error rides in place as a structured
        outcome document; nothing re-raises, because a transport caller
        answers per item.
        """
        if not docs:
            return []
        self.spec  # raise the unbound error before spawning anything
        outcomes: List[Optional[dict]] = [None] * len(docs)
        chunk_docs: List[dict] = []
        chunk_positions: List[int] = []
        for position, doc in enumerate(docs):
            if doc.user_segment is None:
                if not snapshot.has_user(doc.user_id):
                    error = MobilityError(
                        f"user {doc.user_id} is not in the current snapshot"
                    )
                    outcomes[position] = OutcomeDoc.from_exception(error).to_dict()
                    continue
                doc = dataclasses.replace(
                    doc, user_segment=snapshot.segment_of(doc.user_id)
                )
            chunk_docs.append(doc.to_dict())
            chunk_positions.append(position)
        if chunk_docs:
            with self._dispatch_lock:
                replies = self._dispatch(snapshot, chunk_docs)
            for position, reply in zip(chunk_positions, replies):
                outcomes[position] = reply
        return list(outcomes)  # type: ignore[arg-type]

    def deanonymize_batch_docs(
        self, docs: Sequence[DeanonymizeRequestDoc]
    ) -> List[dict]:
        """Ship parsed reversal documents straight to the worker shards
        (see :meth:`cloak_batch_docs`; reversal is snapshot-free)."""
        if not docs:
            return []
        self.spec  # raise the unbound error before spawning anything
        chunk_docs = [doc.to_dict() for doc in docs]
        with self._dispatch_lock:
            return self._dispatch_peels(chunk_docs)

    def cloak_batch_raw(
        self, snapshot: PopulationSnapshot, documents: Sequence[dict]
    ) -> List[dict]:
        """Ship raw cloak documents to the worker shards unparsed.

        The shards run ``CloakRequestDoc.from_dict`` on every document they
        serve, so the parent-side parse of the default implementation is
        pure duplication — measurable on the coalescer's hot path, where
        the parent competes with its own workers for cores. The parent
        only patches in the user's segment (it alone holds the full
        snapshot); a malformed document answers in place from the shard's
        parse. Documents the id fast path cannot vouch for — a
        non-integer ``user_id``, an unknown user — take the parsing
        default instead, which preserves error precedence: a malformed
        document must fail as malformed, never as merely unknown.
        """
        if not documents:
            return []
        self.spec  # raise the unbound error before spawning anything
        outcomes: List[Optional[dict]] = [None] * len(documents)
        chunk_docs: List[dict] = []
        chunk_positions: List[int] = []
        slow_documents: List[dict] = []
        slow_positions: List[int] = []
        for position, document in enumerate(documents):
            if isinstance(document, dict) and document.get("user_segment") is None:
                user_id = document.get("user_id")
                # `type` not `isinstance`: bool subclasses int, and
                # from_dict's int() coercion must stay the one authority
                # on anything that is not literally an int already.
                if type(user_id) is int and snapshot.has_user(user_id):
                    document = dict(
                        document, user_segment=snapshot.segment_of(user_id)
                    )
                else:
                    slow_documents.append(document)
                    slow_positions.append(position)
                    continue
            chunk_docs.append(document)
            chunk_positions.append(position)
        if slow_documents:
            for position, outcome in zip(
                slow_positions,
                super().cloak_batch_raw(snapshot, slow_documents),
            ):
                outcomes[position] = outcome
        if chunk_docs:
            with self._dispatch_lock:
                replies = self._dispatch(snapshot, chunk_docs)
            for position, reply in zip(chunk_positions, replies):
                outcomes[position] = reply
        return list(outcomes)  # type: ignore[arg-type]

    def deanonymize_batch_raw(self, documents: Sequence[dict]) -> List[dict]:
        """Ship raw reversal documents to the worker shards unparsed (see
        :meth:`cloak_batch_raw`; the shard's per-item parse answers
        malformed documents in place)."""
        if not documents:
            return []
        self.spec  # raise the unbound error before spawning anything
        with self._dispatch_lock:
            return self._dispatch_peels(list(documents))

    def _dispatch(
        self, snapshot: PopulationSnapshot, chunk_docs: List[dict]
    ) -> List[dict]:
        """Fan the batch out to the worker shards; replies in batch order.

        Dispatch lock held. A worker answering :data:`_NEED_SNAPSHOT` gets
        its chunk once more with the snapshot document attached. Failures a
        worker *reports* (``("raise", exc)``) keep the pipes aligned — the
        other replies are drained before re-raising; a *transport* failure
        (dead worker, broken pipe, missed dispatch wait) is recovered by
        supervision (see :meth:`_collect_chunk`): the slot is respawned and
        only the lost chunk re-driven, so the surviving workers' replies
        are never discarded.
        """
        token, blob = self._snapshot_wire(snapshot)
        ship_blob = blob if self._cold_token else None
        replies = self._drive(
            "cloak",
            self._chunk(chunk_docs),
            snapshot=snapshot,
            token=token,
            blob=blob,
            ship_blob=ship_blob,
        )
        self._cold_token = False
        return replies

    def _message(
        self, op: str, chunk: List[dict], token: Optional[int], blob: Optional[str]
    ) -> tuple:
        if op == "cloak":
            return ("cloak", token, blob, tuple(chunk))
        return ("peel", tuple(chunk))

    def _chunk_timeout(self, chunk: List[dict]) -> Optional[float]:
        """How long a dispatch wait on ``chunk`` may block.

        ``dispatch_timeout_s`` when configured; additionally, when *every*
        item carries a deadline, the worker must have answered by the
        largest one (plus cooperative grace) — this is the parent-side
        deadline enforcement on dispatch waits. ``None`` blocks forever.
        """
        timeout = self._dispatch_timeout_s
        deadlines = [doc.get("deadline_ms") for doc in chunk]
        if deadlines and all(value is not None for value in deadlines):
            bound = max(deadlines) / 1000.0 + _DEADLINE_WAIT_GRACE_S
            timeout = bound if timeout is None else min(timeout, bound)
        return timeout

    def _recv_reply(self, handle: _WorkerHandle, timeout: Optional[float]):
        if timeout is not None and not handle.connection.poll(timeout):
            raise _WedgedWorkerError(
                f"worker {handle.index} (incarnation {handle.incarnation}) "
                f"sent no reply within {timeout:g}s"
            )
        return handle.connection.recv()

    def _drive(
        self,
        op: str,
        chunks: List[List[dict]],
        snapshot: Optional[PopulationSnapshot] = None,
        token: Optional[int] = None,
        blob: Optional[str] = None,
        ship_blob: Optional[str] = None,
    ) -> List[dict]:
        """Send every chunk to its shard, then collect replies in order.

        Dispatch lock held. The fan-out phase keeps all shards busy in
        parallel; the collect phase runs per-slot supervision
        (:meth:`_collect_chunk`), so a crash on one shard never discards
        another shard's work. Worker-*reported* failures drain the
        remaining replies before re-raising, exactly as before.
        """
        self._ensure_workers()
        sent: List[bool] = []
        for slot, chunk in enumerate(chunks):
            try:
                self._workers[slot].connection.send(
                    self._message(op, chunk, token, ship_blob)
                )
                sent.append(True)
            except (OSError, ValueError):
                # Dead before the batch even reached it: leave the send to
                # the supervised collect pass, which will respawn the slot.
                sent.append(False)
        replies: List[dict] = []
        failure: Optional[BaseException] = None
        for slot, chunk in enumerate(chunks):
            kind, payload = self._collect_chunk(
                op, slot, chunk, token, blob, sent[slot], snapshot
            )
            if kind == "raise":
                failure = failure or payload
                continue
            replies.extend(payload)
        if failure is not None:
            raise failure
        return replies

    def _collect_chunk(
        self,
        op: str,
        slot: int,
        chunk: List[dict],
        token: Optional[int],
        blob: Optional[str],
        sent: bool,
        snapshot: Optional[PopulationSnapshot],
    ):
        """Collect one shard's reply, recovering the chunk through worker
        death: respawn with exponential backoff and re-drive (re-driven
        cloak chunks always carry the snapshot blob — a fresh incarnation's
        snapshot cache is cold), degrade after ``max_chunk_retries``.
        Returns ``("ok", outcome_docs)`` or ``("raise", exc)``.
        """
        timeout = self._chunk_timeout(chunk)
        attempt = 0
        while True:
            handle = self._workers[slot]
            try:
                if not sent:
                    handle.connection.send(self._message(op, chunk, token, blob))
                    sent = True
                kind, payload = self._recv_reply(handle, timeout)
                if kind == "ok" and payload == _NEED_SNAPSHOT:
                    handle.connection.send(("cloak", token, blob, tuple(chunk)))
                    kind, payload = self._recv_reply(handle, timeout)
                return kind, payload
            except _TRANSPORT_ERRORS:
                attempt += 1
                # Replace the dead/wedged incarnation either way, so the
                # pool is whole for the remaining slots and later batches.
                self._respawn(slot)
                if attempt > self._max_chunk_retries:
                    return "ok", self._degraded_chunk(op, chunk, snapshot)
                time.sleep(self._retry_backoff_s * (2 ** (attempt - 1)))
                sent = False

    def _degraded_chunk(
        self,
        op: str,
        chunk: List[dict],
        snapshot: Optional[PopulationSnapshot],
    ) -> List[dict]:
        """The outcome documents of a chunk whose retry budget ran out:
        inline execution on the parent (graceful degradation — byte-
        identical, the batch is never lost), or per-item ``worker_crashed``
        outcomes when ``inline_fallback`` is off."""
        if not self._inline_fallback:
            error = WorkerCrashedError(
                f"worker chunk lost {self._max_chunk_retries + 1} times; "
                "retries exhausted and inline fallback is disabled"
            )
            doc = OutcomeDoc.from_exception(error).to_dict()
            return [dict(doc) for _ in chunk]
        self.inline_fallbacks += 1
        if op == "cloak":
            return _serve_chunk_docs(
                self._fallback_cloak_engine(),
                snapshot,
                self.spec.include_hints,
                chunk,
            )
        return _peel_chunk_docs(
            self._fallback_reversal_engines(), chunk, DrawsCache()
        )

    def _fallback_cloak_engine(self) -> ReverseCloakEngine:
        if self._fallback_engine is None:
            self._fallback_engine = self.spec.build_engine()
        return self._fallback_engine

    def _fallback_reversal_engines(self) -> ReversalEngineCache:
        if self._fallback_reversal is None:
            self._fallback_reversal = ReversalEngineCache(
                self.spec.network, default=self._fallback_cloak_engine()
            )
        return self._fallback_reversal

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        """Fan a reversal batch out across the worker shards.

        This is the first parallel reversal path in the system: each shard
        peels its contiguous chunk with its own engine (reversal is pure
        CPU with no shared state, so on multi-core hardware the slowest
        serving operation finally scales with workers). Requests cross the
        pipes as :class:`~repro.lbs.wire.DeanonymizeRequestDoc` dicts —
        key material rides inside them exactly as on the single-request
        wire path — and results return as outcome documents, so recovered
        regions are byte-identical to inline serving.
        """
        if not requests:
            return []
        self.spec  # raise the unbound error before spawning anything
        chunk_docs = [request.to_dict() for request in requests]
        with self._dispatch_lock:
            replies = self._dispatch_peels(chunk_docs)
        outcomes: List[ReversalOutcome] = []
        failure: Optional[BaseException] = None
        for request, reply in zip(requests, replies):
            outcome_doc = OutcomeDoc.from_dict(reply)
            if outcome_doc.ok:
                outcomes.append(
                    ReversalOutcome(request=request, result=outcome_doc.result)
                )
            else:
                error = outcome_doc.to_exception()
                if not isinstance(error, _REVERSAL_ERRORS):
                    failure = failure or error
                    continue
                outcomes.append(ReversalOutcome(request=request, error=error))
        if failure is not None:
            raise failure
        return outcomes

    def _dispatch_peels(self, chunk_docs: List[dict]) -> List[dict]:
        """Fan one reversal batch out to the workers; replies in order.

        Dispatch lock held. Same supervision discipline as the cloaking
        :meth:`_dispatch` — reported failures drain the remaining replies
        before re-raising, transport failures respawn the slot and
        re-drive only its chunk — minus the snapshot machinery, which
        reversal does not need.
        """
        return self._drive("peel", self._chunk(chunk_docs))

    def _chunk(self, docs: List[dict]) -> List[List[dict]]:
        """Split the batch into one contiguous chunk per worker."""
        workers = min(self._max_workers, len(docs))
        base, extra = divmod(len(docs), workers)
        chunks: List[List[dict]] = []
        start = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            chunks.append(docs[start : start + size])
            start += size
        return chunks

    def _teardown_workers(self) -> None:
        """Shut every worker down and reset snapshot-shipping state
        (dispatch lock held). The next batch spawns a fresh pool.

        Escalation ladder per worker: cooperative shutdown sentinel →
        ``join(shutdown_join_s)`` → ``terminate()`` (SIGTERM) → join →
        ``kill()`` (SIGKILL, cannot be ignored) → join. ``close()``
        therefore never leaks a live child, even against a worker that
        ignores the sentinel and SIGTERM.
        """
        for handle in self._workers:
            try:
                handle.connection.send(None)
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            process = handle.process
            process.join(timeout=self._shutdown_join_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self._shutdown_join_s)
            if process.is_alive():
                process.kill()
                process.join(timeout=self._shutdown_join_s)
            try:
                handle.connection.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._workers.clear()
        self._snapshot_seen = None
        self._snapshot_blob = None
        self._cold_token = True

    def close(self) -> None:
        with self._dispatch_lock:
            self._teardown_workers()
