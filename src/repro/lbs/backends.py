"""Pluggable execution backends of the anonymization service.

The serving facade (:class:`~repro.lbs.service.AnonymizerService`) owns the
protocol — request in, outcome out — and delegates *where the cloaking
work runs* to an :class:`ExecutionBackend`:

* :class:`InlineBackend` — the calling thread, one engine. The reference
  implementation every other backend must match byte for byte.
* :class:`ThreadPoolBackend` — a persistent thread pool with one engine
  per worker thread (PR 2's ``cloak_batch`` machinery, re-homed). Threads
  share the interpreter, so on GIL-bound builds this measures serving
  overhead rather than adding parallelism; it remains the right backend
  for workloads that block (I/O-heavy algorithms, free-threaded builds).
* :class:`ProcessPoolBackend` — N worker *processes*, each holding its own
  engine rebuilt from wire documents against a per-batch snapshot. Work
  and results cross the boundary as wire documents only, so serving is
  byte-identical to inline and the workers never share mutable state —
  the seam every later sharding/async PR builds on.

A backend is bound once to an immutable :class:`BackendSpec` (network +
algorithm + hint policy) and then serves any number of batches; each batch
is pinned to the one snapshot it was submitted with. Outcomes come back in
request order, failures in place (:class:`BatchOutcome`), and *unexpected*
exceptions — anything outside the documented
:class:`~repro.errors.CloakingError` / :class:`~repro.errors.MobilityError`
serving failures — propagate to the caller instead of being swallowed into
outcomes.
"""

from __future__ import annotations

import json
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import ReverseCloakEngine, algorithm_from_spec
from ..core.envelope import CloakEnvelope
from ..errors import CloakingError, MobilityError
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from ..roadnet.io import network_from_dict, network_to_dict
from .wire import (
    CloakRequest,
    CloakRequestDoc,
    OutcomeDoc,
    snapshot_from_dict,
    snapshot_to_dict,
)

__all__ = [
    "BackendSpec",
    "BatchOutcome",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
]

#: The typed per-request failure union of batch serving. Anything else is a
#: bug or an infrastructure failure and must propagate.
ServingError = Union[CloakingError, MobilityError]


@dataclass(frozen=True)
class BatchOutcome:
    """The result of one request inside a batch.

    Exactly one of :attr:`envelope` / :attr:`error` is set. Batch serving
    never lets one failing request abort its siblings; the error object is
    returned in place so the caller can retry or report per request.

    Attributes:
        request: The request this outcome answers (same position as in the
            submitted batch).
        envelope: The cloaked envelope on success.
        error: The :class:`~repro.errors.CloakingError` or
            :class:`~repro.errors.MobilityError` the request failed with —
            these are the only failures serving converts into outcomes;
            unexpected exceptions propagate out of the batch call.
    """

    request: CloakRequest
    envelope: Optional[CloakEnvelope] = None
    error: Optional[ServingError] = None

    @property
    def ok(self) -> bool:
        return self.envelope is not None


@dataclass(frozen=True)
class BackendSpec:
    """Everything a backend needs to run the cloaking work anywhere.

    Attributes:
        network: The shared road map.
        algorithm: The cloaking algorithm instance (its ``name``/``params()``
            are the wire spec process workers rebuild it from).
        include_hints: Sealed-hint envelope policy (decision D1).
    """

    network: RoadNetwork
    algorithm: CloakingAlgorithm
    include_hints: bool = True

    def build_engine(self) -> ReverseCloakEngine:
        return ReverseCloakEngine(self.network, self.algorithm)


def serve_request(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    request: CloakRequest,
    include_hints: bool,
) -> CloakEnvelope:
    """One request against a pinned (engine, snapshot) pair.

    The single code path every backend funnels through (process workers
    via their wire-doc twin ``_worker_serve``): resolve the user, expand,
    return the envelope. Raw location is used transiently and not retained.
    """
    if not snapshot.has_user(request.user_id):
        raise MobilityError(
            f"user {request.user_id} is not in the current snapshot"
        )
    user_segment = snapshot.segment_of(request.user_id)
    return engine.anonymize(
        user_segment,
        snapshot,
        request.profile,
        request.chain,
        include_hints=include_hints,
    )


def _serve_outcome(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    request: CloakRequest,
    include_hints: bool,
) -> BatchOutcome:
    try:
        envelope = serve_request(engine, snapshot, request, include_hints)
    except (CloakingError, MobilityError) as exc:
        return BatchOutcome(request=request, error=exc)
    return BatchOutcome(request=request, envelope=envelope)


class ExecutionBackend(ABC):
    """Where the serving work of one anonymization service runs.

    Lifecycle: the service calls :meth:`bind` exactly once with its
    immutable :class:`BackendSpec`, then any number of
    :meth:`cloak_batch` calls, then :meth:`close`. Backends are
    thread-safe for concurrent ``cloak_batch`` submissions.
    """

    _spec: Optional[BackendSpec] = None

    def bind(self, spec: BackendSpec) -> None:
        """Pin this backend to its serving configuration (idempotent for
        the same spec; a backend never serves two configurations)."""
        if self._spec is not None and self._spec is not spec:
            raise CloakingError("backend is already bound to another service")
        self._spec = spec

    @property
    def spec(self) -> BackendSpec:
        if self._spec is None:
            raise CloakingError("backend is not bound to a service yet")
        return self._spec

    @abstractmethod
    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        """Serve ``requests`` against ``snapshot``, outcomes in order."""

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InlineBackend(ExecutionBackend):
    """Serve every batch sequentially on the calling thread."""

    def __init__(self) -> None:
        self._engine: Optional[ReverseCloakEngine] = None

    def bind(self, spec: BackendSpec) -> None:
        super().bind(spec)
        if self._engine is None:
            self._engine = spec.build_engine()

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        spec = self.spec
        engine = self._engine
        return [
            _serve_outcome(engine, snapshot, request, spec.include_hints)
            for request in requests
        ]


class ThreadPoolBackend(ExecutionBackend):
    """Serve batches across a persistent thread pool.

    Each worker thread lazily builds one engine and reuses it for every
    request it ever serves (engines hold only immutable shared structures:
    the network, the algorithm and its pre-assignment tables). All requests
    of a batch run against the one snapshot the batch was submitted with.

    GIL caveat: cloaking is pure Python, so on GIL-bound builds the pool
    adds scheduling overhead without adding parallelism — every measured
    width was slower than inline serving on a 1-CPU container
    (``BENCH_serving.json``). A width of 1 therefore short-circuits to
    inline execution on the calling thread (same engine-per-thread reuse,
    no pool hop); widths > 1 remain the right backend only for workloads
    that actually block (I/O-heavy algorithms, free-threaded builds) —
    otherwise prefer :class:`InlineBackend` or
    :class:`ProcessPoolBackend`.

    Args:
        max_workers: Pool width; ``None`` picks ``min(8, cpu_count)``.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise CloakingError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._engines = threading.local()

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _worker_engine(self) -> ReverseCloakEngine:
        engine = getattr(self._engines, "engine", None)
        if engine is None:
            engine = self.spec.build_engine()
            self._engines.engine = engine
        return engine

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="reversecloak-serve",
                )
            return self._pool

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        if not requests:
            return []
        include_hints = self.spec.include_hints
        if self._max_workers == 1:
            # A one-thread pool is pure overhead (submission hop + GIL
            # handoff per request, see the class docstring): serve on the
            # calling thread with the same per-thread engine reuse.
            engine = self._worker_engine()
            return [
                _serve_outcome(engine, snapshot, request, include_hints)
                for request in requests
            ]
        pool = self._ensure_pool()
        return list(
            pool.map(
                lambda request: _serve_outcome(
                    self._worker_engine(), snapshot, request, include_hints
                ),
                requests,
            )
        )

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: Chunk reply meaning "this worker has not seen the batch's snapshot yet";
#: the parent re-submits the chunk with the snapshot document attached.
_NEED_SNAPSHOT = "__need_snapshot__"

#: Per-process worker state, populated by :func:`_worker_init` (one engine
#: per worker process, plus the cache of the last snapshot it deserialized).
_WORKER_STATE: dict = {}


def _worker_init(
    network_blob: str, algorithm_name: str, params_blob: str, include_hints: bool
) -> None:
    """Process-pool worker initializer (module-level: ``spawn`` pickles the
    function by qualified name). Rebuilds the engine from wire documents —
    the worker never shares live objects with the parent."""
    network = network_from_dict(json.loads(network_blob))
    algorithm = algorithm_from_spec(network, algorithm_name, json.loads(params_blob))
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        engine=ReverseCloakEngine(network, algorithm),
        include_hints=include_hints,
        snapshot_token=None,
        snapshot=None,
    )


def _worker_serve_chunk(
    snapshot_token: int,
    snapshot_blob: Optional[str],
    request_docs: Tuple[dict, ...],
):
    """Serve one chunk of wire request documents inside a worker process.

    Returns outcome documents (plain dicts) in chunk order, or the
    :data:`_NEED_SNAPSHOT` sentinel when the worker's cached snapshot is
    stale and the chunk carried no snapshot document. Expected serving
    failures become error outcomes; anything else propagates and surfaces
    in the parent.
    """
    state = _WORKER_STATE
    if state.get("snapshot_token") != snapshot_token:
        if snapshot_blob is None:
            return _NEED_SNAPSHOT
        state["snapshot"] = snapshot_from_dict(json.loads(snapshot_blob))
        state["snapshot_token"] = snapshot_token
    snapshot = state["snapshot"]
    engine = state["engine"]
    include_hints = state["include_hints"]
    outcomes = []
    for request_doc in request_docs:
        doc = CloakRequestDoc.from_dict(request_doc)
        try:
            envelope = engine.anonymize(
                doc.user_segment,
                snapshot,
                doc.profile,
                doc.chain,
                include_hints=include_hints,
            )
        except CloakingError as exc:
            outcomes.append(OutcomeDoc.from_exception(exc).to_dict())
        else:
            outcomes.append(OutcomeDoc.from_envelope(envelope).to_dict())
    return outcomes


def _worker_main(
    connection,
    network_blob: str,
    algorithm_name: str,
    params_blob: str,
    include_hints: bool,
) -> None:
    """The serve loop of one sharded worker process.

    Module-level so the ``spawn`` start method can import it by qualified
    name. The worker rebuilds its engine from the wire documents it was
    started with, then answers ``(token, snapshot_blob, request_docs)``
    messages on its dedicated pipe until it receives ``None``. Replies are
    ``("ok", outcome_docs)``, ``("ok", _NEED_SNAPSHOT)`` for a stale
    snapshot cache, or ``("raise", exception)`` for unexpected failures
    (re-raised in the parent).
    """
    _worker_init(network_blob, algorithm_name, params_blob, include_hints)
    while True:
        message = connection.recv()
        if message is None:
            break
        token, snapshot_blob, request_docs = message
        try:
            reply = _worker_serve_chunk(token, snapshot_blob, request_docs)
        except BaseException as exc:  # ship unexpected failures to the parent
            try:
                connection.send(("raise", exc))
            except Exception:
                connection.send(
                    ("raise", RuntimeError(f"worker failure: {exc!r}"))
                )
        else:
            connection.send(("ok", reply))
    connection.close()


class ProcessPoolBackend(ExecutionBackend):
    """Serve batches across N sharded worker processes, one engine each.

    The workers are dedicated processes on private pipes (not a task
    queue): the parent splits every batch into one contiguous chunk per
    worker, writes each chunk to its worker, and reads the replies back —
    no shared queues, no management threads, so the per-batch dispatch
    overhead stays flat as workers are added.

    Everything crossing the process boundary is a wire document:

    * at start-up each worker rebuilds the road network and algorithm from
      their serialized forms (:func:`_worker_init`);
    * per batch, the snapshot ships as a counts document under a
      monotonically increasing token — workers cache the parsed snapshot
      by token, so a steady stream of batches against one snapshot pays
      the (de)serialization once per worker, not once per batch;
    * requests ship as :class:`~repro.lbs.wire.CloakRequestDoc` dicts with
      the user already resolved to a segment (the parent holds the
      user-to-segment map; workers only ever need counts), and results
      return as :class:`~repro.lbs.wire.OutcomeDoc` dicts.

    Wire documents round-trip exactly, so the envelopes a worker produces
    are byte-identical to inline serving — asserted by the backend tests.

    Batches are dispatched one at a time (a lock serializes
    :meth:`cloak_batch` callers); parallelism lives *inside* a batch.

    Args:
        max_workers: Number of worker processes; ``None`` picks
            ``min(4, cpu_count)``.
        start_method: ``multiprocessing`` start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
            default. Everything shipped to workers is picklable under
            ``spawn``, so macOS/Windows semantics are covered.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise CloakingError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._start_method = start_method
        self._dispatch_lock = threading.Lock()
        self._workers: List = []  # [(Process, Connection)]
        # Snapshot shipping state: one token per distinct snapshot object,
        # blob serialized once; workers that have not seen the batch's
        # token answer _NEED_SNAPSHOT and get a resend with the blob.
        self._snapshot_token = 0
        self._snapshot_seen: Optional[PopulationSnapshot] = None
        self._snapshot_blob: Optional[str] = None
        self._cold_token = True

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_workers(self) -> List:
        """Spawn the worker shards on first use (dispatch lock held)."""
        if not self._workers:
            import multiprocessing

            context = multiprocessing.get_context(self._start_method)
            spec = self.spec
            init_args = (
                json.dumps(network_to_dict(spec.network)),
                spec.algorithm.name,
                json.dumps(spec.algorithm.params()),
                spec.include_hints,
            )
            for _ in range(self._max_workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_end,) + init_args,
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._workers.append((process, parent_end))
        return self._workers

    def _snapshot_wire(self, snapshot: PopulationSnapshot) -> Tuple[int, str]:
        """The (token, counts blob) of ``snapshot``, serialized once per
        distinct snapshot object (snapshots are immutable)."""
        if snapshot is not self._snapshot_seen:
            self._snapshot_token += 1
            self._snapshot_seen = snapshot
            self._snapshot_blob = json.dumps(
                snapshot_to_dict(snapshot, counts_only=True)
            )
            self._cold_token = True
        return self._snapshot_token, self._snapshot_blob

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        if not requests:
            return []
        # Resolve users up front (the parent holds the full snapshot) so
        # workers need only counts; unknown users fail here, in place,
        # exactly like inline serving.
        outcomes: List[Optional[BatchOutcome]] = [None] * len(requests)
        chunk_docs: List[dict] = []
        chunk_positions: List[int] = []
        for position, request in enumerate(requests):
            if not snapshot.has_user(request.user_id):
                outcomes[position] = BatchOutcome(
                    request=request,
                    error=MobilityError(
                        f"user {request.user_id} is not in the current snapshot"
                    ),
                )
                continue
            doc = CloakRequestDoc.from_request(
                request, user_segment=snapshot.segment_of(request.user_id)
            )
            chunk_docs.append(doc.to_dict())
            chunk_positions.append(position)

        if chunk_docs:
            with self._dispatch_lock:
                replies = self._dispatch(snapshot, chunk_docs)
            cursor = 0
            failure: Optional[BaseException] = None
            for reply in replies:
                outcome_doc = OutcomeDoc.from_dict(reply)
                position = chunk_positions[cursor]
                cursor += 1
                request = requests[position]
                if outcome_doc.ok:
                    outcomes[position] = BatchOutcome(
                        request=request, envelope=outcome_doc.envelope
                    )
                else:
                    error = outcome_doc.to_exception()
                    if not isinstance(error, (CloakingError, MobilityError)):
                        failure = failure or error
                        continue
                    outcomes[position] = BatchOutcome(request=request, error=error)
            if failure is not None:
                raise failure
        return list(outcomes)  # type: ignore[arg-type]

    def _dispatch(
        self, snapshot: PopulationSnapshot, chunk_docs: List[dict]
    ) -> List[dict]:
        """Fan the batch out to the worker shards; replies in batch order.

        Dispatch lock held. A worker answering :data:`_NEED_SNAPSHOT` gets
        its chunk once more with the snapshot document attached. Failures a
        worker *reports* (``("raise", exc)``) keep the pipes aligned — the
        other replies are drained before re-raising; a *transport* failure
        (dead worker, broken pipe) tears the whole pool down instead, so a
        retried batch starts against fresh, message-aligned workers rather
        than reading the dead batch's leftover replies.
        """
        workers = self._ensure_workers()
        token, blob = self._snapshot_wire(snapshot)
        ship_blob = blob if self._cold_token else None
        chunks = self._chunk(chunk_docs)
        used = workers[: len(chunks)]
        replies: List[dict] = []
        failure: Optional[BaseException] = None
        try:
            for (_process, connection), chunk in zip(used, chunks):
                connection.send((token, ship_blob, tuple(chunk)))
            for (_process, connection), chunk in zip(used, chunks):
                kind, payload = connection.recv()
                if kind == "ok" and payload == _NEED_SNAPSHOT:
                    connection.send((token, blob, tuple(chunk)))
                    kind, payload = connection.recv()
                if kind == "raise":
                    # Remember the first failure but keep draining the
                    # other workers' replies so the pipes stay aligned.
                    failure = failure or payload
                    continue
                replies.extend(payload)
        except BaseException:
            self._teardown_workers()
            raise
        if failure is not None:
            raise failure
        self._cold_token = False
        return replies

    def _chunk(self, docs: List[dict]) -> List[List[dict]]:
        """Split the batch into one contiguous chunk per worker."""
        workers = min(self._max_workers, len(docs))
        base, extra = divmod(len(docs), workers)
        chunks: List[List[dict]] = []
        start = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            chunks.append(docs[start : start + size])
            start += size
        return chunks

    def _teardown_workers(self) -> None:
        """Shut every worker down and reset snapshot-shipping state
        (dispatch lock held). The next batch spawns a fresh pool."""
        for process, connection in self._workers:
            try:
                connection.send(None)
            except (OSError, ValueError):
                pass
        for process, connection in self._workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
            connection.close()
        self._workers.clear()
        self._snapshot_seen = None
        self._snapshot_blob = None
        self._cold_token = True

    def close(self) -> None:
        with self._dispatch_lock:
            self._teardown_workers()
