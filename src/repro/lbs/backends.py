"""Pluggable execution backends of the anonymization service.

The serving facade (:class:`~repro.lbs.service.AnonymizerService`) owns the
protocol — request in, outcome out — and delegates *where the cloaking
work runs* to an :class:`ExecutionBackend`:

* :class:`InlineBackend` — the calling thread, one engine. The reference
  implementation every other backend must match byte for byte.
* :class:`ThreadPoolBackend` — a persistent thread pool with one engine
  per worker thread (PR 2's ``cloak_batch`` machinery, re-homed). Threads
  share the interpreter, so on GIL-bound builds this measures serving
  overhead rather than adding parallelism; it remains the right backend
  for workloads that block (I/O-heavy algorithms, free-threaded builds).
* :class:`ProcessPoolBackend` — N worker *processes*, each holding its own
  engine rebuilt from wire documents against a per-batch snapshot. Work
  and results cross the boundary as wire documents only, so serving is
  byte-identical to inline and the workers never share mutable state —
  the seam every later sharding/async PR builds on.

A backend is bound once to an immutable :class:`BackendSpec` (network +
algorithm + hint policy) and then serves any number of batches; each batch
is pinned to the one snapshot it was submitted with. Outcomes come back in
request order, failures in place (:class:`BatchOutcome`), and *unexpected*
exceptions — anything outside the documented
:class:`~repro.errors.CloakingError` / :class:`~repro.errors.MobilityError`
serving failures — propagate to the caller instead of being swallowed into
outcomes.

Since PR 5 the seam carries the system's headline operation too:
:meth:`ExecutionBackend.deanonymize_batch` serves a batch of
de-anonymization requests (:class:`~repro.lbs.wire.DeanonymizeRequestDoc`)
under the same contract — outcomes in request order
(:class:`ReversalOutcome`), per-item typed failures
(:class:`~repro.errors.DeanonymizationError` /
:class:`~repro.errors.EnvelopeError` / :class:`~repro.errors.ProfileError`)
in place, anything else propagating, byte-identical results across every
backend. Reversal needs no population snapshot (envelopes are
self-describing), so the batch is snapshot-free; reversal engines are
resolved from each envelope's own algorithm metadata through a bounded
:class:`ReversalEngineCache`, and peels within a batch share keyed-draw
buffers through one :class:`~repro.core.reversal.DrawsCache` per serving
thread.
"""

from __future__ import annotations

import json
import os
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.algorithm import CloakingAlgorithm
from ..core.engine import (
    DeanonymizationResult,
    ReverseCloakEngine,
    algorithm_from_spec,
)
from ..core.envelope import CloakEnvelope
from ..core.reversal import DrawsCache
from ..errors import (
    CloakingError,
    DeanonymizationError,
    EnvelopeError,
    MobilityError,
    ProfileError,
    WireFormatError,
)
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from ..roadnet.io import network_from_dict, network_to_dict
from .wire import (
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
    snapshot_from_dict,
    snapshot_to_dict,
)

__all__ = [
    "BackendSpec",
    "BatchOutcome",
    "ReversalOutcome",
    "ReversalEngineCache",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
]

#: The typed per-request failure union of batch serving. Anything else is a
#: bug or an infrastructure failure and must propagate.
ServingError = Union[CloakingError, MobilityError]

#: The typed per-item failure union of batch *reversal* serving: wrong or
#: missing keys, collisions, malformed or foreign envelopes, bad levels.
#: Anything else is a bug or an infrastructure failure and must propagate.
ReversalServingError = Union[DeanonymizationError, EnvelopeError, ProfileError]

#: The isinstance tuple of :data:`ReversalServingError` (also what the
#: process-pool workers convert into per-item outcome documents).
_REVERSAL_ERRORS = (DeanonymizationError, EnvelopeError, ProfileError)


@dataclass(frozen=True)
class BatchOutcome:
    """The result of one request inside a batch.

    Exactly one of :attr:`envelope` / :attr:`error` is set. Batch serving
    never lets one failing request abort its siblings; the error object is
    returned in place so the caller can retry or report per request.

    Attributes:
        request: The request this outcome answers (same position as in the
            submitted batch).
        envelope: The cloaked envelope on success.
        error: The :class:`~repro.errors.CloakingError` or
            :class:`~repro.errors.MobilityError` the request failed with —
            these are the only failures serving converts into outcomes;
            unexpected exceptions propagate out of the batch call.
    """

    request: CloakRequest
    envelope: Optional[CloakEnvelope] = None
    error: Optional[ServingError] = None

    @property
    def ok(self) -> bool:
        return self.envelope is not None


@dataclass(frozen=True)
class ReversalOutcome:
    """The result of one de-anonymization request inside a batch.

    Exactly one of :attr:`result` / :attr:`error` is set; failures sit in
    place so one bad item (wrong key, tampered envelope, collision) never
    aborts its siblings.

    Attributes:
        request: The reversal request this outcome answers (same position
            as in the submitted batch).
        result: The recovered per-level regions on success.
        error: The typed :data:`ReversalServingError` the item failed with
            — the only failures serving converts into outcomes; unexpected
            exceptions propagate out of the batch call.
    """

    request: DeanonymizeRequestDoc
    result: Optional[DeanonymizationResult] = None
    error: Optional[ReversalServingError] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class ReversalEngineCache:
    """Bounded, lock-guarded LRU of reversal engines keyed by algorithm spec.

    Envelopes name their own algorithm and parameters, and those fields are
    attacker-controlled on the wire endpoints — an unbounded
    ``{(algorithm, params): engine}`` dict lets churning parameters grow
    engine objects (and their pre-assignment tables) without limit, the
    same bug class PR 4 fixed in the transition-domain memo. This cache
    caps the live set (move-to-end on hit, evict oldest past ``cap``) and
    keeps the common case allocation-free: a ``default`` engine matching
    its own algorithm spec is answered without touching the LRU at all.

    Thread-safe; engines themselves hold only immutable shared structures,
    so handing one instance to several serving threads is fine.
    """

    def __init__(
        self,
        network: RoadNetwork,
        default: Optional[ReverseCloakEngine] = None,
        cap: int = 32,
    ) -> None:
        if cap < 1:
            raise ProfileError(f"engine cache cap must be >= 1, got {cap}")
        self._network = network
        self._default = default
        # The default's spec, computed once: algorithm instances are
        # immutable, and rebuilding the params dict per lookup would put
        # an allocation on every peel's fast path.
        self._default_spec = (
            (default.algorithm.name, default.algorithm.params())
            if default is not None
            else None
        )
        self._cap = cap
        self._lock = threading.Lock()
        self._engines: "OrderedDict[Tuple[str, str], ReverseCloakEngine]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def engine_for(self, envelope: CloakEnvelope) -> ReverseCloakEngine:
        """The reversal engine of ``envelope``'s algorithm metadata.

        Raises:
            EnvelopeError: The envelope names an unknown algorithm.
        """
        default_spec = self._default_spec
        if default_spec is not None and (
            (envelope.algorithm, envelope.algorithm_params) == default_spec
        ):
            return self._default
        cache_key = (
            envelope.algorithm,
            json.dumps(envelope.algorithm_params, sort_keys=True),
        )
        with self._lock:
            engine = self._engines.get(cache_key)
            if engine is not None:
                self._engines.move_to_end(cache_key)
                return engine
        # Build outside the lock (RPLE pre-assignment can be expensive);
        # a racing builder of the same spec just loses its copy.
        engine = ReverseCloakEngine.for_envelope(self._network, envelope)
        with self._lock:
            existing = self._engines.get(cache_key)
            if existing is not None:
                self._engines.move_to_end(cache_key)
                return existing
            self._engines[cache_key] = engine
            while len(self._engines) > self._cap:
                self._engines.popitem(last=False)
        return engine


def _peel_outcome(
    engines: ReversalEngineCache,
    request: DeanonymizeRequestDoc,
    draws_cache: Optional[DrawsCache],
) -> ReversalOutcome:
    """One reversal request against a pinned engine cache.

    The single code path every backend funnels reversal through (process
    workers via its wire-doc twin ``_worker_peel_chunk``): resolve the
    engine from the envelope's own metadata, peel, capture the typed
    failure union in place.
    """
    try:
        engine = engines.engine_for(request.envelope)
        result = engine.deanonymize(
            request.envelope,
            request.key_map(),
            request.target_level,
            mode=request.mode,
            draws_cache=draws_cache,
        )
    except _REVERSAL_ERRORS as exc:
        return ReversalOutcome(request=request, error=exc)
    return ReversalOutcome(request=request, result=result)


@dataclass(frozen=True)
class BackendSpec:
    """Everything a backend needs to run the cloaking work anywhere.

    Attributes:
        network: The shared road map.
        algorithm: The cloaking algorithm instance (its ``name``/``params()``
            are the wire spec process workers rebuild it from).
        include_hints: Sealed-hint envelope policy (decision D1).
    """

    network: RoadNetwork
    algorithm: CloakingAlgorithm
    include_hints: bool = True

    def build_engine(self) -> ReverseCloakEngine:
        return ReverseCloakEngine(self.network, self.algorithm)


def serve_request(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    request: CloakRequest,
    include_hints: bool,
) -> CloakEnvelope:
    """One request against a pinned (engine, snapshot) pair.

    The single code path every backend funnels through (process workers
    via their wire-doc twin ``_worker_serve``): resolve the user, expand,
    return the envelope. Raw location is used transiently and not retained.
    """
    if not snapshot.has_user(request.user_id):
        raise MobilityError(
            f"user {request.user_id} is not in the current snapshot"
        )
    user_segment = snapshot.segment_of(request.user_id)
    return engine.anonymize(
        user_segment,
        snapshot,
        request.profile,
        request.chain,
        include_hints=include_hints,
    )


def _serve_outcome(
    engine: ReverseCloakEngine,
    snapshot: PopulationSnapshot,
    request: CloakRequest,
    include_hints: bool,
) -> BatchOutcome:
    try:
        envelope = serve_request(engine, snapshot, request, include_hints)
    except (CloakingError, MobilityError) as exc:
        return BatchOutcome(request=request, error=exc)
    return BatchOutcome(request=request, envelope=envelope)


class ExecutionBackend(ABC):
    """Where the serving work of one anonymization service runs.

    Lifecycle: the service calls :meth:`bind` exactly once with its
    immutable :class:`BackendSpec`, then any number of
    :meth:`cloak_batch` / :meth:`deanonymize_batch` calls, then
    :meth:`close`. Backends are thread-safe for concurrent batch
    submissions.
    """

    _spec: Optional[BackendSpec] = None

    def bind(self, spec: BackendSpec) -> None:
        """Pin this backend to its serving configuration (idempotent for
        the same spec; a backend never serves two configurations)."""
        if self._spec is not None and self._spec is not spec:
            raise CloakingError("backend is already bound to another service")
        self._spec = spec

    @property
    def spec(self) -> BackendSpec:
        if self._spec is None:
            raise CloakingError("backend is not bound to a service yet")
        return self._spec

    @abstractmethod
    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        """Serve ``requests`` against ``snapshot``, outcomes in order."""

    @abstractmethod
    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        """Serve a batch of reversal requests, outcomes in request order.

        Snapshot-free: each envelope carries everything reversal needs.
        Per-item :data:`ReversalServingError` failures come back in place;
        anything else propagates. Results are byte-identical across every
        backend.
        """

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InlineBackend(ExecutionBackend):
    """Serve every batch sequentially on the calling thread.

    The reference implementation: every other backend must match its
    results byte for byte. Reversal serving reuses one bounded engine
    cache across batches and shares one keyed-draw cache within each
    batch.
    """

    def __init__(self) -> None:
        self._engine: Optional[ReverseCloakEngine] = None
        self._reversal_engines: Optional[ReversalEngineCache] = None

    def bind(self, spec: BackendSpec) -> None:
        super().bind(spec)
        if self._engine is None:
            self._engine = spec.build_engine()
            self._reversal_engines = ReversalEngineCache(
                spec.network, default=self._engine
            )

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        spec = self.spec
        engine = self._engine
        return [
            _serve_outcome(engine, snapshot, request, spec.include_hints)
            for request in requests
        ]

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        self.spec  # raise the unbound error before any work
        engines = self._reversal_engines
        draws_cache = DrawsCache()
        return [
            _peel_outcome(engines, request, draws_cache) for request in requests
        ]


class ThreadPoolBackend(ExecutionBackend):
    """Serve batches across a persistent thread pool.

    Each worker thread lazily builds one engine and reuses it for every
    request it ever serves (engines hold only immutable shared structures:
    the network, the algorithm and its pre-assignment tables). All requests
    of a batch run against the one snapshot the batch was submitted with.

    GIL caveat: cloaking is pure Python, so on GIL-bound builds the pool
    adds scheduling overhead without adding parallelism — every measured
    width was slower than inline serving on a 1-CPU container
    (``BENCH_serving.json``). A width of 1 therefore short-circuits to
    inline execution on the calling thread (same engine-per-thread reuse,
    no pool hop); widths > 1 remain the right backend only for workloads
    that actually block (I/O-heavy algorithms, free-threaded builds) —
    otherwise prefer :class:`InlineBackend` or
    :class:`ProcessPoolBackend`.

    Args:
        max_workers: Pool width; ``None`` picks ``min(8, cpu_count)``.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise CloakingError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._engines = threading.local()

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _worker_engine(self) -> ReverseCloakEngine:
        engine = getattr(self._engines, "engine", None)
        if engine is None:
            engine = self.spec.build_engine()
            self._engines.engine = engine
        return engine

    def _worker_reversal_engines(self) -> ReversalEngineCache:
        """This worker thread's bounded reversal-engine cache.

        Per-worker (not shared) so reversal serving stays lock-free on the
        hot path, mirroring the per-worker cloaking engines; the caches
        answer from each envelope's algorithm metadata, never from a
        snapshot — reversal is snapshot-free.
        """
        engines = getattr(self._engines, "reversal", None)
        if engines is None:
            engines = ReversalEngineCache(
                self.spec.network, default=self._worker_engine()
            )
            self._engines.reversal = engines
        return engines

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="reversecloak-serve",
                )
            return self._pool

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        if not requests:
            return []
        include_hints = self.spec.include_hints
        if self._max_workers == 1:
            # A one-thread pool is pure overhead (submission hop + GIL
            # handoff per request, see the class docstring): serve on the
            # calling thread with the same per-thread engine reuse.
            engine = self._worker_engine()
            return [
                _serve_outcome(engine, snapshot, request, include_hints)
                for request in requests
            ]
        pool = self._ensure_pool()
        return list(
            pool.map(
                lambda request: _serve_outcome(
                    self._worker_engine(), snapshot, request, include_hints
                ),
                requests,
            )
        )

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        if not requests:
            return []
        self.spec  # raise the unbound error before any work
        if self._max_workers == 1:
            # Same short-circuit as cloak_batch — and serving on the
            # calling thread lets the whole batch share one draws cache.
            engines = self._worker_reversal_engines()
            draws_cache = DrawsCache()
            return [
                _peel_outcome(engines, request, draws_cache)
                for request in requests
            ]
        pool = self._ensure_pool()
        # No cross-item draws cache here: LevelDraws buffers are per-thread
        # scratch and items of one batch land on different workers. Each
        # peel still shares draws internally across its own hypotheses.
        return list(
            pool.map(
                lambda request: _peel_outcome(
                    self._worker_reversal_engines(), request, None
                ),
                requests,
            )
        )

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: Chunk reply meaning "this worker has not seen the batch's snapshot yet";
#: the parent re-submits the chunk with the snapshot document attached.
_NEED_SNAPSHOT = "__need_snapshot__"

#: Per-process worker state, populated by :func:`_worker_init` (one engine
#: per worker process, plus the cache of the last snapshot it deserialized).
_WORKER_STATE: dict = {}


def _worker_init(
    network_blob: str, algorithm_name: str, params_blob: str, include_hints: bool
) -> None:
    """Process-pool worker initializer (module-level: ``spawn`` pickles the
    function by qualified name). Rebuilds the engine from wire documents —
    the worker never shares live objects with the parent."""
    network = network_from_dict(json.loads(network_blob))
    algorithm = algorithm_from_spec(network, algorithm_name, json.loads(params_blob))
    engine = ReverseCloakEngine(network, algorithm)
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        engine=engine,
        # Reversal engines are rebuilt worker-side from each envelope's own
        # algorithm metadata; the bounded cache mirrors the parent's.
        reversal_engines=ReversalEngineCache(network, default=engine),
        include_hints=include_hints,
        snapshot_token=None,
        snapshot=None,
    )


def _worker_serve_chunk(
    snapshot_token: int,
    snapshot_blob: Optional[str],
    request_docs: Tuple[dict, ...],
):
    """Serve one chunk of wire request documents inside a worker process.

    Returns outcome documents (plain dicts) in chunk order, or the
    :data:`_NEED_SNAPSHOT` sentinel when the worker's cached snapshot is
    stale and the chunk carried no snapshot document. Expected serving
    failures become error outcomes; anything else propagates and surfaces
    in the parent.
    """
    state = _WORKER_STATE
    if state.get("snapshot_token") != snapshot_token:
        if snapshot_blob is None:
            return _NEED_SNAPSHOT
        state["snapshot"] = snapshot_from_dict(json.loads(snapshot_blob))
        state["snapshot_token"] = snapshot_token
    snapshot = state["snapshot"]
    engine = state["engine"]
    include_hints = state["include_hints"]
    outcomes = []
    for request_doc in request_docs:
        doc = CloakRequestDoc.from_dict(request_doc)
        try:
            envelope = engine.anonymize(
                doc.user_segment,
                snapshot,
                doc.profile,
                doc.chain,
                include_hints=include_hints,
            )
        except CloakingError as exc:
            outcomes.append(OutcomeDoc.from_exception(exc).to_dict())
        else:
            outcomes.append(OutcomeDoc.from_envelope(envelope).to_dict())
    return outcomes


def _worker_peel_chunk(request_docs: Tuple[dict, ...]):
    """Serve one chunk of reversal request documents inside a worker.

    The wire-doc twin of :func:`_peel_outcome`: each item's engine is
    resolved from the envelope's own algorithm metadata through the
    worker's bounded cache, the chunk shares one keyed-draw cache, and
    every typed reversal failure — including a malformed item document —
    becomes a structured error outcome in place. Anything else propagates
    and surfaces in the parent.
    """
    engines: ReversalEngineCache = _WORKER_STATE["reversal_engines"]
    draws_cache = DrawsCache()
    outcomes = []
    for request_doc in request_docs:
        try:
            doc = DeanonymizeRequestDoc.from_dict(request_doc)
        except WireFormatError as exc:
            outcomes.append(OutcomeDoc.from_exception(exc).to_dict())
            continue
        outcome = _peel_outcome(engines, doc, draws_cache)
        outcomes.append(
            OutcomeDoc.from_result(outcome.result).to_dict()
            if outcome.ok
            else OutcomeDoc.from_exception(outcome.error).to_dict()
        )
    return outcomes


def _worker_main(
    connection,
    network_blob: str,
    algorithm_name: str,
    params_blob: str,
    include_hints: bool,
) -> None:
    """The serve loop of one sharded worker process.

    Module-level so the ``spawn`` start method can import it by qualified
    name. The worker rebuilds its engine from the wire documents it was
    started with, then answers tagged messages on its dedicated pipe until
    it receives ``None``:

    * ``("cloak", token, snapshot_blob, request_docs)`` — one cloaking
      chunk against the token's snapshot;
    * ``("peel", request_docs)`` — one de-anonymization chunk
      (snapshot-free).

    Replies are ``("ok", outcome_docs)``, ``("ok", _NEED_SNAPSHOT)`` for a
    stale snapshot cache, or ``("raise", exception)`` for unexpected
    failures (re-raised in the parent).
    """
    _worker_init(network_blob, algorithm_name, params_blob, include_hints)
    while True:
        message = connection.recv()
        if message is None:
            break
        try:
            kind = message[0]
            if kind == "cloak":
                _, token, snapshot_blob, request_docs = message
                reply = _worker_serve_chunk(token, snapshot_blob, request_docs)
            elif kind == "peel":
                reply = _worker_peel_chunk(message[1])
            else:
                raise RuntimeError(f"unknown worker message kind: {kind!r}")
        except BaseException as exc:  # ship unexpected failures to the parent
            try:
                connection.send(("raise", exc))
            except Exception:
                connection.send(
                    ("raise", RuntimeError(f"worker failure: {exc!r}"))
                )
        else:
            connection.send(("ok", reply))
    connection.close()


class ProcessPoolBackend(ExecutionBackend):
    """Serve batches across N sharded worker processes, one engine each.

    The workers are dedicated processes on private pipes (not a task
    queue): the parent splits every batch into one contiguous chunk per
    worker, writes each chunk to its worker, and reads the replies back —
    no shared queues, no management threads, so the per-batch dispatch
    overhead stays flat as workers are added.

    Everything crossing the process boundary is a wire document:

    * at start-up each worker rebuilds the road network and algorithm from
      their serialized forms (:func:`_worker_init`);
    * per batch, the snapshot ships as a counts document under a
      monotonically increasing token — workers cache the parsed snapshot
      by token, so a steady stream of batches against one snapshot pays
      the (de)serialization once per worker, not once per batch;
    * requests ship as :class:`~repro.lbs.wire.CloakRequestDoc` dicts with
      the user already resolved to a segment (the parent holds the
      user-to-segment map; workers only ever need counts), and results
      return as :class:`~repro.lbs.wire.OutcomeDoc` dicts;
    * reversal batches (:meth:`deanonymize_batch`) ship as
      :class:`~repro.lbs.wire.DeanonymizeRequestDoc` dicts — snapshot-free;
      workers rebuild each envelope's reversal engine from its own
      algorithm metadata through a bounded per-worker cache.

    Wire documents round-trip exactly, so the envelopes and recovered
    regions a worker produces are byte-identical to inline serving —
    asserted by the backend tests.

    Batches are dispatched one at a time (a lock serializes
    :meth:`cloak_batch` / :meth:`deanonymize_batch` callers); parallelism
    lives *inside* a batch.

    Args:
        max_workers: Number of worker processes; ``None`` picks
            ``min(4, cpu_count)``.
        start_method: ``multiprocessing`` start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
            default. Everything shipped to workers is picklable under
            ``spawn``, so macOS/Windows semantics are covered.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise CloakingError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._start_method = start_method
        self._dispatch_lock = threading.Lock()
        self._workers: List = []  # [(Process, Connection)]
        # Snapshot shipping state: one token per distinct snapshot object,
        # blob serialized once; workers that have not seen the batch's
        # token answer _NEED_SNAPSHOT and get a resend with the blob.
        self._snapshot_token = 0
        self._snapshot_seen: Optional[PopulationSnapshot] = None
        self._snapshot_blob: Optional[str] = None
        self._cold_token = True

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_workers(self) -> List:
        """Spawn the worker shards on first use (dispatch lock held)."""
        if not self._workers:
            import multiprocessing

            context = multiprocessing.get_context(self._start_method)
            spec = self.spec
            init_args = (
                json.dumps(network_to_dict(spec.network)),
                spec.algorithm.name,
                json.dumps(spec.algorithm.params()),
                spec.include_hints,
            )
            for _ in range(self._max_workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_end,) + init_args,
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._workers.append((process, parent_end))
        return self._workers

    def _snapshot_wire(self, snapshot: PopulationSnapshot) -> Tuple[int, str]:
        """The (token, counts blob) of ``snapshot``, serialized once per
        distinct snapshot object (snapshots are immutable)."""
        if snapshot is not self._snapshot_seen:
            self._snapshot_token += 1
            self._snapshot_seen = snapshot
            self._snapshot_blob = json.dumps(
                snapshot_to_dict(snapshot, counts_only=True)
            )
            self._cold_token = True
        return self._snapshot_token, self._snapshot_blob

    def cloak_batch(
        self, snapshot: PopulationSnapshot, requests: Sequence[CloakRequest]
    ) -> List[BatchOutcome]:
        if not requests:
            return []
        # Resolve users up front (the parent holds the full snapshot) so
        # workers need only counts; unknown users fail here, in place,
        # exactly like inline serving.
        outcomes: List[Optional[BatchOutcome]] = [None] * len(requests)
        chunk_docs: List[dict] = []
        chunk_positions: List[int] = []
        for position, request in enumerate(requests):
            if not snapshot.has_user(request.user_id):
                outcomes[position] = BatchOutcome(
                    request=request,
                    error=MobilityError(
                        f"user {request.user_id} is not in the current snapshot"
                    ),
                )
                continue
            doc = CloakRequestDoc.from_request(
                request, user_segment=snapshot.segment_of(request.user_id)
            )
            chunk_docs.append(doc.to_dict())
            chunk_positions.append(position)

        if chunk_docs:
            with self._dispatch_lock:
                replies = self._dispatch(snapshot, chunk_docs)
            cursor = 0
            failure: Optional[BaseException] = None
            for reply in replies:
                outcome_doc = OutcomeDoc.from_dict(reply)
                position = chunk_positions[cursor]
                cursor += 1
                request = requests[position]
                if outcome_doc.ok:
                    outcomes[position] = BatchOutcome(
                        request=request, envelope=outcome_doc.envelope
                    )
                else:
                    error = outcome_doc.to_exception()
                    if not isinstance(error, (CloakingError, MobilityError)):
                        failure = failure or error
                        continue
                    outcomes[position] = BatchOutcome(request=request, error=error)
            if failure is not None:
                raise failure
        return list(outcomes)  # type: ignore[arg-type]

    def _dispatch(
        self, snapshot: PopulationSnapshot, chunk_docs: List[dict]
    ) -> List[dict]:
        """Fan the batch out to the worker shards; replies in batch order.

        Dispatch lock held. A worker answering :data:`_NEED_SNAPSHOT` gets
        its chunk once more with the snapshot document attached. Failures a
        worker *reports* (``("raise", exc)``) keep the pipes aligned — the
        other replies are drained before re-raising; a *transport* failure
        (dead worker, broken pipe) tears the whole pool down instead, so a
        retried batch starts against fresh, message-aligned workers rather
        than reading the dead batch's leftover replies.
        """
        workers = self._ensure_workers()
        token, blob = self._snapshot_wire(snapshot)
        ship_blob = blob if self._cold_token else None
        chunks = self._chunk(chunk_docs)
        used = workers[: len(chunks)]
        replies: List[dict] = []
        failure: Optional[BaseException] = None
        try:
            for (_process, connection), chunk in zip(used, chunks):
                connection.send(("cloak", token, ship_blob, tuple(chunk)))
            for (_process, connection), chunk in zip(used, chunks):
                kind, payload = connection.recv()
                if kind == "ok" and payload == _NEED_SNAPSHOT:
                    connection.send(("cloak", token, blob, tuple(chunk)))
                    kind, payload = connection.recv()
                if kind == "raise":
                    # Remember the first failure but keep draining the
                    # other workers' replies so the pipes stay aligned.
                    failure = failure or payload
                    continue
                replies.extend(payload)
        except BaseException:
            self._teardown_workers()
            raise
        if failure is not None:
            raise failure
        self._cold_token = False
        return replies

    def deanonymize_batch(
        self, requests: Sequence[DeanonymizeRequestDoc]
    ) -> List[ReversalOutcome]:
        """Fan a reversal batch out across the worker shards.

        This is the first parallel reversal path in the system: each shard
        peels its contiguous chunk with its own engine (reversal is pure
        CPU with no shared state, so on multi-core hardware the slowest
        serving operation finally scales with workers). Requests cross the
        pipes as :class:`~repro.lbs.wire.DeanonymizeRequestDoc` dicts —
        key material rides inside them exactly as on the single-request
        wire path — and results return as outcome documents, so recovered
        regions are byte-identical to inline serving.
        """
        if not requests:
            return []
        self.spec  # raise the unbound error before spawning anything
        chunk_docs = [request.to_dict() for request in requests]
        with self._dispatch_lock:
            replies = self._dispatch_peels(chunk_docs)
        outcomes: List[ReversalOutcome] = []
        failure: Optional[BaseException] = None
        for request, reply in zip(requests, replies):
            outcome_doc = OutcomeDoc.from_dict(reply)
            if outcome_doc.ok:
                outcomes.append(
                    ReversalOutcome(request=request, result=outcome_doc.result)
                )
            else:
                error = outcome_doc.to_exception()
                if not isinstance(error, _REVERSAL_ERRORS):
                    failure = failure or error
                    continue
                outcomes.append(ReversalOutcome(request=request, error=error))
        if failure is not None:
            raise failure
        return outcomes

    def _dispatch_peels(self, chunk_docs: List[dict]) -> List[dict]:
        """Fan one reversal batch out to the workers; replies in order.

        Dispatch lock held. Same pipe-alignment discipline as the cloaking
        :meth:`_dispatch` — reported failures drain the remaining replies
        before re-raising, transport failures tear the pool down so a
        retried batch never reads a dead batch's leftovers — minus the
        snapshot machinery, which reversal does not need.
        """
        workers = self._ensure_workers()
        chunks = self._chunk(chunk_docs)
        used = workers[: len(chunks)]
        replies: List[dict] = []
        failure: Optional[BaseException] = None
        try:
            for (_process, connection), chunk in zip(used, chunks):
                connection.send(("peel", tuple(chunk)))
            for (_process, connection), _chunk in zip(used, chunks):
                kind, payload = connection.recv()
                if kind == "raise":
                    failure = failure or payload
                    continue
                replies.extend(payload)
        except BaseException:
            self._teardown_workers()
            raise
        if failure is not None:
            raise failure
        return replies

    def _chunk(self, docs: List[dict]) -> List[List[dict]]:
        """Split the batch into one contiguous chunk per worker."""
        workers = min(self._max_workers, len(docs))
        base, extra = divmod(len(docs), workers)
        chunks: List[List[dict]] = []
        start = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            chunks.append(docs[start : start + size])
            start += size
        return chunks

    def _teardown_workers(self) -> None:
        """Shut every worker down and reset snapshot-shipping state
        (dispatch lock held). The next batch spawns a fresh pool."""
        for process, connection in self._workers:
            try:
                connection.send(None)
            except (OSError, ValueError):
                pass
        for process, connection in self._workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
            connection.close()
        self._workers.clear()
        self._snapshot_seen = None
        self._snapshot_blob = None
        self._cold_token = True

    def close(self) -> None:
        with self._dispatch_lock:
            self._teardown_workers()
